"""Tests for the synthetic descriptor generator."""

import numpy as np
import pytest

from repro.workloads.synthetic import SyntheticImageConfig, generate_collection


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(n_images=0)
        with pytest.raises(ValueError):
            SyntheticImageConfig(clutter_fraction=1.0)
        with pytest.raises(ValueError):
            SyntheticImageConfig(clutter_fraction=0.6, halo_fraction=0.5)
        with pytest.raises(ValueError):
            SyntheticImageConfig(pattern_std=0.0)
        with pytest.raises(ValueError):
            SyntheticImageConfig(pattern_scale_range=(0.5, -0.5))
        with pytest.raises(ValueError):
            SyntheticImageConfig(n_patterns=0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def collection(self):
        return generate_collection(
            SyntheticImageConfig(n_images=40, mean_descriptors_per_image=30, seed=3)
        )

    def test_shape_and_ids(self, collection):
        assert collection.dimensions == 24
        assert len(collection) > 0
        assert list(collection.ids) == list(range(len(collection)))

    def test_image_structure(self, collection):
        images, counts = np.unique(collection.image_ids, return_counts=True)
        assert len(images) == 40
        # Poisson(30): counts concentrate near the mean.
        assert 5 <= counts.mean() <= 60

    def test_determinism(self):
        config = SyntheticImageConfig(n_images=10, seed=99)
        a = generate_collection(config)
        b = generate_collection(config)
        assert np.array_equal(a.vectors, b.vectors)
        assert np.array_equal(a.image_ids, b.image_ids)

    def test_seed_changes_data(self):
        a = generate_collection(SyntheticImageConfig(n_images=10, seed=1))
        b = generate_collection(SyntheticImageConfig(n_images=10, seed=2))
        assert a.vectors.shape != b.vectors.shape or not np.array_equal(
            a.vectors, b.vectors
        )

    def test_clustered_structure(self, collection):
        """Pattern structure: most descriptors have a very close neighbor
        (same pattern), unlike uniform noise."""
        rng = np.random.default_rng(0)
        rows = rng.choice(len(collection), 80, replace=False)
        sample = collection.vectors[rows].astype(float)
        all_vectors = collection.vectors.astype(float)
        nn = []
        for v in sample:
            d = np.linalg.norm(all_vectors - v, axis=1)
            d[d == 0] = np.inf
            nn.append(d.min())
        uniform = rng.uniform(0, 1, size=(200, 24))
        d_uni = np.linalg.norm(uniform[0] - uniform[1:], axis=1).min()
        assert np.median(nn) < 0.5 * d_uni

    def test_heavy_tailed_patterns(self):
        """With a Zipf-ish popularity, some region of space is far denser
        than the median — the seed of BAG's giant chunks."""
        col = generate_collection(
            SyntheticImageConfig(
                n_images=60,
                mean_descriptors_per_image=40,
                n_patterns=50,
                pattern_popularity_exponent=1.2,
                seed=5,
            )
        )
        # Count points within a small radius of each of 100 sampled points.
        rng = np.random.default_rng(1)
        rows = rng.choice(len(col), 100, replace=False)
        vectors = col.vectors.astype(float)
        counts = []
        for r in rows:
            d = np.linalg.norm(vectors - vectors[r], axis=1)
            counts.append((d < 0.25).sum())
        counts = np.array(counts)
        # Density is highly non-uniform: the local-count distribution has a
        # large coefficient of variation and a sparse tail far below the max.
        assert counts.std() > 0.4 * counts.mean()
        assert counts.min() < 0.1 * counts.max()

    def test_dimensions_configurable(self):
        col = generate_collection(
            SyntheticImageConfig(n_images=5, dimensions=8, seed=0)
        )
        assert col.dimensions == 8

    def test_values_mostly_in_unit_box(self, collection):
        frac_inside = np.mean(
            (collection.vectors > -0.5) & (collection.vectors < 1.5)
        )
        assert frac_inside > 0.99
