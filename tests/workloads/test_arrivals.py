"""Tests for the open-loop Poisson arrival generator."""

import numpy as np
import pytest

from repro.workloads.arrivals import ArrivalSchedule, poisson_arrival_times


class TestPoissonArrivals:
    def test_deterministic_for_same_key(self):
        a = poisson_arrival_times(64, 10.0, seed=5)
        b = poisson_arrival_times(64, 10.0, seed=5)
        np.testing.assert_array_equal(a.times_s, b.times_s)

    def test_seed_changes_stream(self):
        a = poisson_arrival_times(64, 10.0, seed=5)
        b = poisson_arrival_times(64, 10.0, seed=6)
        assert not np.array_equal(a.times_s, b.times_s)

    def test_shape_and_monotonicity(self):
        schedule = poisson_arrival_times(100, 25.0, seed=1)
        assert len(schedule) == 100
        assert schedule.times_s.dtype == np.float64
        assert np.all(schedule.times_s > 0.0)
        assert np.all(np.diff(schedule.times_s) >= 0.0)
        assert schedule.span_s == float(schedule.times_s[-1])

    def test_mean_gap_tracks_rate(self):
        schedule = poisson_arrival_times(20_000, 40.0, seed=3)
        gaps = np.diff(np.concatenate(([0.0], schedule.times_s)))
        assert gaps.mean() == pytest.approx(1.0 / 40.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="request"):
            poisson_arrival_times(0, 10.0, seed=1)
        with pytest.raises(ValueError, match="rate"):
            poisson_arrival_times(5, 0.0, seed=1)


class TestArrivalSchedule:
    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ArrivalSchedule(rate_qps=1.0, seed=0, times_s=np.array([1.0, 0.5]))

    def test_rejects_non_vector(self):
        with pytest.raises(ValueError, match="1-d"):
            ArrivalSchedule(rate_qps=1.0, seed=0, times_s=np.zeros((2, 2)))

    def test_casts_to_float64(self):
        schedule = ArrivalSchedule(
            rate_qps=1.0, seed=0, times_s=np.array([1, 2, 3], dtype=np.int32)
        )
        assert schedule.times_s.dtype == np.float64
        assert schedule.span_s == 3.0
