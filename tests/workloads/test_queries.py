"""Tests for the DQ and SQ workloads."""

import numpy as np
import pytest

from repro.workloads.queries import (
    Workload,
    dataset_queries,
    round_robin_schedule,
    space_queries,
)


class TestWorkloadContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("X", np.ones(3), np.zeros(3))  # 1-D queries
        with pytest.raises(ValueError):
            Workload("X", np.ones((3, 2)), np.zeros(2))  # unparallel

    def test_iteration_and_len(self):
        w = Workload("X", np.ones((4, 2)), np.full(4, -1))
        assert len(w) == 4
        assert w.dimensions == 2
        assert len(list(w)) == 4


class TestDatasetQueries:
    def test_queries_come_from_collection(self, tiny_collection):
        w = dataset_queries(tiny_collection, 10, seed=0)
        assert w.name == "DQ"
        for query, row in zip(w.queries, w.source_rows):
            np.testing.assert_allclose(
                query, tiny_collection.vectors[row].astype(float)
            )

    def test_deterministic(self, tiny_collection):
        a = dataset_queries(tiny_collection, 5, seed=7)
        b = dataset_queries(tiny_collection, 5, seed=7)
        assert np.array_equal(a.queries, b.queries)

    def test_oversampling_allowed(self, tiny_collection):
        w = dataset_queries(tiny_collection, len(tiny_collection) + 10, seed=0)
        assert len(w) == len(tiny_collection) + 10

    def test_empty_collection_rejected(self):
        from repro.core.dataset import DescriptorCollection

        with pytest.raises(ValueError):
            dataset_queries(DescriptorCollection.empty(2), 1)

    def test_nonpositive_count_rejected(self, tiny_collection):
        with pytest.raises(ValueError):
            dataset_queries(tiny_collection, 0)


class TestSpaceQueries:
    def test_within_trimmed_ranges(self, tiny_collection):
        w = space_queries(tiny_collection, 50, seed=0, trim_fraction=0.05)
        assert w.name == "SQ"
        ranges = tiny_collection.dimension_ranges(0.05)
        assert np.all(w.queries >= ranges[:, 0] - 1e-12)
        assert np.all(w.queries <= ranges[:, 1] + 1e-12)

    def test_source_rows_are_minus_one(self, tiny_collection):
        w = space_queries(tiny_collection, 5, seed=0)
        assert np.all(w.source_rows == -1)

    def test_uniformity_spread(self, tiny_collection):
        """SQ queries should span the trimmed range, not cluster."""
        w = space_queries(tiny_collection, 400, seed=1)
        ranges = tiny_collection.dimension_ranges(0.05)
        widths = ranges[:, 1] - ranges[:, 0]
        spread = w.queries.max(axis=0) - w.queries.min(axis=0)
        assert np.all(spread > 0.8 * widths)

    def test_deterministic(self, tiny_collection):
        a = space_queries(tiny_collection, 5, seed=3)
        b = space_queries(tiny_collection, 5, seed=3)
        assert np.array_equal(a.queries, b.queries)


class TestSchedule:
    def test_round_robin_order(self):
        schedule = round_robin_schedule(2, ["A", "B", "C"])
        assert schedule == [
            (0, "A"), (0, "B"), (0, "C"),
            (1, "A"), (1, "B"), (1, "C"),
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin_schedule(-1, ["A"])
        with pytest.raises(ValueError):
            round_robin_schedule(1, [])
