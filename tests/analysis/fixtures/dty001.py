"""DTY001 fixture — literal float32 constructions fed to distance kernels."""

import numpy as np

from repro.core.distance import pairwise_squared_distances, squared_distances


def violation_astype(query, points):
    return squared_distances(query.astype(np.float32), points)  # expect DTY001


def violation_constructor(query, points):
    return squared_distances(np.float32(query), points)  # expect DTY001


def violation_dtype_kwarg(queries, points):
    return pairwise_squared_distances(
        np.asarray(queries, dtype="float32"), points  # expect DTY001
    )


def negative_plain_arguments(query, points):
    # Stored float32 data flowing through variables is fine: the kernel
    # itself promotes to float64.
    return squared_distances(query, points)


def negative_float64_cast(query, points):
    return squared_distances(query.astype(np.float64), points)


def suppressed_cast(query, points):
    return squared_distances(query.astype(np.float32), points)  # repro-lint: disable=DTY001
