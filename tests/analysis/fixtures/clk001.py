"""CLK001 fixture — linted as ``core/clk001.py`` (a simulated layer).

Never imported at runtime; the linter parses it as text.
"""

import time
from datetime import datetime
from time import perf_counter


def violation_module_call():
    return time.time()  # expect CLK001


def violation_bare_import():
    return perf_counter()  # expect CLK001


def violation_datetime():
    return datetime.now()  # expect CLK001


def negative_simulated_clock(clock):
    # Reading a SimClock is the sanctioned path — no wall-clock call here.
    clock.advance(0.5)
    return clock.now()


def negative_sleep_is_not_a_read():
    # time.sleep does not *read* the clock; only reads corrupt cost curves.
    time.sleep(0)


def suppressed_build_timer():
    return time.perf_counter()  # repro-lint: disable=CLK001
