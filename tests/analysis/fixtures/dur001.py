"""DUR001 fixture — linted as ``storage/dur001.py`` (the storage layer,
where *every* direct durable write is flagged regardless of path text).

Never imported at runtime; the linter parses it as text.
"""

import os
from pathlib import Path


def violation_open_write(path):
    with open(path, "w") as handle:  # expect DUR001
        handle.write("x")


def violation_open_append_keyword(path):
    return open(path, mode="ab")  # expect DUR001


def violation_open_update(path):
    return open(path, "r+b")  # expect DUR001


def violation_replace(source, destination):
    os.replace(source, destination)  # expect DUR001


def violation_rename(source, destination):
    os.rename(source, destination)  # expect DUR001


def violation_write_bytes(path):
    Path(path).write_bytes(b"data")  # expect DUR001


def violation_write_text(path):
    Path(path).write_text("data")  # expect DUR001


def ok_read_binary(path):
    with open(path, "rb") as handle:
        return handle.read()


def ok_read_default_mode(path):
    with open(path) as handle:
        return handle.read()


def ok_dynamic_mode(path, mode):
    # Conservative rule: only provably-writing constant modes flag.
    return open(path, mode)


def suppressed_write(path):
    return open(path, "wb")  # repro-lint: disable=DUR001
