"""RNG001 fixture — legacy numpy.random global-state calls."""

import numpy
import numpy as np


def violation_rand():
    return np.random.rand(3)  # expect RNG001


def violation_seed():
    numpy.random.seed(0)  # expect RNG001


def negative_seeded_generator():
    rng = np.random.default_rng(42)
    return rng.standard_normal(3)


def suppressed_legacy():
    return np.random.permutation(4)  # repro-lint: disable=RNG001
