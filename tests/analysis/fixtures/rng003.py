"""RNG003 fixture — default_rng() without a seed."""

import numpy as np
from numpy.random import default_rng


def violation_no_seed():
    return np.random.default_rng()  # expect RNG003


def violation_bare_import_no_seed():
    return default_rng()  # expect RNG003


def violation_literal_none():
    return np.random.default_rng(None)  # expect RNG003


def negative_positional_seed():
    return np.random.default_rng(42)


def negative_keyword_seed(seed):
    return np.random.default_rng(seed=seed)


def suppressed_entropy_rng():
    return np.random.default_rng()  # repro-lint: disable=RNG003
