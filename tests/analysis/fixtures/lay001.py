"""LAY001 fixture — linted as ``core/lay001.py``: a core module reaching
into the application shell (and stdlib/third-party imports that must not
trip the rule)."""

import os  # stdlib: never a boundary violation
import numpy as np  # third-party: never a boundary violation

import repro.experiments  # expect LAY001
from repro import system  # expect LAY001
from repro.cli import main  # expect LAY001

from repro.storage.pages import PageGeometry  # allowed: core -> storage
from .distance import squared_distances  # allowed: within-layer relative
from ..simio.clock import SimulatedClock  # allowed: core -> simio

from repro.extensions import vafile  # repro-lint: disable=LAY001
