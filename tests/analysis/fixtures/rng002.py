"""RNG002 fixture — stdlib random module-level calls."""

import random
from random import shuffle


def violation_module_call():
    return random.random()  # expect RNG002


def violation_bare_import(items):
    shuffle(items)  # expect RNG002


def negative_seeded_instance():
    rng = random.Random(7)
    return rng.random()


def suppressed_choice(items):
    return random.choice(items)  # repro-lint: disable=RNG002
