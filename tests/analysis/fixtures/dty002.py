"""DTY002 fixture — public ndarray-returning functions must state a dtype."""

import numpy as np


def violation_no_dtype_anywhere(n: int) -> np.ndarray:  # expect DTY002
    """Random-access helper with a silent result type."""
    return np.arange(n)


def negative_dtype_in_docstring(n: int) -> np.ndarray:
    """Consecutive integers, dtype int64."""
    return np.arange(n, dtype=np.int64)


def negative_parameterized_annotation(n: int) -> "npt.NDArray[np.float64]":
    return np.zeros(n)


def _negative_private(n: int) -> np.ndarray:
    return np.arange(n)


def negative_non_array(n: int) -> int:
    return n


def suppressed_undocumented(n: int) -> np.ndarray:  # repro-lint: disable=DTY002
    return np.ones(n)
