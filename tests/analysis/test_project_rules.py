"""Fixture tests for the whole-program rule families.

Each family gets multi-module fixture programs (via ``lint_sources``)
with positive cases asserting the exact ``(path, line, rule)`` and
negative cases asserting silence — a rule that over-fires breaks these
just as loudly as one that misses.
"""

from repro.analysis import lint_sources

#: Minimal stand-ins for the real modules the taint configs point at.
PIPELINE = (
    "class PipelineSimulator:\n"
    "    def elapsed(self) -> float:\n"
    "        return 0.0\n"
    "    def process_chunk(self, pages, count):\n"
    "        return 0.0\n"
)
CHUNK_CACHE = (
    "def chunk_read_time_s(disk, cache, page_offset, page_count):\n"
    "    return 0.001\n"
)
PARALLEL = (
    "def run_parallel(fn, items, workers=None):\n"
    "    return [fn(i) for i in items]\n"
)


def rules_at(diags, rule):
    return [(d.path, d.line) for d in diags if d.rule == rule]


class TestSim101TimeUnitMix:
    def test_cross_module_mix_is_caught(self):
        diags = lint_sources(
            {
                "simio/pipeline.py": PIPELINE,
                "host.py": (
                    "import time\n"
                    "def host_elapsed() -> float:\n"
                    "    return time.monotonic()\n"
                ),
                "core/mix.py": (
                    "from repro.host import host_elapsed\n"
                    "from repro.simio.pipeline import PipelineSimulator\n"
                    "def bad(sim: 'PipelineSimulator') -> float:\n"
                    "    return sim.elapsed() + host_elapsed()\n"
                ),
            }
        )
        assert rules_at(diags, "SIM101") == [("core/mix.py", 4)]

    def test_mix_through_local_variables(self):
        diags = lint_sources(
            {
                "simio/chunk_cache.py": CHUNK_CACHE,
                "core/mix.py": (
                    "import time\n"
                    "from repro.simio.chunk_cache import chunk_read_time_s\n"
                    "def bad(disk, cache) -> float:\n"
                    "    sim_t = chunk_read_time_s(disk, cache, 0, 1)\n"
                    "    host_t = time.perf_counter()\n"
                    "    return sim_t - host_t\n"
                ),
            }
        )
        assert rules_at(diags, "SIM101") == [("core/mix.py", 6)]

    def test_comparison_across_units_is_caught(self):
        diags = lint_sources(
            {
                "simio/pipeline.py": PIPELINE,
                "core/cmp.py": (
                    "import time\n"
                    "from repro.simio.pipeline import PipelineSimulator\n"
                    "def bad(sim: 'PipelineSimulator') -> bool:\n"
                    "    return sim.elapsed() > time.monotonic()\n"
                ),
            }
        )
        assert rules_at(diags, "SIM101") == [("core/cmp.py", 4)]

    def test_same_unit_arithmetic_is_clean(self):
        diags = lint_sources(
            {
                "simio/pipeline.py": PIPELINE,
                "core/ok.py": (
                    "from repro.simio.pipeline import PipelineSimulator\n"
                    "def fine(sim: 'PipelineSimulator') -> float:\n"
                    "    return sim.elapsed() + sim.elapsed()\n"
                ),
            }
        )
        assert not rules_at(diags, "SIM101")

    def test_unitless_arithmetic_is_clean(self):
        diags = lint_sources(
            {
                "core/ok.py": (
                    "def fine(a: float, b: float) -> float:\n"
                    "    return a + b\n"
                ),
            }
        )
        assert not rules_at(diags, "SIM101")

    def test_suppression_comment_silences(self):
        diags = lint_sources(
            {
                "simio/pipeline.py": PIPELINE,
                "core/mix.py": (
                    "import time\n"
                    "from repro.simio.pipeline import PipelineSimulator\n"
                    "def vetted(sim: 'PipelineSimulator') -> float:\n"
                    "    return sim.elapsed() + time.monotonic()  "
                    "# repro-lint: disable=SIM101\n"
                ),
            }
        )
        assert not rules_at(diags, "SIM101")


class TestSim102WallClockSink:
    def test_sim_value_into_time_sleep(self):
        diags = lint_sources(
            {
                "simio/chunk_cache.py": CHUNK_CACHE,
                "shell.py": (
                    "import time\n"
                    "from repro.simio.chunk_cache import chunk_read_time_s\n"
                    "def nap(disk, cache) -> None:\n"
                    "    t = chunk_read_time_s(disk, cache, 0, 1)\n"
                    "    time.sleep(t)\n"
                ),
            }
        )
        assert rules_at(diags, "SIM102") == [("shell.py", 5)]

    def test_host_value_into_time_sleep_is_clean(self):
        diags = lint_sources(
            {
                "shell.py": (
                    "import time\n"
                    "def nap() -> None:\n"
                    "    t0 = time.monotonic()\n"
                    "    time.sleep(time.monotonic() - t0)\n"
                ),
            }
        )
        assert not rules_at(diags, "SIM102")


class TestRng101SeedProvenance:
    def test_unseeded_seedsequence_is_caught(self):
        diags = lint_sources(
            {
                "core/mk.py": (
                    "import numpy as np\n"
                    "def make():\n"
                    "    ss = np.random.SeedSequence()\n"
                    "    return np.random.default_rng(ss)\n"
                ),
            }
        )
        assert ("core/mk.py", 3) in rules_at(diags, "RNG101")

    def test_wall_clock_seed_is_caught(self):
        diags = lint_sources(
            {
                "core/mk.py": (
                    "import numpy as np\n"
                    "import time\n"
                    "def make():\n"
                    "    return np.random.default_rng(int(time.time()))\n"
                ),
            }
        )
        assert rules_at(diags, "RNG101") == [("core/mk.py", 4)]

    def test_root_derived_seed_is_clean(self):
        diags = lint_sources(
            {
                "core/mk.py": (
                    "import numpy as np\n"
                    "def make(seed: int):\n"
                    "    root = np.random.SeedSequence(seed)\n"
                    "    children = root.spawn(2)\n"
                    "    return [np.random.default_rng(c) for c in children]\n"
                ),
            }
        )
        assert not rules_at(diags, "RNG101")


class TestRng102SeedFanout:
    def test_same_seed_two_generators(self):
        diags = lint_sources(
            {
                "core/fan.py": (
                    "import numpy as np\n"
                    "def run(seed: int) -> None:\n"
                    "    rng1 = np.random.default_rng(seed)\n"
                    "    rng2 = np.random.default_rng(seed)\n"
                ),
            }
        )
        flagged = rules_at(diags, "RNG102")
        assert flagged == [("core/fan.py", 4)]

    def test_spawned_children_are_clean(self):
        diags = lint_sources(
            {
                "core/fan.py": (
                    "import numpy as np\n"
                    "def run(seed: int) -> None:\n"
                    "    a, b = np.random.SeedSequence(seed).spawn(2)\n"
                    "    rng1 = np.random.default_rng(a)\n"
                    "    rng2 = np.random.default_rng(b)\n"
                ),
            }
        )
        assert not rules_at(diags, "RNG102")

    def test_derived_entropy_tuples_are_clean(self):
        # The FaultPlan idiom: keyed entropy tuples are *derived* seeds,
        # not a raw fan-out of the same scalar.
        diags = lint_sources(
            {
                "faults/p.py": (
                    "import numpy as np\n"
                    "def uniforms(seed: int, a: int, b: int):\n"
                    "    ss = np.random.SeedSequence(entropy=(seed, a, b))\n"
                    "    return ss.generate_state(4)\n"
                ),
            }
        )
        assert not rules_at(diags, "RNG102")


class TestExa001ExactnessContracts:
    def test_direct_crossing_is_caught(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: approximate\n"
                    "def estimate() -> float:\n"
                    "    return 0.5\n"
                    "\n"
                    "# repro: exact\n"
                    "def exact_path() -> float:\n"
                    "    return estimate()\n"
                ),
            }
        )
        assert rules_at(diags, "EXA001") == [("core/x.py", 7)]

    def test_crossing_through_unmarked_helper_is_caught(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: approximate\n"
                    "def estimate() -> float:\n"
                    "    return 0.5\n"
                    "\n"
                    "def helper() -> float:\n"
                    "    return estimate()\n"
                    "\n"
                    "# repro: exact\n"
                    "def exact_path() -> float:\n"
                    "    return helper()\n"
                ),
            }
        )
        flagged = rules_at(diags, "EXA001")
        assert flagged == [("core/x.py", 10)]
        message = [d for d in diags if d.rule == "EXA001"][0].message
        assert "estimate" in message and "helper" in message

    def test_waiver_silences_and_cuts_propagation(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: approximate\n"
                    "def estimate() -> float:\n"
                    "    return 0.5\n"
                    "\n"
                    "def helper() -> float:\n"
                    "    return estimate()  # repro: allow-approximate\n"
                    "\n"
                    "# repro: exact\n"
                    "def exact_path() -> float:\n"
                    "    return helper()\n"
                ),
            }
        )
        assert not rules_at(diags, "EXA001")

    def test_exact_calling_exact_is_clean(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: exact\n"
                    "def kernel() -> float:\n"
                    "    return 0.0\n"
                    "\n"
                    "# repro: exact\n"
                    "def caller() -> float:\n"
                    "    return kernel()\n"
                ),
            }
        )
        assert not rules_at(diags, "EXA001")


class TestExa002ContractTags:
    def test_unknown_tag_is_caught(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: exactish\n"
                    "def f() -> int:\n"
                    "    return 1\n"
                ),
            }
        )
        assert rules_at(diags, "EXA002") == [("core/x.py", 1)]

    def test_double_marking_is_caught(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: exact  # repro: approximate\n"
                    "def f() -> int:\n"
                    "    return 1\n"
                ),
            }
        )
        assert ("core/x.py", 1) in rules_at(diags, "EXA002")

    def test_known_tags_are_clean(self):
        diags = lint_sources(
            {
                "core/x.py": (
                    "# repro: exact\n"
                    "def f() -> int:\n"
                    "    return 1\n"
                    "\n"
                    "# repro: owns(acc)\n"
                    "def g() -> int:\n"
                    "    return 2\n"
                ),
            }
        )
        assert not rules_at(diags, "EXA002")


class TestExa003ParallelOwnership:
    def test_captured_mutation_in_worker(self):
        diags = lint_sources(
            {
                "parallel.py": PARALLEL,
                "core/b.py": (
                    "from repro.parallel import run_parallel\n"
                    "def search(groups) -> dict:\n"
                    "    out = {}\n"
                    "    def work(g):\n"
                    "        out[g] = g\n"
                    "    run_parallel(work, groups)\n"
                    "    return out\n"
                ),
            }
        )
        assert rules_at(diags, "EXA003") == [("core/b.py", 5)]

    def test_owns_declaration_silences(self):
        diags = lint_sources(
            {
                "parallel.py": PARALLEL,
                "core/b.py": (
                    "from repro.parallel import run_parallel\n"
                    "def search(groups) -> dict:\n"
                    "    out = {}\n"
                    "    # repro: owns(out)\n"
                    "    def work(g):\n"
                    "        out[g] = g\n"
                    "    run_parallel(work, groups)\n"
                    "    return out\n"
                ),
            }
        )
        assert not rules_at(diags, "EXA003")

    def test_worker_local_state_is_clean(self):
        diags = lint_sources(
            {
                "parallel.py": PARALLEL,
                "core/b.py": (
                    "from repro.parallel import run_parallel\n"
                    "def search(groups) -> list:\n"
                    "    def work(group):\n"
                    "        cache = {}\n"
                    "        for g in group:\n"
                    "            cache[g] = g\n"
                    "        return cache\n"
                    "    return run_parallel(work, groups)\n"
                ),
            }
        )
        assert not rules_at(diags, "EXA003")
