"""Baseline ratchet, SARIF output, AST cache, profiling, and the
determinism/performance acceptance checks on the shipped tree."""

import json
import os
import time

import pytest

from repro.analysis import (
    apply_baseline,
    lint_tree,
    load_baseline,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.analysis.baseline import fingerprint
from repro.analysis.cli import main as analysis_main
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import all_rules
from repro.analysis.runner import package_root


def make_tree(tmp_path, files):
    root = tmp_path / "pkg"
    for relpath, text in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return str(root)


#: A one-violation package: a wall-clock read in a simulated layer.
DIRTY = {
    "__init__.py": "",
    "core/__init__.py": "",
    "core/bad.py": "import time\n_T0 = time.time()\n",
}


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        d = Diagnostic(path="core/bad.py", line=2, col=6, rule="CLK001", message="m")
        path = str(tmp_path / "base.json")
        assert write_baseline(path, [d]) == 1
        loaded = load_baseline(path)
        assert loaded == {fingerprint(d): 1}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == {}

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_apply_is_line_insensitive_but_count_sensitive(self):
        old = Diagnostic(path="a.py", line=10, col=0, rule="CLK001", message="m")
        moved = Diagnostic(path="a.py", line=99, col=0, rule="CLK001", message="m")
        extra = Diagnostic(path="a.py", line=100, col=0, rule="CLK001", message="m")
        baseline = {fingerprint(old): 1}
        fresh, suppressed = apply_baseline([moved], baseline)
        assert fresh == [] and suppressed == 1
        # A second instance of the same finding exceeds the count: fails.
        fresh, suppressed = apply_baseline([moved, extra], baseline)
        assert len(fresh) == 1 and suppressed == 1

    def test_cli_ratchet_flow(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        baseline = str(tmp_path / "b.json")
        # Dirty tree fails without a baseline...
        assert analysis_main([root, "--baseline", baseline]) == 1
        capsys.readouterr()
        # ...writing the baseline accepts the current findings...
        assert analysis_main([root, "--baseline", baseline, "--write-baseline"]) == 0
        assert analysis_main([root, "--baseline", baseline]) == 0
        assert "baselined" in capsys.readouterr().err
        # ...but a *new* finding still fails,
        with open(os.path.join(root, "core", "bad.py"), "a", encoding="utf-8") as fh:
            fh.write("_T1 = time.perf_counter()\n")
        assert analysis_main([root, "--baseline", baseline]) == 1
        # and --no-baseline reports everything.
        capsys.readouterr()
        assert analysis_main([root, "--baseline", baseline, "--no-baseline"]) == 1
        assert "time.time" in capsys.readouterr().out

    def test_shipped_tree_needs_no_baseline(self):
        # The acceptance criterion: src/repro lints clean with no
        # baseline file at all.
        assert not os.path.exists(
            os.path.join(
                os.path.dirname(os.path.dirname(package_root())),
                ".repro-lint-baseline.json",
            )
        )
        assert lint_tree(package_root()).ok


class TestSarif:
    def test_shape_and_rule_metadata(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        result = lint_tree(root)
        payload = json.loads(render_sarif(result.diagnostics, all_rules()))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "SIM101" in rule_ids and "EXA001" in rule_ids
        (res,) = run["results"]
        assert res["ruleId"] == "CLK001"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "core/bad.py"
        assert loc["region"]["startLine"] == 2

    def test_cli_writes_sarif(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        sarif_path = str(tmp_path / "out.sarif")
        assert analysis_main([root, "--no-baseline", "--sarif", sarif_path]) == 1
        payload = json.loads(open(sarif_path, encoding="utf-8").read())
        assert payload["runs"][0]["results"]


class TestAstCache:
    def test_cache_rerun_is_equivalent(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        cache = str(tmp_path / "cache")
        cold = lint_tree(root, cache_dir=cache)
        entries = os.listdir(cache)
        assert entries, "cache was not populated"
        warm = lint_tree(root, cache_dir=cache)
        assert [d.format() for d in cold] == [d.format() for d in warm]
        assert os.listdir(cache) == entries

    def test_corrupt_cache_entry_is_tolerated(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        cache = str(tmp_path / "cache")
        lint_tree(root, cache_dir=cache)
        for name in os.listdir(cache):
            with open(os.path.join(cache, name), "wb") as fh:
                fh.write(b"garbage")
        result = lint_tree(root, cache_dir=cache)
        assert [d.rule for d in result] == ["CLK001"]


class TestProfiling:
    def test_phase_and_rule_timings_populated(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        result = lint_tree(root)
        assert set(result.phase_timings) == {"parse", "symbols", "callgraph", "rules"}
        assert all(t >= 0.0 for t in result.phase_timings.values())
        assert "CLK001" in result.rule_timings

    def test_cli_profile_flag(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        analysis_main([root, "--no-baseline", "--profile"])
        err = capsys.readouterr().err
        assert "phase timings:" in err and "callgraph" in err


class TestExplain:
    def test_known_rule(self, capsys):
        assert analysis_main(["--explain", "SIM101"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SIM101")
        assert "simulated" in out.lower()

    def test_unknown_rule(self, capsys):
        assert analysis_main(["--explain", "ZZZ999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestShippedTreeAcceptance:
    """The PR's acceptance criteria on the real src/repro tree."""

    def test_clean_fast_and_deterministic(self):
        started = time.perf_counter()
        first = lint_tree(package_root())
        elapsed = time.perf_counter() - started
        assert first.ok, "\n".join(d.format() for d in first)
        assert elapsed < 10.0, f"full-tree analysis took {elapsed:.1f}s"
        second = lint_tree(package_root())
        render = lambda r: (
            render_json(r.diagnostics, checked_files=r.checked_files, rules=r.rules),
            render_sarif(r.diagnostics, all_rules()),
        )
        assert render(first) == render(second)
