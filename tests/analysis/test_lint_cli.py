"""End-to-end tests: the shipped tree is clean, seeded violations are
caught, and both entry points report correctly."""

import json
import os
import shutil

import pytest

from repro.analysis import lint_tree
from repro.analysis.cli import main as analysis_main
from repro.analysis.runner import package_root
from repro.cli import main as repro_main

#: One representative violation per rule family, as a snippet appended to
#: a copy of a real core module.  Each must be caught by ``repro lint``.
SEEDED_VIOLATIONS = {
    "CLK001": "import time\n_T0 = time.time()\n",
    "RNG001": "import numpy as _np_v\n_R = _np_v.random.rand(3)\n",
    "RNG002": "import random as _rand_v\n_C = _rand_v.random()\n",
    "RNG003": "import numpy as _np_u\n_G = _np_u.random.default_rng()\n",
    "DTY001": (
        "import numpy as _np_d\n"
        "from .distance import squared_distances as _sq\n"
        "def _bad(q, p):\n"
        "    return _sq(q.astype(_np_d.float32), p)\n"
    ),
    "DTY002": (
        "import numpy as _np_a\n"
        "def undocumented_array() -> _np_a.ndarray:\n"
        "    return _np_a.zeros(3)\n"
    ),
    "LAY001": "from ..experiments import config as _cfg\n",
}


class TestShippedTreeIsClean:
    def test_smoke_lint_tree(self):
        result = lint_tree(package_root())
        assert result.ok, "\n".join(d.format() for d in result)
        assert result.checked_files > 50

    def test_smoke_repro_lint_exit_zero(self, capsys):
        assert repro_main(["lint"]) == 0
        assert "no violations" in capsys.readouterr().err

    def test_smoke_module_entry_point(self, capsys):
        assert analysis_main([]) == 0


class TestSeededViolationsAreCaught:
    @pytest.fixture()
    def tree_copy(self, tmp_path):
        """A private copy of the real package tree we can corrupt freely
        (the shipped tree itself is never touched)."""
        target = str(tmp_path / "repro")
        shutil.copytree(package_root(), target)
        return target

    @pytest.mark.parametrize("rule,snippet", sorted(SEEDED_VIOLATIONS.items()))
    def test_seeded_core_violation_caught(self, tree_copy, rule, snippet):
        victim = os.path.join(tree_copy, "core", "search.py")
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("\n\n" + snippet)
        result = lint_tree(tree_copy)
        flagged = [d for d in result if d.rule == rule]
        assert flagged, f"seeded {rule} violation was not caught"
        assert all(d.path == "core/search.py" for d in flagged)

    def test_seeding_all_violations_fails_cli_with_locations(
        self, tree_copy, capsys
    ):
        victim = os.path.join(tree_copy, "core", "search.py")
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("\n\n" + "".join(SEEDED_VIOLATIONS.values()))
        assert repro_main(["lint", tree_copy]) == 1
        out = capsys.readouterr().out
        # file:line diagnostics, one per seeded family.
        for rule in SEEDED_VIOLATIONS:
            assert rule in out
        assert "core/search.py:" in out


class TestNewModulesAreCovered:
    """The pruned-scan additions live in simulated layers: the chunk cache
    (simio) and the router (core) must be inside the lint walk, subject to
    the wall-clock and layering contracts like the modules around them."""

    @pytest.fixture()
    def tree_copy(self, tmp_path):
        target = str(tmp_path / "repro")
        shutil.copytree(package_root(), target)
        return target

    def test_new_modules_are_walked(self):
        result = lint_tree(package_root())
        assert result.ok
        walked = {
            os.path.join(root, name)
            for root, _, names in os.walk(package_root())
            for name in names
        }
        assert any(p.endswith("simio/chunk_cache.py") for p in walked)
        assert any(p.endswith("core/routing.py") for p in walked)

    def test_wall_clock_read_in_chunk_cache_caught(self, tree_copy):
        victim = os.path.join(tree_copy, "simio", "chunk_cache.py")
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("\n\nimport time\n_T0 = time.time()\n")
        result = lint_tree(tree_copy)
        flagged = [d for d in result if d.rule == "CLK001"]
        assert flagged
        assert all(d.path == "simio/chunk_cache.py" for d in flagged)

    def test_upward_import_in_chunk_cache_caught(self, tree_copy):
        victim = os.path.join(tree_copy, "simio", "chunk_cache.py")
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("\n\nfrom ..core import search as _s\n")
        result = lint_tree(tree_copy)
        assert any(
            d.rule == "LAY001" and d.path == "simio/chunk_cache.py"
            for d in result
        )

    def test_wall_clock_read_in_router_caught(self, tree_copy):
        victim = os.path.join(tree_copy, "core", "routing.py")
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("\n\nimport time\n_T0 = time.time()\n")
        result = lint_tree(tree_copy)
        assert any(
            d.rule == "CLK001" and d.path == "core/routing.py" for d in result
        )


class TestCliOptions:
    def test_json_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "lint.json")
        assert repro_main(["lint", "--format", "json", "--output", report_path]) == 0
        with open(report_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["violations"] == 0
        assert payload["checked_files"] > 50
        assert sorted(payload["rules"]) == payload["rules"]

    def test_rule_selection(self, capsys):
        assert repro_main(["lint", "--rules", "CLK001,LAY001"]) == 0
        assert repro_main(["lint", "--rules", "BOGUS9"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("CLK001", "RNG001", "RNG002", "RNG003", "DTY001", "DTY002", "LAY001"):
            assert rule in out

    def test_missing_directory(self, capsys):
        assert repro_main(["lint", "/nonexistent/pkg"]) == 2
        assert "not a directory" in capsys.readouterr().err
