"""Unit tests for the whole-program model: symbol table, re-export
canonicalization, call graph, and the LAY001 re-export fix."""

import ast

from repro.analysis import lint_sources
from repro.analysis.callgraph import CallGraph, attribute_types
from repro.analysis.config import default_config
from repro.analysis.imports import canonicalize
from repro.analysis.symbols import SymbolTable, parse_contracts


def build_symbols(sources):
    files = [
        (relpath, text, ast.parse(text)) for relpath, text in sorted(sources.items())
    ]
    return SymbolTable.build("repro", files)


class TestCanonicalize:
    def test_empty_map_is_identity(self):
        assert canonicalize("repro.core.search.ChunkSearcher", {}) == (
            "repro.core.search.ChunkSearcher"
        )

    def test_chases_chain_through_two_inits(self):
        reexports = {
            "repro.LruChunkCache": "repro.simio.LruChunkCache",
            "repro.simio.LruChunkCache": "repro.simio.chunk_cache.LruChunkCache",
        }
        assert canonicalize("repro.LruChunkCache", reexports) == (
            "repro.simio.chunk_cache.LruChunkCache"
        )

    def test_prefix_expansion_keeps_attribute_suffix(self):
        reexports = {"repro.Searcher": "repro.core.search.Searcher"}
        assert canonicalize("repro.Searcher.search", reexports) == (
            "repro.core.search.Searcher.search"
        )

    def test_self_prefixed_mapping_terminates(self):
        # A function named after its module: the key is a prefix of its
        # own value.  Naive prefix chasing would grow the name forever.
        reexports = {"repro.srtree.bulk_load": "repro.srtree.bulk_load.bulk_load"}
        assert canonicalize("repro.srtree.bulk_load", reexports) == (
            "repro.srtree.bulk_load.bulk_load"
        )

    def test_identity_mapping_terminates(self):
        assert canonicalize("repro.simio", {"repro.simio": "repro.simio"}) == (
            "repro.simio"
        )


class TestSymbolTable:
    def test_reexports_built_from_init_files(self):
        table = build_symbols(
            {
                "__init__.py": "from .simio import LruChunkCache\n",
                "simio/__init__.py": "from .chunk_cache import LruChunkCache\n",
                "simio/chunk_cache.py": "class LruChunkCache:\n    pass\n",
            }
        )
        assert table.canonical("repro.LruChunkCache") == (
            "repro.simio.chunk_cache.LruChunkCache"
        )

    def test_resolve_function_and_method(self):
        table = build_symbols(
            {
                "core/search.py": (
                    "def helper() -> int:\n"
                    "    return 1\n"
                    "class Searcher:\n"
                    "    def search(self) -> int:\n"
                    "        return helper()\n"
                ),
            }
        )
        assert table.resolve_function("repro.core.search.helper") is not None
        method = table.resolve_function("repro.core.search.Searcher.search")
        assert method is not None
        assert method.class_name == "Searcher"

    def test_contract_on_line_above_def(self):
        table = build_symbols(
            {
                "core/a.py": (
                    "# repro: exact\n"
                    "def kernel() -> float:\n"
                    "    return 0.0\n"
                    "\n"
                    "def plain() -> float:\n"
                    "    return 1.0\n"
                ),
            }
        )
        assert table.functions["repro.core.a.kernel"].contract == "exact"
        assert table.functions["repro.core.a.plain"].contract is None

    def test_parse_contracts_tags_and_owns(self):
        contracts = parse_contracts(
            "x = 1  # repro: exact\n"
            "# repro: owns(acc)\n"
            "y = 2\n"
        )
        assert contracts.tags_on(1) == ("exact",)
        assert contracts.owned_on(2) == ("acc",)


class TestCallGraph:
    def test_cross_module_call_edge_resolves(self):
        table = build_symbols(
            {
                "a.py": "def source() -> float:\n    return 1.0\n",
                "core/b.py": (
                    "from repro.a import source\n"
                    "def caller() -> float:\n"
                    "    return source()\n"
                ),
            }
        )
        graph = CallGraph.build(table, attribute_types(table))
        sites = graph.calls_from("repro.core.b.caller")
        resolved = [s.resolved.qualname for s in sites if s.resolved is not None]
        assert "repro.a.source" in resolved

    def test_method_call_through_annotated_param(self):
        table = build_symbols(
            {
                "simio/pipeline.py": (
                    "class PipelineSimulator:\n"
                    "    def elapsed(self) -> float:\n"
                    "        return 0.0\n"
                ),
                "core/c.py": (
                    "from repro.simio.pipeline import PipelineSimulator\n"
                    "def run(sim: PipelineSimulator) -> float:\n"
                    "    return sim.elapsed()\n"
                ),
            }
        )
        graph = CallGraph.build(table, attribute_types(table))
        resolved = [
            s.resolved.qualname
            for s in graph.calls_from("repro.core.c.run")
            if s.resolved is not None
        ]
        assert "repro.simio.pipeline.PipelineSimulator.elapsed" in resolved


class TestLay001ReexportFix:
    """The historical false negative: an algorithmic layer importing an
    app-shell symbol through the top-level ``__init__`` re-export."""

    SOURCES = {
        "__init__.py": "from .system import ImageRetrievalSystem\n",
        "system.py": "class ImageRetrievalSystem:\n    pass\n",
        "core/search.py": "from .. import ImageRetrievalSystem\n",
    }

    def test_reexported_shell_symbol_is_caught(self):
        diags = lint_sources(self.SOURCES, config=default_config())
        lay = [d for d in diags if d.rule == "LAY001"]
        assert len(lay) == 1
        assert lay[0].path == "core/search.py"
        assert lay[0].line == 1
        assert "system" in lay[0].message

    def test_direct_submodule_import_still_caught(self):
        diags = lint_sources(
            {
                "system.py": "class ImageRetrievalSystem:\n    pass\n",
                "core/search.py": "from ..system import ImageRetrievalSystem\n",
            },
            config=default_config(),
        )
        assert any(d.rule == "LAY001" and d.path == "core/search.py" for d in diags)

    def test_allowed_reexport_is_not_flagged(self):
        diags = lint_sources(
            {
                "__init__.py": "from .core import ChunkSearcher\n",
                "core/__init__.py": "from .search import ChunkSearcher\n",
                "core/search.py": "class ChunkSearcher:\n    pass\n",
                "experiments/run.py": "from .. import ChunkSearcher\n",
            },
            config=default_config(),
        )
        assert not [d for d in diags if d.rule == "LAY001"]
