"""Fixture-based tests: one fixture module per rule.

Each fixture under ``fixtures/`` contains positive cases (lines marked
``# expect RULEID``), negative cases and an inline-suppression case.  The
test lints the fixture text under a chosen package-relative path (which
fixes its layer) and asserts the reported ``(line, rule)`` pairs match
the markers exactly — so a rule that over-fires breaks the test just as
loudly as one that misses.
"""

import os
import re

import pytest

from repro.analysis import lint_source

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")

#: fixture file -> package-relative path it is linted as.  Layers vary on
#: purpose: determinism/dtype rules apply package-wide, CLK001/LAY001 are
#: layer-scoped.
FIXTURES = {
    "clk001.py": "core/clk001.py",
    "rng001.py": "extensions/rng001.py",
    "rng002.py": "experiments/rng002.py",
    "rng003.py": "chunking/rng003.py",
    "dty001.py": "core/dty001.py",
    "dty002.py": "simio/dty002.py",
    "lay001.py": "core/lay001.py",
    "dur001.py": "storage/dur001.py",
}

_EXPECT = re.compile(r"#\s*expect\s+([A-Z]{3}\d{3})")


def load_fixture(name):
    with open(os.path.join(FIXTURE_DIR, name), "r", encoding="utf-8") as handle:
        return handle.read()


def expected_markers(source):
    """``{(line, rule)}`` pairs declared by ``# expect RULE`` comments."""
    marks = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            marks.add((lineno, match.group(1)))
    return marks


@pytest.mark.parametrize("fixture,relpath", sorted(FIXTURES.items()))
def test_fixture_matches_markers(fixture, relpath):
    source = load_fixture(fixture)
    expected = expected_markers(source)
    assert expected, f"fixture {fixture} declares no expected violations"
    found = {(d.line, d.rule) for d in lint_source(source, relpath)}
    assert found == expected


def test_clk001_is_layer_scoped():
    """The same wall-clock fixture is clean outside the simulated layers."""
    source = load_fixture("clk001.py")
    diagnostics = lint_source(source, "experiments/clk001.py")
    assert not [d for d in diagnostics if d.rule == "CLK001"]


def test_clk001_respects_config_allowlist():
    """simio/clock.py (the WallClock implementation) is allowlisted."""
    source = "import time\n\n\ndef now():\n    return time.perf_counter()\n"
    assert [d.rule for d in lint_source(source, "simio/clock.py")] == []
    assert [d.rule for d in lint_source(source, "simio/other.py")] == ["CLK001"]


def test_lay001_simio_must_not_import_core():
    source = "from repro.core.search import ChunkSearcher\n"
    diagnostics = lint_source(source, "simio/pipeline.py")
    assert [d.rule for d in diagnostics] == ["LAY001"]
    # The same import is fine from core itself.
    assert lint_source(source, "core/search.py") == []


def test_lay001_relative_imports_resolved():
    # In core/, "from .. import system" reaches repro.system: forbidden.
    diagnostics = lint_source("from .. import system\n", "core/search.py")
    assert [d.rule for d in diagnostics] == ["LAY001"]
    # "from . import chunk" stays inside core: allowed.
    assert lint_source("from . import chunk\n", "core/search.py") == []


def test_diagnostics_carry_location_and_message():
    source = "import time\nt = time.time()\n"
    (diagnostic,) = lint_source(source, "storage/pages.py")
    assert diagnostic.rule == "CLK001"
    assert diagnostic.path == "storage/pages.py"
    assert diagnostic.line == 2
    assert "SimulatedClock" in diagnostic.message
    assert diagnostic.format().startswith("storage/pages.py:2:")


def test_dur001_sanctioned_files_exempt():
    """The three crash-safe write sites may write/rename directly."""
    source = (
        "import os\n\n\ndef publish(path, tmp):\n"
        "    with open(tmp, 'wb') as handle:\n"
        "        handle.write(b'x')\n"
        "    os.replace(tmp, path)\n"
    )
    for sanctioned in ("storage/atomic.py", "storage/chunk_file.py", "storage/wal.py"):
        assert [d.rule for d in lint_source(source, sanctioned)] == []
    assert "DUR001" in [d.rule for d in lint_source(source, "storage/delta.py")]


def test_dur001_outside_storage_gated_on_durable_keywords():
    """Elsewhere only writes whose path expressions name a durable artifact."""
    flagged = "def save(index_path):\n    return open(index_path, 'w')\n"
    diagnostics = lint_source(flagged, "experiments/exporter.py")
    assert [d.rule for d in diagnostics] == ["DUR001"]

    report = "def save(out):\n    return open(out, 'w')\n"
    assert lint_source(report, "experiments/exporter.py") == []

    rename = (
        "import os\n\n\ndef swap(tmp, manifest_path):\n"
        "    os.replace(tmp, manifest_path)\n"
    )
    assert "DUR001" in [
        d.rule for d in lint_source(rename, "experiments/exporter.py")
    ]


def test_dur001_shipped_tree_is_clean():
    """The real package must publish durable artifacts only through the
    sanctioned write sites."""
    from repro.analysis.runner import lint_tree, package_root

    result = lint_tree(package_root())
    assert not [d for d in result.diagnostics if d.rule == "DUR001"]
