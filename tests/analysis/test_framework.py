"""Unit tests for the linter's shared machinery (not the rules)."""

import json

import pytest

from repro.analysis import (
    Diagnostic,
    default_config,
    lint_source,
    render_json,
    render_text,
    select_rules,
)
from repro.analysis.rules import RULE_IDS, ImportTable
from repro.analysis.suppressions import parse_suppressions


class TestSuppressions:
    def test_single_rule(self):
        index = parse_suppressions("x = 1  # repro-lint: disable=CLK001\n")
        assert index.is_suppressed(1, "CLK001")
        assert not index.is_suppressed(1, "RNG001")
        assert not index.is_suppressed(2, "CLK001")

    def test_multiple_rules_and_all(self):
        source = (
            "a = 1  # repro-lint: disable=CLK001,RNG001\n"
            "b = 2  # repro-lint: disable=all\n"
        )
        index = parse_suppressions(source)
        assert index.is_suppressed(1, "RNG001")
        assert index.is_suppressed(2, "DTY002")

    def test_string_literal_is_not_a_directive(self):
        # The marker inside a string must not suppress anything.
        source = 'text = "# repro-lint: disable=CLK001"\n'
        assert len(parse_suppressions(source)) == 0

    def test_suppression_only_applies_to_its_own_line(self):
        source = (
            "import time\n"
            "# repro-lint: disable=CLK001\n"
            "t = time.time()\n"
        )
        diagnostics = lint_source(source, "core/x.py")
        assert [d.rule for d in diagnostics] == ["CLK001"]


class TestImportTable:
    def _table(self, source, package="repro.core"):
        import ast

        return ImportTable(ast.parse(source), package)

    def test_plain_and_aliased(self):
        table = self._table("import time\nimport numpy as np\n")
        assert table.resolve("time") == "time"
        assert table.resolve("np") == "numpy"

    def test_from_imports(self):
        table = self._table("from time import perf_counter as pc\n")
        assert table.resolve("pc") == "time.perf_counter"

    def test_relative_imports(self):
        table = self._table("from ..simio import clock\n")
        assert table.resolve("clock") == "repro.simio.clock"

    def test_unknown_name(self):
        assert self._table("import os\n").resolve("sys") is None


class TestConfig:
    def test_layer_of(self):
        config = default_config()
        assert config.layer_of("core/search.py") == "core"
        assert config.layer_of("system.py") == "system"
        assert config.layer_of("analysis/rules/base.py") == "analysis"

    def test_select_rules(self):
        assert [r.id for r in select_rules(["CLK001", "LAY001"])] == [
            "CLK001",
            "LAY001",
        ]
        assert sorted(r.id for r in select_rules()) == sorted(RULE_IDS)
        with pytest.raises(ValueError, match="unknown rule"):
            select_rules(["NOPE01"])


class TestReporting:
    DIAGNOSTICS = [
        Diagnostic("b.py", 3, 0, "RNG001", "legacy rng"),
        Diagnostic("a.py", 9, 4, "CLK001", "wall clock"),
    ]

    def test_text_sorted_by_location(self):
        text = render_text(self.DIAGNOSTICS)
        assert text.splitlines() == [
            "a.py:9:4: CLK001 wall clock",
            "b.py:3:0: RNG001 legacy rng",
        ]

    def test_json_shape(self):
        payload = json.loads(
            render_json(self.DIAGNOSTICS, checked_files=5, rules=["CLK001", "RNG001"])
        )
        assert payload["schema_version"] == 1
        assert payload["checked_files"] == 5
        assert payload["violations"] == 2
        assert payload["violations_by_rule"] == {"CLK001": 1, "RNG001": 1}
        assert payload["diagnostics"][0]["path"] == "a.py"


class TestParseFailures:
    def test_syntax_error_is_a_diagnostic(self):
        diagnostics = lint_source("def broken(:\n", "core/x.py")
        assert [d.rule for d in diagnostics] == ["PARSE"]
        assert "syntax error" in diagnostics[0].message
