"""Tests for the 100-byte descriptor record codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.storage.records import RecordCodec


class TestRecordCodec:
    def test_paper_layout_is_100_bytes(self):
        assert RecordCodec(24).record_bytes == 100

    def test_roundtrip(self):
        codec = RecordCodec(4)
        ids = np.array([7, 42, 1])
        vectors = np.arange(12, dtype=np.float32).reshape(3, 4)
        buffer = codec.encode(ids, vectors)
        assert len(buffer) == 3 * codec.record_bytes
        out_ids, out_vectors = codec.decode(buffer)
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(out_vectors, vectors)
        assert out_ids.dtype == np.int64

    def test_empty_roundtrip(self):
        codec = RecordCodec(3)
        ids, vectors = codec.decode(codec.encode(np.empty(0), np.empty((0, 3))))
        assert ids.size == 0 and vectors.shape == (0, 3)

    def test_wrong_dims_rejected(self):
        codec = RecordCodec(4)
        with pytest.raises(ValueError):
            codec.encode(np.array([1]), np.ones((1, 5), dtype=np.float32))

    def test_unparallel_rejected(self):
        codec = RecordCodec(2)
        with pytest.raises(ValueError):
            codec.encode(np.array([1, 2]), np.ones((1, 2), dtype=np.float32))

    def test_id_overflow_rejected(self):
        codec = RecordCodec(2)
        with pytest.raises(ValueError, match="int32"):
            codec.encode(np.array([2**40]), np.ones((1, 2), dtype=np.float32))

    def test_partial_record_rejected(self):
        codec = RecordCodec(2)
        with pytest.raises(ValueError, match="whole number"):
            codec.decode(b"\x00" * (codec.record_bytes + 1))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            RecordCodec(0)

    @given(
        hnp.arrays(
            np.float32,
            st.tuples(st.integers(1, 20), st.integers(1, 32)),
            elements=st.floats(-1e6, 1e6, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, vectors):
        codec = RecordCodec(vectors.shape[1])
        ids = np.arange(vectors.shape[0])
        out_ids, out_vectors = codec.decode(codec.encode(ids, vectors))
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(out_vectors, vectors)
