"""Tests for the index-file codec."""

import io

import numpy as np
import pytest

from repro.core.chunk import ChunkMeta
from repro.storage.index_file import (
    MAGIC,
    index_file_bytes,
    read_index_file,
    write_index_file,
)


def make_metas(n, dims=4):
    rng = np.random.default_rng(0)
    metas = []
    offset = 0
    for i in range(n):
        pages = int(rng.integers(1, 5))
        metas.append(
            ChunkMeta(
                chunk_id=i,
                centroid=rng.standard_normal(dims),
                radius=float(rng.random()),
                n_descriptors=int(rng.integers(1, 100)),
                page_offset=offset,
                page_count=pages,
            )
        )
        offset += pages
    return metas


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "chunks.idx")
        metas = make_metas(7)
        write_index_file(path, metas)
        loaded = read_index_file(path)
        assert len(loaded) == 7
        for a, b in zip(metas, loaded):
            assert a.chunk_id == b.chunk_id
            np.testing.assert_allclose(a.centroid, b.centroid)
            assert a.radius == pytest.approx(b.radius)
            assert a.n_descriptors == b.n_descriptors
            assert (a.page_offset, a.page_count) == (b.page_offset, b.page_count)

    def test_stream_roundtrip(self):
        stream = io.BytesIO()
        metas = make_metas(3, dims=24)
        write_index_file(stream, metas)
        stream.seek(0)
        loaded = read_index_file(stream)
        assert len(loaded) == 3

    def test_size_matches_prediction(self, tmp_path):
        import os

        path = str(tmp_path / "chunks.idx")
        metas = make_metas(11, dims=24)
        write_index_file(path, metas)
        assert os.path.getsize(path) == index_file_bytes(11, 24)


class TestValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_index_file(str(tmp_path / "e.idx"), [])

    def test_out_of_order_rejected(self, tmp_path):
        metas = make_metas(3)
        metas[1], metas[2] = metas[2], metas[1]
        with pytest.raises(ValueError, match="chunk order"):
            write_index_file(str(tmp_path / "o.idx"), metas)

    def test_bad_magic(self):
        stream = io.BytesIO(b"NOTMAGIC" + b"\x00" * 100)
        with pytest.raises(IOError, match="magic"):
            read_index_file(stream)

    def test_truncated_header(self):
        with pytest.raises(IOError, match="too short"):
            read_index_file(io.BytesIO(b"\x00" * 4))

    def test_truncated_entries(self, tmp_path):
        path = str(tmp_path / "t.idx")
        write_index_file(path, make_metas(5))
        with open(path, "r+b") as f:
            size = f.seek(0, 2)
            f.truncate(size - 10)
        with pytest.raises(IOError, match="truncated"):
            read_index_file(path)

    def test_magic_constant(self):
        assert MAGIC == b"EFF2CIDX"


class TestHeaderGuards:
    """Corrupted dims/n_chunks fields must fail fast and typed."""

    @staticmethod
    def _packed(metas, dims=None, n_chunks=None):
        import io as _io
        import struct

        stream = _io.BytesIO()
        write_index_file(stream, metas)
        data = bytearray(stream.getvalue())
        # Header: <8sIIQ8s -> dims at offset 12, n_chunks at offset 16.
        if dims is not None:
            struct.pack_into("<I", data, 12, dims)
        if n_chunks is not None:
            struct.pack_into("<Q", data, 16, n_chunks)
        return _io.BytesIO(bytes(data))

    def test_zero_dimensions_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_index_file(self._packed(make_metas(3), dims=0))

    def test_overflowing_dimensions_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_index_file(self._packed(make_metas(3), dims=2**32 - 1))

    def test_overflowing_chunk_count_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible size"):
            read_index_file(self._packed(make_metas(3), n_chunks=2**63))
