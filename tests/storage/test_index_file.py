"""Tests for the index-file codec."""

import io

import numpy as np
import pytest

from repro.core.chunk import ChunkMeta
from repro.storage.errors import CorruptFileError
from repro.storage.index_file import (
    MAGIC,
    SUPPORTED_VERSIONS,
    VERSION,
    centroid_sq_norms,
    index_file_bytes,
    read_index_file,
    read_index_file_with_norms,
    write_index_file,
)


def make_metas(n, dims=4):
    rng = np.random.default_rng(0)
    metas = []
    offset = 0
    for i in range(n):
        pages = int(rng.integers(1, 5))
        metas.append(
            ChunkMeta(
                chunk_id=i,
                centroid=rng.standard_normal(dims),
                radius=float(rng.random()),
                n_descriptors=int(rng.integers(1, 100)),
                page_offset=offset,
                page_count=pages,
            )
        )
        offset += pages
    return metas


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "chunks.idx")
        metas = make_metas(7)
        write_index_file(path, metas)
        loaded = read_index_file(path)
        assert len(loaded) == 7
        for a, b in zip(metas, loaded):
            assert a.chunk_id == b.chunk_id
            np.testing.assert_allclose(a.centroid, b.centroid)
            assert a.radius == pytest.approx(b.radius)
            assert a.n_descriptors == b.n_descriptors
            assert (a.page_offset, a.page_count) == (b.page_offset, b.page_count)

    def test_stream_roundtrip(self):
        stream = io.BytesIO()
        metas = make_metas(3, dims=24)
        write_index_file(stream, metas)
        stream.seek(0)
        loaded = read_index_file(stream)
        assert len(loaded) == 3

    def test_size_matches_prediction(self, tmp_path):
        import os

        path = str(tmp_path / "chunks.idx")
        metas = make_metas(11, dims=24)
        write_index_file(path, metas)
        # index_file_bytes is the per-query ranking-scan region (header +
        # entries); a v2 file additionally carries the 8-byte-per-chunk
        # centroid-norms tail, read once at open time.
        assert os.path.getsize(path) == index_file_bytes(11, 24) + 11 * 8

    def test_v1_size_matches_prediction(self, tmp_path):
        import os

        path = str(tmp_path / "chunks.idx")
        metas = make_metas(11, dims=24)
        write_index_file(path, metas, version=1)
        assert os.path.getsize(path) == index_file_bytes(11, 24)


class TestValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_index_file(str(tmp_path / "e.idx"), [])

    def test_out_of_order_rejected(self, tmp_path):
        metas = make_metas(3)
        metas[1], metas[2] = metas[2], metas[1]
        with pytest.raises(ValueError, match="chunk order"):
            write_index_file(str(tmp_path / "o.idx"), metas)

    def test_bad_magic(self):
        stream = io.BytesIO(b"NOTMAGIC" + b"\x00" * 100)
        with pytest.raises(IOError, match="magic"):
            read_index_file(stream)

    def test_truncated_header(self):
        with pytest.raises(IOError, match="too short"):
            read_index_file(io.BytesIO(b"\x00" * 4))

    def test_truncated_entries(self, tmp_path):
        path = str(tmp_path / "t.idx")
        write_index_file(path, make_metas(5))
        with open(path, "r+b") as f:
            size = f.seek(0, 2)
            f.truncate(size - 10)
        with pytest.raises(IOError, match="truncated"):
            read_index_file(path)

    def test_magic_constant(self):
        assert MAGIC == b"EFF2CIDX"


class TestNormsBlock:
    """The v2 centroid-norms tail: stored == recomputed, bit for bit."""

    def test_current_version_is_two(self):
        assert VERSION == 2
        assert SUPPORTED_VERSIONS == (1, 2)

    def test_v2_roundtrip_returns_stored_norms(self, tmp_path):
        path = str(tmp_path / "v2.idx")
        metas = make_metas(9, dims=24)
        write_index_file(path, metas)
        loaded, norms = read_index_file_with_norms(path)
        assert len(loaded) == 9
        want = centroid_sq_norms(np.stack([m.centroid for m in metas]))
        np.testing.assert_array_equal(norms, want)  # bitwise, not approx

    def test_v1_norms_recomputed_bit_equal(self, tmp_path):
        v1 = str(tmp_path / "v1.idx")
        v2 = str(tmp_path / "v2.idx")
        metas = make_metas(9, dims=24)
        write_index_file(v1, metas, version=1)
        write_index_file(v2, metas, version=2)
        _, norms_v1 = read_index_file_with_norms(v1)
        _, norms_v2 = read_index_file_with_norms(v2)
        np.testing.assert_array_equal(norms_v1, norms_v2)

    def test_v1_file_still_readable(self, tmp_path):
        path = str(tmp_path / "v1.idx")
        metas = make_metas(5)
        write_index_file(path, metas, version=1)
        loaded = read_index_file(path)
        assert [m.chunk_id for m in loaded] == [m.chunk_id for m in metas]

    def test_unsupported_write_version_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="version"):
            write_index_file(str(tmp_path / "x.idx"), make_metas(2), version=3)

    def test_unsupported_read_version_rejected(self):
        import struct

        stream = io.BytesIO()
        write_index_file(stream, make_metas(2))
        data = bytearray(stream.getvalue())
        struct.pack_into("<I", data, 8, 7)  # header: <8sIIQ8s, version at 8
        with pytest.raises(CorruptFileError, match="version"):
            read_index_file(io.BytesIO(bytes(data)))

    def test_truncated_norms_block_rejected(self, tmp_path):
        path = str(tmp_path / "t.idx")
        write_index_file(path, make_metas(5))
        with open(path, "r+b") as f:
            size = f.seek(0, 2)
            f.truncate(size - 4)  # clips the norms tail, entries intact
        with pytest.raises(CorruptFileError, match="norms block"):
            read_index_file_with_norms(path)

    def test_corrupt_norms_rejected(self, tmp_path):
        path = str(tmp_path / "c.idx")
        metas = make_metas(3, dims=4)
        write_index_file(path, metas)
        with open(path, "r+b") as f:
            f.seek(-8, 2)  # last norm -> NaN
            f.write(np.float64(np.nan).tobytes())
        with pytest.raises(CorruptFileError, match="norms block is corrupt"):
            read_index_file_with_norms(path)

    def test_negative_norms_rejected(self, tmp_path):
        path = str(tmp_path / "n.idx")
        write_index_file(path, make_metas(3, dims=4))
        with open(path, "r+b") as f:
            f.seek(-8, 2)
            f.write(np.float64(-1.0).tobytes())
        with pytest.raises(CorruptFileError, match="norms block is corrupt"):
            read_index_file_with_norms(path)


class TestHeaderGuards:
    """Corrupted dims/n_chunks fields must fail fast and typed."""

    @staticmethod
    def _packed(metas, dims=None, n_chunks=None):
        import io as _io
        import struct

        stream = _io.BytesIO()
        write_index_file(stream, metas)
        data = bytearray(stream.getvalue())
        # Header: <8sIIQ8s -> dims at offset 12, n_chunks at offset 16.
        if dims is not None:
            struct.pack_into("<I", data, 12, dims)
        if n_chunks is not None:
            struct.pack_into("<Q", data, 16, n_chunks)
        return _io.BytesIO(bytes(data))

    def test_zero_dimensions_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_index_file(self._packed(make_metas(3), dims=0))

    def test_overflowing_dimensions_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_index_file(self._packed(make_metas(3), dims=2**32 - 1))

    def test_overflowing_chunk_count_rejected(self):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible size"):
            read_index_file(self._packed(make_metas(3), n_chunks=2**63))
