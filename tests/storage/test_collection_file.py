"""Tests for the raw collection file format."""

import io

import numpy as np
import pytest

from repro.storage.collection_file import (
    COLLECTION_MAGIC,
    read_collection_file,
    write_collection_file,
)


class TestRoundtrip:
    def test_file_roundtrip(self, tiny_collection, tmp_path):
        path = str(tmp_path / "descriptors.dat")
        write_collection_file(path, tiny_collection)
        loaded = read_collection_file(path)
        assert loaded == tiny_collection

    def test_stream_roundtrip(self, small_synthetic):
        stream = io.BytesIO()
        write_collection_file(stream, small_synthetic)
        stream.seek(0)
        loaded = read_collection_file(stream)
        assert loaded == small_synthetic

    def test_100_byte_records(self, small_synthetic, tmp_path):
        """The paper's arithmetic: 24-d records consume 100 bytes each."""
        import os

        path = str(tmp_path / "c.dat")
        write_collection_file(path, small_synthetic)
        size = os.path.getsize(path)
        expected = 24 + len(small_synthetic) * 100 + len(small_synthetic) * 8
        assert size == expected


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(IOError, match="magic"):
            read_collection_file(io.BytesIO(b"WRONG!!!" + b"\x00" * 100))

    def test_short_header(self):
        with pytest.raises(IOError, match="too short"):
            read_collection_file(io.BytesIO(b"\x00" * 3))

    def test_truncated_records(self, tiny_collection):
        stream = io.BytesIO()
        write_collection_file(stream, tiny_collection)
        data = stream.getvalue()
        with pytest.raises(IOError, match="truncated"):
            read_collection_file(io.BytesIO(data[: len(data) // 2]))

    def test_truncated_image_ids(self, tiny_collection):
        stream = io.BytesIO()
        write_collection_file(stream, tiny_collection)
        data = stream.getvalue()
        with pytest.raises(IOError, match="image ids"):
            read_collection_file(io.BytesIO(data[:-4]))


class TestHeaderGuards:
    """Corrupted dims/count header fields must fail fast and typed."""

    @staticmethod
    def _with_dims(collection, dims):
        import struct

        stream = io.BytesIO()
        write_collection_file(stream, collection)
        data = bytearray(stream.getvalue())
        # Header: <8sIIQ -> dims is the uint32 at offset 12.
        struct.pack_into("<I", data, 12, dims)
        return io.BytesIO(bytes(data))

    def test_zero_dimensions_rejected(self, tiny_collection):
        from repro.storage.errors import CorruptFileError

        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_collection_file(self._with_dims(tiny_collection, 0))

    def test_overflowing_dimensions_rejected(self, tiny_collection):
        from repro.storage.errors import CorruptFileError

        # 2**32 - 1 survives the uint32 pack but implies ~17 GB records.
        with pytest.raises(CorruptFileError, match="implausible dimensions"):
            read_collection_file(self._with_dims(tiny_collection, 2**32 - 1))

    def test_corrupt_error_is_ioerror(self):
        from repro.storage.errors import CorruptFileError

        # Existing except-IOError call sites keep catching corruption.
        assert issubclass(CorruptFileError, IOError)
        with pytest.raises(IOError):
            read_collection_file(io.BytesIO(b"WRONG!!!" + b"\x00" * 100))
