"""Tests for page geometry arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pages import DEFAULT_PAGE_BYTES, PageGeometry


class TestPageGeometry:
    def test_default_size(self):
        assert PageGeometry().page_bytes == DEFAULT_PAGE_BYTES == 8192

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PageGeometry(0)

    def test_pages_for(self):
        g = PageGeometry(100)
        assert g.pages_for(0) == 1
        assert g.pages_for(1) == 1
        assert g.pages_for(100) == 1
        assert g.pages_for(101) == 2
        assert g.pages_for(1000) == 10

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            PageGeometry().pages_for(-1)

    def test_padding(self):
        g = PageGeometry(100)
        assert g.padding_for(30) == 70
        assert g.padding_for(100) == 0
        assert g.padded_size(150) == 200

    def test_byte_offset(self):
        g = PageGeometry(100)
        assert g.byte_offset(0) == 0
        assert g.byte_offset(7) == 700
        with pytest.raises(ValueError):
            g.byte_offset(-1)

    def test_equality(self):
        assert PageGeometry(512) == PageGeometry(512)
        assert PageGeometry(512) != PageGeometry(1024)

    @given(st.integers(1, 10_000), st.integers(0, 10_000_000))
    @settings(max_examples=100, deadline=None)
    def test_property_padding_consistent(self, page_bytes, payload):
        g = PageGeometry(page_bytes)
        pages = g.pages_for(payload)
        padded = g.padded_size(payload)
        assert padded == pages * page_bytes
        assert padded >= max(payload, 1)
        assert 0 <= g.padding_for(payload) < page_bytes or payload == 0
