"""Tests for the checksummed write-ahead log.

The torn-tail test is the durability centerpiece: a log cut short at
*every* byte boundary of its final record must recover exactly the
committed prefix — never a partial batch, never a lost acknowledged one.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.faults.crash_plan import CrashAtStep, InjectedCrash, RecordingCrashPlan
from repro.storage.errors import CorruptFileError
from repro.storage.wal import (
    WalWriter,
    delete_op,
    insert_op,
    scan_wal,
    truncate_wal,
)

DIMS = 4


def _vec(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(DIMS).astype(np.float32)


def _write_two_batches(path: str) -> tuple[list, list]:
    """A log with two committed batches; returns their op lists."""
    first = [insert_op(1, _vec(1)), insert_op(2, _vec(2)), delete_op(1)]
    second = [insert_op(3, _vec(3)), delete_op(2)]
    with WalWriter.create(path, DIMS, tag=5, next_batch_seq=10) as writer:
        assert writer.append_batch(first) == 10
        assert writer.append_batch(second) == 11
    return first, second


def _assert_ops_equal(got, want) -> None:
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.kind == w.kind
        assert g.descriptor_id == w.descriptor_id
        if w.vector is None:
            assert g.vector is None
        else:
            assert g.vector.dtype == np.float32
            np.testing.assert_array_equal(g.vector, w.vector)


class TestRoundTrip:
    def test_commit_and_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        first, second = _write_two_batches(path)
        scan = scan_wal(path)
        assert scan.dimensions == DIMS
        assert scan.tag == 5
        assert [b.batch_seq for b in scan.batches] == [10, 11]
        _assert_ops_equal(scan.batches[0].ops, first)
        _assert_ops_equal(scan.batches[1].ops, second)
        assert scan.valid_bytes == scan.total_bytes
        assert scan.torn_bytes == 0
        assert scan.discarded_ops == 0

    def test_empty_log_scans_clean(self, tmp_path):
        path = str(tmp_path / "wal.log")
        WalWriter.create(path, DIMS, tag=3).close()
        scan = scan_wal(path)
        assert scan.batches == ()
        assert scan.tag == 3
        assert scan.torn_bytes == 0

    def test_bytes_written_matches_file_size(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WalWriter.create(path, DIMS) as writer:
            writer.append_batch([insert_op(7, _vec(7))])
            written = writer.bytes_written
        assert written == os.path.getsize(path)

    def test_empty_batch_rejected(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WalWriter.create(path, DIMS) as writer:
            with pytest.raises(ValueError, match="at least one operation"):
                writer.append_batch([])

    def test_insert_dimension_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WalWriter.create(path, DIMS) as writer:
            bad = insert_op(1, np.zeros(DIMS + 1, dtype=np.float32))
            with pytest.raises(ValueError, match="dims"):
                writer.append_batch([bad])


class TestTornTail:
    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        """Cut the log at every byte boundary of its last batch.

        Whatever the cut point, recovery keeps exactly the first
        (committed) batch and reports everything after its commit marker
        as the discarded suffix — until the very last byte of the second
        batch's commit marker is present, at which point the second
        batch is committed too.
        """
        path = str(tmp_path / "wal.log")
        first, second = _write_two_batches(path)
        total = scan_wal(path).total_bytes
        header_cuts = 0
        for cut in range(total + 1):
            probe = str(tmp_path / "probe.log")
            shutil.copyfile(path, probe)
            with open(probe, "r+b") as stream:
                stream.truncate(cut)
            try:
                scan = scan_wal(probe)
            except CorruptFileError:
                header_cuts += 1  # cuts inside the header: nothing to recover
                continue
            if cut < total:
                assert len(scan.batches) <= 1
            else:
                assert len(scan.batches) == 2
            if scan.batches:
                assert scan.batches[0].batch_seq == 10
                _assert_ops_equal(scan.batches[0].ops, first)
            # The recovery point never moves past a commit marker that
            # is not fully on disk:
            assert scan.valid_bytes <= cut
            assert scan.torn_bytes == cut - scan.valid_bytes
            # Truncating to the recovery point yields a clean log whose
            # content is exactly the committed prefix.
            removed = truncate_wal(probe, scan)
            assert removed == scan.torn_bytes
            rescan = scan_wal(probe)
            assert rescan.torn_bytes == 0
            assert rescan.valid_bytes == scan.valid_bytes
            assert [b.batch_seq for b in rescan.batches] == [
                b.batch_seq for b in scan.batches
            ]
        assert header_cuts == 24  # struct("<8sIIQ").size short-header cuts

    def test_uncommitted_ops_counted(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_two_batches(path)
        one_batch = scan_wal(path)
        # Cut immediately before the second batch's commit marker: its
        # operation frames are intact but unsealed.
        probe = str(tmp_path / "probe.log")
        shutil.copyfile(path, probe)
        commit_frame_bytes = None
        for cut in range(one_batch.total_bytes - 1, 0, -1):
            with open(probe, "r+b") as stream:
                stream.truncate(cut)
            scan = scan_wal(probe)
            if scan.discarded_ops == 2:
                commit_frame_bytes = cut
                assert len(scan.batches) == 1
                break
        assert commit_frame_bytes is not None


class TestCorruption:
    def test_short_header(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as stream:
            stream.write(b"EFF2")
        with pytest.raises(CorruptFileError, match="too short"):
            scan_wal(path)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "wal.log")
        WalWriter.create(path, DIMS).close()
        with open(path, "r+b") as stream:
            stream.write(b"XXXXXXXX")
        with pytest.raises(CorruptFileError, match="magic"):
            scan_wal(path)

    def test_flipped_payload_byte_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_two_batches(path)
        total = scan_wal(path).valid_bytes  # full file is committed
        with open(path, "r+b") as stream:
            stream.seek(32)  # inside the first operation's payload
            byte = stream.read(1)
            stream.seek(32)
            stream.write(bytes([byte[0] ^ 0xFF]))
        scan = scan_wal(path)
        # The corruption lands before the first commit marker, so no
        # batch survives and the recovery point is the header.
        assert scan.batches == ()
        assert scan.valid_bytes < total
        assert scan.torn_bytes > 0


class TestResume:
    def test_resume_requires_truncated_file(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_two_batches(path)
        scan = scan_wal(path)
        with open(path, "ab") as stream:
            stream.write(b"\x00" * 7)  # torn garbage
        torn_scan = scan_wal(path)
        with pytest.raises(ValueError, match="truncated"):
            WalWriter.resume(path, torn_scan)
        truncate_wal(path, torn_scan)
        writer = WalWriter.resume(path, scan_wal(path))
        assert writer.next_batch_seq == scan.batches[-1].batch_seq + 1
        writer.close()

    def test_resume_continues_sequence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_two_batches(path)
        with WalWriter.resume(path, scan_wal(path)) as writer:
            seq = writer.append_batch([delete_op(3)])
        assert seq == 12
        scan = scan_wal(path)
        assert [b.batch_seq for b in scan.batches] == [10, 11, 12]


class TestCrashSites:
    def test_sites_announced_in_protocol_order(self, tmp_path):
        path = str(tmp_path / "wal.log")
        plan = RecordingCrashPlan()
        with WalWriter.create(path, DIMS, crash=plan) as writer:
            writer.append_batch([insert_op(1, _vec(1))])
        assert plan.sites == [
            "wal.batch.frames",
            "wal.batch.commit",
            "wal.batch.synced",
        ]

    def test_crash_before_commit_loses_batch(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = WalWriter.create(path, DIMS, crash=CrashAtStep(0))
        with pytest.raises(InjectedCrash) as info:
            writer.append_batch([insert_op(1, _vec(1))])
        writer.close()
        assert info.value.site == "wal.batch.frames"
        scan = scan_wal(path)
        assert scan.batches == ()
        assert scan.discarded_ops == 1

    def test_crash_after_commit_keeps_batch_unacknowledged(self, tmp_path):
        # The commit marker hit the OS before the "kill": recovery finds
        # a fully applied batch that was never acknowledged — the
        # allowed "unacknowledged but whole" outcome, never a hybrid.
        path = str(tmp_path / "wal.log")
        writer = WalWriter.create(path, DIMS, crash=CrashAtStep(1))
        with pytest.raises(InjectedCrash) as info:
            writer.append_batch([insert_op(1, _vec(1)), delete_op(9)])
        writer.close()
        assert info.value.site == "wal.batch.commit"
        scan = scan_wal(path)
        assert len(scan.batches) == 1
        assert len(scan.batches[0].ops) == 2
        assert scan.torn_bytes == 0
