"""Failure-injection fuzzing of the binary file formats.

Random corruption of serialized bytes must surface as clean IOError /
ValueError exceptions (or a successful parse of coincidentally valid
bytes) — never as unhandled crashes or silent wrong shapes.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunk import ChunkMeta
from repro.storage.collection_file import (
    read_collection_file,
    write_collection_file,
)
from repro.storage.index_file import read_index_file, write_index_file


def _corrupt(data: bytes, position: int, new_byte: int) -> bytes:
    position %= max(1, len(data))
    return data[:position] + bytes([new_byte]) + data[position + 1 :]


@pytest.fixture(scope="module")
def collection_bytes():
    from repro.core.dataset import DescriptorCollection

    rng = np.random.default_rng(0)
    collection = DescriptorCollection.from_vectors(
        rng.standard_normal((30, 5)).astype(np.float32)
    )
    stream = io.BytesIO()
    write_collection_file(stream, collection)
    return stream.getvalue()


@pytest.fixture(scope="module")
def index_bytes():
    rng = np.random.default_rng(1)
    metas = [
        ChunkMeta(
            chunk_id=i,
            centroid=rng.standard_normal(5),
            radius=float(rng.random()),
            n_descriptors=5,
            page_offset=i,
            page_count=1,
        )
        for i in range(6)
    ]
    stream = io.BytesIO()
    write_index_file(stream, metas)
    return stream.getvalue()


class TestCollectionFileFuzz:
    @given(st.integers(0, 10**6), st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_byte_flip_never_crashes(self, collection_bytes, position, new_byte):
        corrupted = _corrupt(collection_bytes, position, new_byte)
        try:
            loaded = read_collection_file(io.BytesIO(corrupted))
            # Parse succeeded: structure must still be coherent.
            assert loaded.vectors.shape[0] == loaded.ids.shape[0]
        except (IOError, ValueError):
            pass  # clean rejection is the expected failure mode

    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_crashes(self, collection_bytes, cut):
        truncated = collection_bytes[: max(0, len(collection_bytes) - cut)]
        try:
            read_collection_file(io.BytesIO(truncated))
        except (IOError, ValueError):
            pass


class TestIndexFileFuzz:
    @given(st.integers(0, 10**6), st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_byte_flip_never_crashes(self, index_bytes, position, new_byte):
        corrupted = _corrupt(index_bytes, position, new_byte)
        try:
            metas = read_index_file(io.BytesIO(corrupted))
            assert all(m.chunk_id == i for i, m in enumerate(metas))
        except (IOError, ValueError, OverflowError):
            pass
