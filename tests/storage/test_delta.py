"""Tests for per-chunk delta segments (tombstone bitmap + appends)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.storage.delta import read_delta_segment, write_delta_segment
from repro.storage.errors import ChecksumError, CorruptFileError

DIMS = 6


def _records(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = np.arange(100, 100 + n, dtype=np.int64)
    vectors = rng.standard_normal((n, DIMS)).astype(np.float32)
    return ids, vectors


class TestRoundTrip:
    def test_based_segment(self, tmp_path):
        path = str(tmp_path / "delta-000001-00001.seg")
        live = np.array([True, False, True, True, False, False, True], dtype=bool)
        ids, vectors = _records(3, seed=1)
        n_bytes = write_delta_segment(path, DIMS, 4, live, ids, vectors)
        assert n_bytes == os.path.getsize(path)
        seg = read_delta_segment(path, DIMS)
        assert seg.base_ref == 4
        np.testing.assert_array_equal(seg.live, live)
        np.testing.assert_array_equal(seg.ids, ids)
        assert seg.vectors.dtype == np.float32
        np.testing.assert_array_equal(seg.vectors, vectors)

    def test_baseless_segment(self, tmp_path):
        path = str(tmp_path / "delta.seg")
        ids, vectors = _records(5, seed=2)
        write_delta_segment(path, DIMS, -1, None, ids, vectors)
        seg = read_delta_segment(path, DIMS)
        assert seg.base_ref == -1
        assert seg.live.size == 0
        np.testing.assert_array_equal(seg.ids, ids)
        np.testing.assert_array_equal(seg.vectors, vectors)

    def test_tombstone_only_segment(self, tmp_path):
        path = str(tmp_path / "delta.seg")
        live = np.array([False, True, True], dtype=bool)
        empty_ids = np.zeros(0, dtype=np.int64)
        empty_vecs = np.zeros((0, DIMS), dtype=np.float32)
        write_delta_segment(path, DIMS, 0, live, empty_ids, empty_vecs)
        seg = read_delta_segment(path, DIMS)
        np.testing.assert_array_equal(seg.live, live)
        assert seg.ids.size == 0
        assert seg.vectors.shape == (0, DIMS)

    def test_bitmap_roundtrip_across_byte_boundaries(self, tmp_path):
        # Liveness masks whose length is not a multiple of 8 exercise the
        # little-endian packbits padding.
        for n_rows in (1, 7, 8, 9, 15, 16, 17):
            rng = np.random.default_rng(n_rows)
            live = rng.random(n_rows) < 0.5
            path = str(tmp_path / f"delta-{n_rows}.seg")
            ids, vectors = _records(1, seed=n_rows)
            write_delta_segment(path, DIMS, 2, live, ids, vectors)
            seg = read_delta_segment(path, DIMS)
            np.testing.assert_array_equal(seg.live, live)


class TestValidation:
    def test_based_segment_requires_mask(self, tmp_path):
        ids, vectors = _records(1)
        with pytest.raises(ValueError, match="liveness mask"):
            write_delta_segment(str(tmp_path / "d.seg"), DIMS, 0, None, ids, vectors)

    def test_baseless_segment_rejects_mask(self, tmp_path):
        ids, vectors = _records(1)
        with pytest.raises(ValueError, match="cannot carry a mask"):
            write_delta_segment(
                str(tmp_path / "d.seg"),
                DIMS,
                -1,
                np.ones(3, dtype=bool),
                ids,
                vectors,
            )

    def test_shape_mismatch_rejected(self, tmp_path):
        ids, _ = _records(2)
        vectors = np.zeros((3, DIMS), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            write_delta_segment(str(tmp_path / "d.seg"), DIMS, -1, None, ids, vectors)

    def test_empty_baseless_segment_rejected(self, tmp_path):
        empty_ids = np.zeros(0, dtype=np.int64)
        empty_vecs = np.zeros((0, DIMS), dtype=np.float32)
        with pytest.raises(ValueError, match="tombstone or append"):
            write_delta_segment(
                str(tmp_path / "d.seg"), DIMS, -1, None, empty_ids, empty_vecs
            )


class TestCorruption:
    def _segment(self, tmp_path) -> str:
        path = str(tmp_path / "delta.seg")
        live = np.array([True, False, True], dtype=bool)
        ids, vectors = _records(2, seed=9)
        write_delta_segment(path, DIMS, 1, live, ids, vectors)
        return path

    def test_flipped_record_byte_fails_crc(self, tmp_path):
        path = self._segment(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as stream:
            stream.seek(size - 3)
            byte = stream.read(1)
            stream.seek(size - 3)
            stream.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(ChecksumError, match="CRC32"):
            read_delta_segment(path, DIMS)

    def test_truncated_records(self, tmp_path):
        path = self._segment(tmp_path)
        with open(path, "r+b") as stream:
            stream.truncate(os.path.getsize(path) - 5)
        with pytest.raises(CorruptFileError, match="truncated"):
            read_delta_segment(path, DIMS)

    def test_truncated_header(self, tmp_path):
        path = self._segment(tmp_path)
        with open(path, "r+b") as stream:
            stream.truncate(10)
        with pytest.raises(CorruptFileError, match="truncated"):
            read_delta_segment(path, DIMS)

    def test_bad_magic(self, tmp_path):
        path = self._segment(tmp_path)
        with open(path, "r+b") as stream:
            stream.write(b"NOTADSEG")
        with pytest.raises(CorruptFileError, match="magic"):
            read_delta_segment(path, DIMS)

    def test_dimension_mismatch(self, tmp_path):
        path = self._segment(tmp_path)
        with pytest.raises(CorruptFileError, match="expects"):
            read_delta_segment(path, DIMS + 1)
