"""Tests for the chunk file writer/reader."""

import io

import numpy as np
import pytest

from repro.storage.chunk_file import (
    _TABLE_ENTRY,
    _TABLE_HEADER,
    ChunkFileReader,
    ChunkFileWriter,
)
from repro.storage.errors import CorruptFileError
from repro.storage.pages import PageGeometry


def chunk_data(n, dims, offset=0):
    ids = np.arange(offset, offset + n)
    vectors = np.arange(n * dims, dtype=np.float32).reshape(n, dims) + offset
    return ids, vectors


class TestWriter:
    def test_extents_sequential_and_padded(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(256)
        with ChunkFileWriter(path, dimensions=4, geometry=geometry) as writer:
            e1 = writer.write_chunk(*chunk_data(10, 4))  # 200 B -> 1 page
            e2 = writer.write_chunk(*chunk_data(20, 4))  # 400 B -> 2 pages
            e3 = writer.write_chunk(*chunk_data(1, 4))  # 20 B -> 1 page
        assert (e1.page_offset, e1.page_count) == (0, 1)
        assert (e2.page_offset, e2.page_count) == (1, 2)
        assert (e3.page_offset, e3.page_count) == (3, 1)
        import os

        # Header page + 4 fully padded data pages + trailing CRC table.
        table_bytes = _TABLE_HEADER.size + 3 * _TABLE_ENTRY.size
        assert os.path.getsize(path) == 5 * 256 + table_bytes

    def test_v1_extents_and_padding(self, tmp_path):
        """Legacy v1 files stay headerless and fully page-padded."""
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(256)
        with ChunkFileWriter(
            path, dimensions=4, geometry=geometry, version=1
        ) as writer:
            e1 = writer.write_chunk(*chunk_data(10, 4))
            e2 = writer.write_chunk(*chunk_data(20, 4))
            e3 = writer.write_chunk(*chunk_data(1, 4))
        assert (e1.page_offset, e2.page_offset, e3.page_offset) == (0, 1, 3)
        import os

        assert os.path.getsize(path) == 4 * 256  # fully padded, no header

    def test_write_after_close_rejected(self, tmp_path):
        writer = ChunkFileWriter(str(tmp_path / "x.dat"), dimensions=2)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_chunk(*chunk_data(1, 2))

    def test_in_memory_stream(self):
        stream = io.BytesIO()
        writer = ChunkFileWriter(stream, dimensions=3, geometry=PageGeometry(128))
        writer.write_chunk(*chunk_data(5, 3))
        writer.close()
        # Header page + one data page + one-entry CRC table.
        table_bytes = _TABLE_HEADER.size + _TABLE_ENTRY.size
        assert len(stream.getvalue()) == 2 * 128 + table_bytes


class TestRoundtrip:
    def test_write_read_many_chunks(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(512)
        payloads = [chunk_data(n, 6, offset=n * 100) for n in (1, 7, 30, 2)]
        with ChunkFileWriter(path, dimensions=6, geometry=geometry) as writer:
            extents = [writer.write_chunk(ids, vecs) for ids, vecs in payloads]
        with ChunkFileReader(path, dimensions=6, geometry=geometry) as reader:
            for (ids, vecs), extent in zip(payloads, extents):
                out_ids, out_vecs = reader.read_chunk(extent)
                np.testing.assert_array_equal(out_ids, ids)
                np.testing.assert_array_equal(out_vecs, vecs)

    def test_random_access_order(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2) as writer:
            extents = [
                writer.write_chunk(*chunk_data(n, 2, offset=n)) for n in (3, 5, 2)
            ]
        with ChunkFileReader(path, dimensions=2) as reader:
            # Read in reverse order.
            for n, extent in zip((2, 5, 3), reversed(extents)):
                ids, _ = reader.read_chunk(extent)
                assert ids.shape[0] == n

    def test_truncated_file_detected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2) as writer:
            writer.write_chunk(*chunk_data(4, 2))
        # Chop the file inside the header: rejected on open.
        with open(path, "r+b") as f:
            f.truncate(10)
        with pytest.raises(CorruptFileError, match="short"):
            ChunkFileReader(path, dimensions=2)

    def test_truncated_v1_file_detected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2, version=1) as writer:
            extent = writer.write_chunk(*chunk_data(4, 2))
        # v1 has no header; truncation surfaces at read time.
        with open(path, "r+b") as f:
            f.truncate(10)
        with ChunkFileReader(path, dimensions=2) as reader:
            with pytest.raises(IOError, match="truncated"):
                reader.read_chunk(extent)

    def test_geometry_mismatch_rejected(self, tmp_path):
        """The v2 header records the page size, so opening with the wrong
        geometry fails loudly instead of decoding garbage offsets."""
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2, geometry=PageGeometry(256)) as w:
            w.write_chunk(*chunk_data(4, 2))
            w.write_chunk(*chunk_data(4, 2, offset=50))
        with pytest.raises(CorruptFileError, match="page"):
            ChunkFileReader(path, dimensions=2, geometry=PageGeometry(128))

    def test_dimension_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2) as w:
            w.write_chunk(*chunk_data(4, 2))
        with pytest.raises(CorruptFileError, match="-d"):
            ChunkFileReader(path, dimensions=3)
