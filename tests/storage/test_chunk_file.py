"""Tests for the chunk file writer/reader."""

import io

import numpy as np
import pytest

from repro.storage.chunk_file import ChunkFileReader, ChunkFileWriter
from repro.storage.pages import PageGeometry


def chunk_data(n, dims, offset=0):
    ids = np.arange(offset, offset + n)
    vectors = np.arange(n * dims, dtype=np.float32).reshape(n, dims) + offset
    return ids, vectors


class TestWriter:
    def test_extents_sequential_and_padded(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(256)
        with ChunkFileWriter(path, dimensions=4, geometry=geometry) as writer:
            e1 = writer.write_chunk(*chunk_data(10, 4))  # 200 B -> 1 page
            e2 = writer.write_chunk(*chunk_data(20, 4))  # 400 B -> 2 pages
            e3 = writer.write_chunk(*chunk_data(1, 4))  # 20 B -> 1 page
        assert (e1.page_offset, e1.page_count) == (0, 1)
        assert (e2.page_offset, e2.page_count) == (1, 2)
        assert (e3.page_offset, e3.page_count) == (3, 1)
        import os

        assert os.path.getsize(path) == 4 * 256  # fully padded

    def test_write_after_close_rejected(self, tmp_path):
        writer = ChunkFileWriter(str(tmp_path / "x.dat"), dimensions=2)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_chunk(*chunk_data(1, 2))

    def test_in_memory_stream(self):
        stream = io.BytesIO()
        writer = ChunkFileWriter(stream, dimensions=3, geometry=PageGeometry(128))
        writer.write_chunk(*chunk_data(5, 3))
        writer.close()
        assert len(stream.getvalue()) == 128


class TestRoundtrip:
    def test_write_read_many_chunks(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(512)
        payloads = [chunk_data(n, 6, offset=n * 100) for n in (1, 7, 30, 2)]
        with ChunkFileWriter(path, dimensions=6, geometry=geometry) as writer:
            extents = [writer.write_chunk(ids, vecs) for ids, vecs in payloads]
        with ChunkFileReader(path, dimensions=6, geometry=geometry) as reader:
            for (ids, vecs), extent in zip(payloads, extents):
                out_ids, out_vecs = reader.read_chunk(extent)
                np.testing.assert_array_equal(out_ids, ids)
                np.testing.assert_array_equal(out_vecs, vecs)

    def test_random_access_order(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2) as writer:
            extents = [
                writer.write_chunk(*chunk_data(n, 2, offset=n)) for n in (3, 5, 2)
            ]
        with ChunkFileReader(path, dimensions=2) as reader:
            # Read in reverse order.
            for n, extent in zip((2, 5, 3), reversed(extents)):
                ids, _ = reader.read_chunk(extent)
                assert ids.shape[0] == n

    def test_truncated_file_detected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2) as writer:
            extent = writer.write_chunk(*chunk_data(4, 2))
        # Chop the file short.
        with open(path, "r+b") as f:
            f.truncate(10)
        with ChunkFileReader(path, dimensions=2) as reader:
            with pytest.raises(IOError, match="truncated"):
                reader.read_chunk(extent)

    def test_geometry_mismatch_breaks_reads(self, tmp_path):
        """Reading with the wrong page size returns garbage offsets — the
        reader must at least not crash silently on record alignment."""
        path = str(tmp_path / "chunks.dat")
        with ChunkFileWriter(path, dimensions=2, geometry=PageGeometry(256)) as w:
            w.write_chunk(*chunk_data(4, 2))
            extent = w.write_chunk(*chunk_data(4, 2, offset=50))
        reader = ChunkFileReader(path, dimensions=2, geometry=PageGeometry(128))
        ids, _ = reader.read_chunk(extent)  # wrong page size -> wrong chunk
        assert not np.array_equal(ids, np.arange(50, 54))
        reader.close()
