"""Corruption coverage: bit flips, truncations, crash remnants, and the
atomic-write / poisoned-writer machinery across all three file formats."""

import io
import os
import struct

import numpy as np
import pytest

from repro.core.chunk import ChunkMeta
from repro.core.dataset import DescriptorCollection
from repro.storage.atomic import atomic_output
from repro.storage.chunk_file import (
    CHUNK_MAGIC,
    ChunkFileReader,
    ChunkFileWriter,
)
from repro.storage.collection_file import (
    read_collection_file,
    write_collection_file,
)
from repro.storage.errors import ChecksumError, CorruptFileError
from repro.storage.index_file import read_index_file, write_index_file
from repro.storage.pages import PageGeometry


def chunk_data(n, dims, offset=0):
    ids = np.arange(offset, offset + n)
    vectors = np.arange(n * dims, dtype=np.float32).reshape(n, dims) + offset
    return ids, vectors


def write_v2(path, n_chunks=3, dims=4, page_bytes=256):
    geometry = PageGeometry(page_bytes)
    extents = []
    with ChunkFileWriter(path, dimensions=dims, geometry=geometry) as writer:
        for i in range(n_chunks):
            extents.append(writer.write_chunk(*chunk_data(10, dims, i * 100)))
    return extents, geometry


def flip_bit(path, byte_offset, bit=0):
    with open(path, "r+b") as f:
        f.seek(byte_offset)
        value = f.read(1)[0]
        f.seek(byte_offset)
        f.write(bytes([value ^ (1 << bit)]))


class TestChunkFileCorruption:
    def test_payload_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        extents, geometry = write_v2(path)
        # Flip one bit inside the second chunk's payload (data region
        # starts at physical page 1).
        flip_bit(path, 256 * (1 + extents[1].page_offset) + 17, bit=3)
        with ChunkFileReader(path, dimensions=4, geometry=geometry) as reader:
            ids, _ = reader.read_chunk(extents[0])  # untouched chunk is fine
            np.testing.assert_array_equal(ids, np.arange(10))
            with pytest.raises(ChecksumError, match="CRC32"):
                reader.read_chunk(extents[1])
            ids, _ = reader.read_chunk(extents[2])  # later chunks still fine
            np.testing.assert_array_equal(ids, np.arange(200, 210))

    def test_padding_bit_flip_is_harmless(self, tmp_path):
        """Only the payload is checksummed — damage to the page padding
        (never decoded) must not fail reads."""
        path = str(tmp_path / "chunks.dat")
        extents, geometry = write_v2(path, n_chunks=1)
        # 10 records x 20 bytes = 200 payload bytes; flip inside padding.
        flip_bit(path, 256 * 1 + 230)
        with ChunkFileReader(path, dimensions=4, geometry=geometry) as reader:
            ids, _ = reader.read_chunk(extents[0])
        np.testing.assert_array_equal(ids, np.arange(10))

    def test_mid_chunk_truncation_detected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        extents, geometry = write_v2(path)
        # Cut inside the last chunk: its pages (and the CRC table) vanish.
        with open(path, "r+b") as f:
            f.truncate(256 * (1 + extents[2].page_offset) + 50)
        with pytest.raises(CorruptFileError):
            ChunkFileReader(path, dimensions=4, geometry=geometry)

    def test_unfinalized_file_rejected(self, tmp_path):
        """A crash between header write and close leaves table_page=0;
        the reader must refuse rather than decode garbage."""
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(256)
        stream = io.BytesIO()
        writer = ChunkFileWriter(stream, dimensions=4, geometry=geometry)
        writer.write_chunk(*chunk_data(10, 4))
        # Simulate the crash: persist the bytes without close().
        with open(path, "wb") as f:
            f.write(stream.getvalue())
        with pytest.raises(CorruptFileError, match="finalized"):
            ChunkFileReader(path, dimensions=4, geometry=geometry)

    def test_corrupt_table_page_pointer_rejected(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        _, geometry = write_v2(path, n_chunks=1)
        # table_page is the last uint64 of the header.
        table_page_offset = struct.calcsize("<8sIIII")
        with open(path, "r+b") as f:
            f.seek(table_page_offset + 8)
            f.write(struct.pack("<Q", 9999))
        with pytest.raises(CorruptFileError, match="table"):
            ChunkFileReader(path, dimensions=4, geometry=geometry)

    def test_v1_file_readable_under_v2_reader(self, tmp_path):
        """Round trip: files written by the legacy v1 writer stay fully
        readable (headerless, no checksums) through the current reader."""
        path = str(tmp_path / "chunks.dat")
        geometry = PageGeometry(256)
        payloads = [chunk_data(n, 4, offset=n * 10) for n in (3, 12, 7)]
        with ChunkFileWriter(
            path, dimensions=4, geometry=geometry, version=1
        ) as writer:
            extents = [writer.write_chunk(i, v) for i, v in payloads]
        with open(path, "rb") as f:
            assert f.read(8) != CHUNK_MAGIC  # truly headerless
        with ChunkFileReader(path, dimensions=4, geometry=geometry) as reader:
            assert reader.version == 1
            assert not reader.has_checksums
            for (ids, vecs), extent in zip(payloads, extents):
                out_ids, out_vecs = reader.read_chunk(extent)
                np.testing.assert_array_equal(out_ids, ids)
                np.testing.assert_array_equal(out_vecs, vecs)

    def test_v1_and_v2_extents_identical(self, tmp_path):
        """Extents are logical: the v2 header page must not shift them."""
        geometry = PageGeometry(256)
        extents = {}
        for version in (1, 2):
            path = str(tmp_path / f"chunks_v{version}.dat")
            with ChunkFileWriter(
                path, dimensions=4, geometry=geometry, version=version
            ) as writer:
                extents[version] = [
                    writer.write_chunk(*chunk_data(n, 4)) for n in (10, 20, 5)
                ]
        assert extents[1] == extents[2]

    def test_checksum_verification_can_be_disabled(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        extents, geometry = write_v2(path, n_chunks=1)
        flip_bit(path, 256 * 1 + 17)
        reader = ChunkFileReader(
            path, dimensions=4, geometry=geometry, verify_checksums=False
        )
        with reader:
            ids, _ = reader.read_chunk(extents[0])  # damage passes through
        assert ids.shape == (10,)


class TestPoisonedWriter:
    def test_failed_write_poisons_and_discards(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        writer = ChunkFileWriter(path, dimensions=4)
        writer.write_chunk(*chunk_data(4, 4))
        with pytest.raises(ValueError):
            writer.write_chunk(np.arange(3), np.zeros((4, 4), np.float32))
        with pytest.raises(ValueError, match="poisoned"):
            writer.write_chunk(*chunk_data(4, 4))
        writer.close()
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_with_block_exception_discards_tmp(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        with pytest.raises(RuntimeError):
            with ChunkFileWriter(path, dimensions=4) as writer:
                writer.write_chunk(*chunk_data(4, 4))
                raise RuntimeError("boom")
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_failed_rewrite_preserves_existing_file(self, tmp_path):
        """An aborted write must never clobber a good file already at the
        target path."""
        path = str(tmp_path / "chunks.dat")
        extents, geometry = write_v2(path, n_chunks=1)
        with pytest.raises(RuntimeError):
            with ChunkFileWriter(path, dimensions=4, geometry=geometry) as w:
                w.write_chunk(*chunk_data(2, 4))
                raise RuntimeError("boom")
        with ChunkFileReader(path, dimensions=4, geometry=geometry) as reader:
            ids, _ = reader.read_chunk(extents[0])
        np.testing.assert_array_equal(ids, np.arange(10))


class TestAtomicOutput:
    def test_success_publishes_and_cleans_tmp(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_output(path) as stream:
            stream.write(b"payload")
        assert open(path, "rb").read() == b"payload"
        assert not os.path.exists(path + ".tmp")

    def test_failure_leaves_no_trace(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with pytest.raises(RuntimeError):
            with atomic_output(path) as stream:
                stream.write(b"partial")
                raise RuntimeError("boom")
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


def make_collection(n=30, dims=4):
    rng = np.random.default_rng(7)
    vectors = rng.standard_normal((n, dims)).astype(np.float32)
    return DescriptorCollection.from_vectors(vectors)


class TestCollectionFileCorruption:
    def test_truncated_collection_detected(self, tmp_path):
        path = str(tmp_path / "coll.dat")
        write_collection_file(path, make_collection())
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 40)
        with pytest.raises(CorruptFileError, match="truncated"):
            read_collection_file(path)

    def test_magic_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "coll.dat")
        write_collection_file(path, make_collection())
        flip_bit(path, 2)
        with pytest.raises(CorruptFileError, match="magic"):
            read_collection_file(path)

    def test_atomic_write_failure_leaves_no_file(self, tmp_path):
        missing = str(tmp_path / "nope" / "coll.dat")
        with pytest.raises(OSError):
            write_collection_file(missing, make_collection())
        assert not os.path.exists(missing)
        assert not os.path.exists(missing + ".tmp")


def make_metas(n=4, dims=3):
    rng = np.random.default_rng(3)
    return [
        ChunkMeta(
            chunk_id=i,
            centroid=rng.standard_normal(dims),
            radius=float(i + 1),
            n_descriptors=5,
            page_offset=i,
            page_count=1,
        )
        for i in range(n)
    ]


class TestIndexFileCorruption:
    def test_truncated_index_detected(self, tmp_path):
        path = str(tmp_path / "index.dat")
        write_index_file(path, make_metas())
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 8)
        with pytest.raises(CorruptFileError, match="truncated"):
            read_index_file(path)

    def test_header_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "index.dat")
        write_index_file(path, make_metas())
        flip_bit(path, 4)
        with pytest.raises(CorruptFileError, match="magic"):
            read_index_file(path)

    def test_atomic_write_failure_leaves_no_file(self, tmp_path):
        missing = str(tmp_path / "nope" / "index.dat")
        with pytest.raises(OSError):
            write_index_file(missing, make_metas())
        assert not os.path.exists(missing)
        assert not os.path.exists(missing + ".tmp")
