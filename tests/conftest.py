"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import DescriptorCollection
from repro.experiments.config import TEST_SCALE
from repro.experiments.data import prepare
from repro.workloads.synthetic import SyntheticImageConfig, generate_collection


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_collection() -> DescriptorCollection:
    """A deterministic 3-cluster, 60-descriptor collection in 4-d."""
    rng = np.random.default_rng(5)
    centers = np.array(
        [[0.0, 0.0, 0.0, 0.0], [5.0, 5.0, 5.0, 5.0], [10.0, 0.0, 10.0, 0.0]]
    )
    parts = [
        centers[c] + 0.2 * rng.standard_normal((20, 4)) for c in range(3)
    ]
    vectors = np.vstack(parts).astype(np.float32)
    return DescriptorCollection.from_vectors(vectors)


@pytest.fixture(scope="session")
def small_synthetic() -> DescriptorCollection:
    """A ~1.5k-descriptor 24-d synthetic collection (session cached)."""
    config = SyntheticImageConfig(
        n_images=32,
        mean_descriptors_per_image=48,
        n_patterns=40,
        patterns_per_image=4,
        seed=11,
    )
    return generate_collection(config)


@pytest.fixture(scope="session")
def experiment_data():
    """Fully prepared TEST_SCALE experiment data (built once per session)."""
    return prepare(TEST_SCALE)
