"""Tests for the adaptive degradation (chunk budget) controller."""

import math

import pytest

from repro.service.controller import AdaptiveBudgetController


def controller(**overrides):
    defaults = dict(
        initial_budget=0,
        n_chunks=100,
        min_budget=1,
        target_p99_s=1.0,
        adjust_every=4,
        latency_window=16,
        shrink_factor=0.5,
        grow_step=2,
        headroom=0.6,
    )
    defaults.update(overrides)
    return AdaptiveBudgetController(**defaults)


def feed(ctl, latency, n):
    for _ in range(n):
        ctl.observe(latency)


class TestBudgetSemantics:
    def test_zero_initial_budget_means_whole_index(self):
        ctl = controller(initial_budget=0)
        assert ctl.budget == 0
        assert ctl.effective_budget == 100

    def test_bounded_initial_budget(self):
        ctl = controller(initial_budget=30)
        assert ctl.budget == 30
        assert ctl.effective_budget == 30

    def test_history_starts_with_initial_setting(self):
        assert controller().history == [(0, 0)]
        assert controller(initial_budget=30).history == [(0, 30)]


class TestShrink:
    def test_high_p99_shrinks_multiplicatively(self):
        ctl = controller()
        feed(ctl, 2.0, 4)  # p99 = 2.0 > target 1.0
        assert ctl.effective_budget == max(1, min(99, int(100 * 0.5)))
        assert ctl.effective_budget == 50
        assert ctl.n_shrinks == 1
        assert ctl.history[-1] == (4, 50)

    def test_shrink_always_drops_at_least_one_chunk(self):
        # At budget 2 with factor 0.9, int(2 * 0.9) == 1 < 2 - 1... use a
        # factor where the multiplicative step would round to a no-op.
        ctl = controller(initial_budget=10, shrink_factor=0.99)
        feed(ctl, 2.0, 4)
        assert ctl.effective_budget == 9  # min(10 - 1, int(9.9)) = 9

    def test_shrink_respects_floor(self):
        ctl = controller(initial_budget=2, min_budget=2)
        feed(ctl, 2.0, 8)
        assert ctl.effective_budget == 2
        assert ctl.n_shrinks == 0  # clamped: never moved, never counted

    def test_repeated_overload_reaches_floor(self):
        ctl = controller()
        feed(ctl, 2.0, 400)
        assert ctl.effective_budget == 1
        assert ctl.budget == 1


class TestGrowAndDeadBand:
    def test_low_p99_grows_additively(self):
        ctl = controller(initial_budget=30)
        feed(ctl, 0.1, 4)  # p99 = 0.1 <= 0.6 * 1.0
        assert ctl.effective_budget == 32
        assert ctl.n_grows == 1

    def test_dead_band_holds(self):
        # Between headroom * target (0.6) and target (1.0): no change.
        ctl = controller(initial_budget=30)
        feed(ctl, 0.8, 16)
        assert ctl.effective_budget == 30
        assert ctl.n_shrinks == 0 and ctl.n_grows == 0
        assert ctl.history == [(0, 30)]

    def test_growth_caps_at_whole_index(self):
        ctl = controller(initial_budget=99, grow_step=5)
        feed(ctl, 0.1, 4)
        assert ctl.effective_budget == 100
        assert ctl.budget == 0  # reported as unbounded again

    def test_recovery_after_overload(self):
        # A window no longer than the cadence, so each decision sees only
        # post-recovery latencies once the load drops.
        ctl = controller(latency_window=4)
        feed(ctl, 2.0, 8)
        shrunk = ctl.effective_budget
        assert shrunk == 25  # 100 -> 50 -> 25
        feed(ctl, 0.1, 8)
        assert ctl.effective_budget == 29  # 25 -> 27 -> 29
        assert ctl.n_shrinks == 2 and ctl.n_grows == 2


class TestObservation:
    def test_adjusts_only_every_nth_completion(self):
        ctl = controller(adjust_every=4)
        feed(ctl, 2.0, 3)
        assert ctl.effective_budget == 100  # not yet
        ctl.observe(2.0)
        assert ctl.effective_budget == 50

    def test_window_p99_nearest_rank(self):
        ctl = controller(latency_window=8)
        for latency in (0.1, 0.2, 0.3):
            ctl.observe(latency)
        assert ctl.window_p99_s() == 0.3

    def test_empty_window_p99_is_nan(self):
        assert math.isnan(controller().window_p99_s())

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            controller().observe(-0.1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_chunks=0),
            dict(initial_budget=-1),
            dict(initial_budget=101),
            dict(min_budget=0),
            dict(min_budget=101),
            dict(target_p99_s=0.0),
            dict(adjust_every=0),
            dict(latency_window=0),
            dict(shrink_factor=0.0),
            dict(shrink_factor=1.0),
            dict(grow_step=0),
            dict(headroom=0.0),
            dict(headroom=1.5),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            controller(**kwargs)
