"""Tests for deadline propagation into per-request stop rules."""

import numpy as np
import pytest

from repro.chunking.round_robin import RoundRobinChunker
from repro.core.batch_search import BatchChunkSearcher
from repro.core.chunk_index import build_chunk_index
from repro.core.search import ChunkSearcher
from repro.core.stop_rules import DeadlineBudget, FirstOf, MaxChunks
from repro.service.deadline import EXPIRED_BUDGET_S, propagated_stop_rule


class TestPropagatedStopRule:
    def test_bounded_budget_composes_deadline_and_chunks(self):
        rule = propagated_stop_rule(0.25, chunk_budget=3, n_chunks=10)
        assert isinstance(rule, FirstOf)
        kinds = {type(member) for member in rule.rules}
        assert kinds == {DeadlineBudget, MaxChunks}
        deadline = next(r for r in rule.rules if isinstance(r, DeadlineBudget))
        chunks = next(r for r in rule.rules if isinstance(r, MaxChunks))
        assert deadline.remaining_s == 0.25
        assert chunks.n_chunks == 3

    @pytest.mark.parametrize("budget", [0, 10, 99])
    def test_vacuous_chunk_budget_leaves_bare_deadline(self, budget):
        rule = propagated_stop_rule(0.25, chunk_budget=budget, n_chunks=10)
        assert isinstance(rule, DeadlineBudget)
        assert rule.remaining_s == 0.25

    @pytest.mark.parametrize("remaining", [0.0, -1.0, -1e-12])
    def test_expired_budget_becomes_epsilon(self, remaining):
        rule = propagated_stop_rule(remaining, chunk_budget=0, n_chunks=4)
        assert isinstance(rule, DeadlineBudget)
        assert rule.remaining_s == EXPIRED_BUDGET_S

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk"):
            propagated_stop_rule(1.0, chunk_budget=0, n_chunks=0)
        with pytest.raises(ValueError, match="budget"):
            propagated_stop_rule(1.0, chunk_budget=-1, n_chunks=4)


class TestEndToEnd:
    """An expired deadline must still yield a valid (minimal) answer —
    through both search engines, with identical observables."""

    @pytest.fixture()
    def index(self, tiny_collection):
        result = RoundRobinChunker(n_chunks=6).form_chunks(tiny_collection)
        return build_chunk_index(result.retained, result.chunk_set)

    def test_expired_deadline_scans_exactly_one_chunk(self, index):
        rule = propagated_stop_rule(-1.0, chunk_budget=0, n_chunks=index.n_chunks)
        query = np.zeros(index.dimensions)
        result = ChunkSearcher(index).search(query, k=3, stop_rule=rule)
        assert result.chunks_read == 1
        assert result.stop_reason.startswith("deadline(")
        assert not result.completed
        assert len(result.neighbors) > 0  # degraded but valid

    def test_both_engines_agree_under_deadline(self, index):
        queries = np.random.default_rng(7).standard_normal(
            (5, index.dimensions)
        )
        for remaining in (-1.0, 0.02):
            sequential = [
                ChunkSearcher(index).search(
                    q,
                    k=3,
                    stop_rule=propagated_stop_rule(remaining, 0, index.n_chunks),
                )
                for q in queries
            ]
            batch = BatchChunkSearcher(index).search_batch(
                queries,
                k=3,
                stop_rule=propagated_stop_rule(remaining, 0, index.n_chunks),
            )
            for got, want in zip(batch, sequential):
                np.testing.assert_array_equal(
                    got.neighbor_ids(), want.neighbor_ids()
                )
                assert got.stop_reason == want.stop_reason
                assert got.elapsed_s == want.elapsed_s
                assert got.chunks_read == want.chunks_read
