"""Tests for the per-chunk-region circuit breakers."""

import pytest

from repro.core.trace import TraceEvent
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_CORRUPT,
    FAULT_READ_ERROR,
    OK_OUTCOME,
    FaultPlan,
)
from repro.service.breaker import (
    BREAKER_OPEN,
    BREAKER_SKIP_OUTCOME,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    BreakerGuardedInjector,
    RegionBreaker,
)
from repro.simio.calibration import PAPER_2005_COST_MODEL


def breaker(**overrides):
    defaults = dict(window=4, failure_threshold=2, cooldown_s=1.0, probe_successes=2)
    defaults.update(overrides)
    return RegionBreaker(**defaults)


def event(chunk_id, *, skipped=False, fault="none", rank=1):
    return TraceEvent(
        chunk_id=chunk_id,
        rank=rank,
        elapsed_s=0.1,
        n_descriptors=10,
        neighbors_found=3,
        kth_distance=1.0,
        skipped=skipped,
        fault=fault,
    )


class TestRegionBreaker:
    def test_trips_at_threshold(self):
        b = breaker()
        b.record(False, 0.0)
        assert b.state == STATE_CLOSED
        b.record(False, 0.1)
        assert b.state == STATE_OPEN
        assert b.opened_at_s == 0.1
        assert b.open_count == 1

    def test_open_blocks_until_cooldown(self):
        b = breaker(cooldown_s=1.0)
        b.record(False, 0.0)
        b.record(False, 0.0)
        assert not b.allow(0.5)
        assert b.state == STATE_OPEN
        assert b.allow(1.0)  # cooldown elapsed -> half-open probe
        assert b.state == STATE_HALF_OPEN

    def test_half_open_failure_retrips(self):
        b = breaker(cooldown_s=1.0)
        b.record(False, 0.0)
        b.record(False, 0.0)
        assert b.allow(1.5)
        b.record(False, 1.5)
        assert b.state == STATE_OPEN
        assert b.opened_at_s == 1.5  # the cooldown restarts
        assert b.open_count == 2

    def test_half_open_probes_close(self):
        b = breaker(cooldown_s=1.0, probe_successes=2)
        b.record(False, 0.0)
        b.record(False, 0.0)
        assert b.allow(1.0)
        b.record(True, 1.1)
        assert b.state == STATE_HALF_OPEN
        b.record(True, 1.2)
        assert b.state == STATE_CLOSED
        assert b.allow(1.3)

    def test_rolling_window_forgets_old_failures(self):
        b = breaker(window=3, failure_threshold=2)
        b.record(False, 0.0)
        b.record(True, 0.1)
        b.record(True, 0.2)
        b.record(True, 0.3)  # the failure has rolled out of the window
        b.record(False, 0.4)
        assert b.state == STATE_CLOSED

    def test_observations_while_open_are_stale(self):
        b = breaker(cooldown_s=10.0)
        b.record(False, 0.0)
        b.record(False, 0.0)
        b.record(True, 0.5)  # a pre-trip request completing late
        b.record(False, 0.6)
        assert b.state == STATE_OPEN
        assert b.open_count == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=0),
            dict(failure_threshold=0),
            dict(window=2, failure_threshold=3),
            dict(cooldown_s=0.0),
            dict(probe_successes=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            breaker(**kwargs)


class TestBreakerBoard:
    def test_region_mapping(self):
        board = BreakerBoard(n_chunks=10, region_size=4)
        assert board.n_regions == 3
        assert board.region_of(0) == 0
        assert board.region_of(3) == 0
        assert board.region_of(4) == 1
        assert board.region_of(9) == 2
        with pytest.raises(ValueError, match="out of range"):
            board.region_of(10)
        with pytest.raises(ValueError, match="out of range"):
            board.region_of(-1)

    def test_observe_trace_trips_a_region(self):
        board = BreakerBoard(
            n_chunks=8, region_size=4, window=4, failure_threshold=2
        )
        events = [
            event(0, skipped=True, fault=FAULT_READ_ERROR, rank=1),
            event(1, skipped=True, fault=FAULT_CORRUPT, rank=2),
            event(4, rank=3),
        ]
        board.observe_trace(events, now=1.0)
        assert board.blocked_regions(1.0) == frozenset({0})
        assert board.total_opens == 1
        counts = board.state_counts()
        assert counts[STATE_OPEN] == 1
        assert counts[STATE_CLOSED] == 1

    def test_breaker_skips_are_not_observations(self):
        board = BreakerBoard(
            n_chunks=4, region_size=4, window=4, failure_threshold=2
        )
        board.observe_trace(
            [
                event(0, skipped=True, fault=BREAKER_OPEN, rank=1),
                event(1, skipped=True, fault=BREAKER_OPEN, rank=2),
            ],
            now=0.0,
        )
        assert board.blocked_regions(0.0) == frozenset()
        assert board.total_opens == 0

    def test_retried_success_counts_as_success(self):
        board = BreakerBoard(
            n_chunks=4, region_size=4, window=4, failure_threshold=2
        )
        # A processed (not skipped) chunk that saw a transient fault is a
        # delivery, not a failure.
        board.observe_trace(
            [
                event(0, skipped=False, fault=FAULT_READ_ERROR, rank=1),
                event(1, skipped=False, fault=FAULT_READ_ERROR, rank=2),
            ],
            now=0.0,
        )
        assert board.blocked_regions(0.0) == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk"):
            BreakerBoard(n_chunks=0, region_size=4)
        with pytest.raises(ValueError, match="region"):
            BreakerBoard(n_chunks=4, region_size=0)


class TestBreakerGuardedInjector:
    def test_blocked_region_short_circuits(self):
        board = BreakerBoard(n_chunks=8, region_size=4)
        inner = FaultInjector.from_cost_model(
            FaultPlan(seed=1, read_error_rate=1.0), PAPER_2005_COST_MODEL
        )
        guarded = BreakerGuardedInjector(inner, board, frozenset({0}))
        outcome = guarded.outcome(0, 2, page_count=3)
        assert outcome is BREAKER_SKIP_OUTCOME
        assert not outcome.ok
        assert outcome.kind == BREAKER_OPEN
        assert outcome.attempts == 0 and outcome.retries == 0
        assert outcome.extra_io_s == 0.0  # the whole point: no retry ladder

    def test_unblocked_chunks_delegate(self):
        board = BreakerBoard(n_chunks=8, region_size=4)
        inner = FaultInjector.from_cost_model(
            FaultPlan(seed=1, read_error_rate=1.0), PAPER_2005_COST_MODEL
        )
        guarded = BreakerGuardedInjector(inner, board, frozenset({0}))
        assert guarded.outcome(0, 5, page_count=3) == inner.outcome(
            0, 5, 3
        )

    def test_no_inner_injector_passes_clean(self):
        board = BreakerBoard(n_chunks=8, region_size=4)
        guarded = BreakerGuardedInjector(None, board, frozenset({1}))
        assert guarded.outcome(0, 0, page_count=1) is OK_OUTCOME
        assert guarded.outcome(0, 5, page_count=1) is BREAKER_SKIP_OUTCOME

    def test_is_null(self):
        board = BreakerBoard(n_chunks=8, region_size=4)
        null_inner = FaultInjector.from_cost_model(
            FaultPlan(seed=1), PAPER_2005_COST_MODEL
        )
        assert BreakerGuardedInjector(None, board, frozenset()).is_null
        assert BreakerGuardedInjector(null_inner, board, frozenset()).is_null
        assert not BreakerGuardedInjector(None, board, frozenset({0})).is_null
        live_inner = FaultInjector.from_cost_model(
            FaultPlan(seed=1, read_error_rate=0.5), PAPER_2005_COST_MODEL
        )
        assert not BreakerGuardedInjector(live_inner, board, frozenset()).is_null


class TestTransitionCounts:
    def test_full_cycle_is_counted(self):
        b = breaker(failure_threshold=2, cooldown_s=1.0, probe_successes=1)
        b.record(False, now=0.0)
        b.record(False, now=0.1)          # closed -> open
        assert (b.open_count, b.half_open_count, b.close_count) == (1, 0, 0)
        assert b.allow(now=1.2)           # open -> half-open
        assert (b.open_count, b.half_open_count, b.close_count) == (1, 1, 0)
        b.record(True, now=1.3)           # half-open -> closed
        assert (b.open_count, b.half_open_count, b.close_count) == (1, 1, 1)

    def test_failed_probe_reopens_without_closing(self):
        b = breaker(failure_threshold=2, cooldown_s=1.0, probe_successes=1)
        b.record(False, now=0.0)
        b.record(False, now=0.1)
        assert b.allow(now=1.2)
        b.record(False, now=1.3)          # half-open -> open again
        assert (b.open_count, b.half_open_count, b.close_count) == (2, 1, 0)

    def test_board_aggregates_transitions(self):
        board = BreakerBoard(
            n_chunks=8, region_size=4, window=4,
            failure_threshold=2, cooldown_s=1.0, probe_successes=1,
        )
        for _ in range(2):
            board.breakers[0].record(False, now=0.0)
        assert board.transition_counts() == {
            "opened": 1, "half_opened": 0, "closed": 0,
        }
        assert board.breakers[0].allow(now=1.5)
        board.breakers[0].record(True, now=1.6)
        assert board.transition_counts() == {
            "opened": 1, "half_opened": 1, "closed": 1,
        }
