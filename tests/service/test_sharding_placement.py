"""Tests for replicated chunk placement and partition sub-indexes."""

import numpy as np
import pytest

from repro.core.chunk import Chunk, ChunkSet
from repro.core.chunk_index import build_chunk_index
from repro.service.sharding import (
    PLACEMENT_STRATEGIES,
    Partition,
    PlacementPlan,
    build_partition_index,
    estimate_chunk_costs,
    plan_placement,
)
from repro.simio.calibration import PAPER_2005_COST_MODEL


def _coverage(plan):
    return sorted(
        chunk_id
        for partition in plan.partitions
        for chunk_id in partition.chunk_ids
    )


class TestValidation:
    def test_cluster_shape_must_be_sane(self):
        with pytest.raises(ValueError, match="shard"):
            plan_placement([1.0], n_shards=0)
        with pytest.raises(ValueError, match="replica"):
            plan_placement([1.0], n_shards=2, n_replicas=0)

    def test_more_replicas_than_shards_rejected(self):
        """R > N is a configuration error, never a silent clamp."""
        with pytest.raises(ValueError, match="distinct shards"):
            plan_placement([1.0, 2.0], n_shards=2, n_replicas=3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            plan_placement([1.0], n_shards=1, strategy="astrology")

    def test_costs_must_be_finite_and_non_negative(self):
        with pytest.raises(ValueError, match="finite"):
            plan_placement([1.0, -2.0], n_shards=2)
        with pytest.raises(ValueError, match="finite"):
            plan_placement([1.0, float("nan")], n_shards=2)
        with pytest.raises(ValueError, match="non-empty"):
            plan_placement([], n_shards=2)

    def test_split_factor_must_exceed_one(self):
        with pytest.raises(ValueError, match="split factor"):
            plan_placement([1.0], n_shards=1, strategy="split", split_factor=1.0)

    def test_partition_invariants(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            Partition(0, (), 1.0, (0,))
        with pytest.raises(ValueError, match="duplicate"):
            Partition(0, (1,), 1.0, (0, 0))
        with pytest.raises(ValueError, match="placed in partitions"):
            PlacementPlan(
                n_shards=2,
                n_replicas=1,
                strategy="greedy",
                partitions=(
                    Partition(0, (0,), 1.0, (0,)),
                    Partition(1, (0,), 1.0, (1,)),
                ),
            )


class TestStrategies:
    COSTS = [5.0, 1.0, 4.0, 2.0, 3.0, 1.0, 2.0, 6.0]

    @pytest.mark.parametrize("strategy", PLACEMENT_STRATEGIES)
    def test_every_strategy_tiles_the_chunks(self, strategy):
        plan = plan_placement(
            self.COSTS, n_shards=3, n_replicas=2, strategy=strategy
        )
        assert _coverage(plan) == list(range(len(self.COSTS)))
        assert plan.strategy == strategy
        for partition in plan.partitions:
            assert len(partition.replicas) >= 2
            assert all(0 <= s < 3 for s in partition.replicas)

    def test_single_shard_degenerates_to_one_partition(self):
        plan = plan_placement(self.COSTS, n_shards=1)
        assert plan.n_partitions == 1
        assert plan.partitions[0].chunk_ids == tuple(range(len(self.COSTS)))
        assert plan.imbalance == 1.0

    def test_greedy_beats_round_robin_on_skew(self):
        skewed = [10.0, 0.1, 0.1, 0.1, 10.0, 0.1, 0.1, 0.1]
        greedy = plan_placement(skewed, n_shards=2, strategy="greedy")
        naive = plan_placement(skewed, n_shards=2, strategy="round_robin")
        assert greedy.imbalance < naive.imbalance
        assert greedy.imbalance == pytest.approx(1.0, abs=0.02)

    def test_round_robin_is_positional(self):
        plan = plan_placement(self.COSTS, n_shards=3, strategy="round_robin")
        by_primary = {
            partition.replicas[0]: partition.chunk_ids
            for partition in plan.partitions
        }
        assert by_primary[0] == (0, 3, 6)
        assert by_primary[1] == (1, 4, 7)
        assert by_primary[2] == (2, 5)

    def test_random_is_seeded(self):
        one = plan_placement(self.COSTS, n_shards=3, strategy="random", seed=5)
        two = plan_placement(self.COSTS, n_shards=3, strategy="random", seed=5)
        other = plan_placement(self.COSTS, n_shards=3, strategy="random", seed=6)
        assert one == two
        assert one != other

    def test_split_isolates_oversized_chunks(self):
        costs = [40.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        plan = plan_placement(
            costs, n_shards=4, n_replicas=1, strategy="split", split_factor=2.0
        )
        assert plan.n_split == 1
        split = [p for p in plan.partitions if p.rotate]
        (giant,) = split
        assert giant.chunk_ids == (0,)
        # Spread over min(2 * R, N) holders.
        assert len(giant.replicas) == 2
        # Rotation walks the holders per query so they share the load.
        assert giant.targets(0) != giant.targets(1)
        assert sorted(giant.targets(0)) == sorted(giant.targets(1))
        # Without splitting, the giant chunk pegs one shard.
        greedy = plan_placement(costs, n_shards=4, strategy="greedy")
        assert plan.imbalance < greedy.imbalance

    def test_split_without_oversized_chunks_matches_greedy_bins(self):
        plan = plan_placement(
            self.COSTS, n_shards=3, strategy="split", split_factor=1000.0
        )
        greedy = plan_placement(self.COSTS, n_shards=3, strategy="greedy")
        assert plan.n_split == 0
        assert [p.chunk_ids for p in plan.partitions] == [
            p.chunk_ids for p in greedy.partitions
        ]

    def test_replica_rings_wrap(self):
        plan = plan_placement(self.COSTS, n_shards=3, n_replicas=2)
        for partition in plan.partitions:
            primary = partition.replicas[0]
            assert partition.replicas[1] == (primary + 1) % 3

    def test_report_is_json_ready(self):
        import json

        plan = plan_placement(self.COSTS, n_shards=3, n_replicas=2)
        report = plan.report()
        json.dumps(report)
        assert report["n_shards"] == 3
        assert report["imbalance"] == plan.imbalance
        assert len(report["primary_costs"]) == 3

    def test_stored_cost_counts_every_replica(self):
        plan = plan_placement([2.0, 2.0], n_shards=2, n_replicas=2)
        assert sum(plan.stored_costs()) == pytest.approx(
            2.0 * sum(plan.primary_costs())
        )


class TestCostEstimates:
    def test_costs_scale_with_chunk_size(self, small_synthetic):
        n = len(small_synthetic)
        groups = [range(0, n - 200), range(n - 200, n - 100), range(n - 100, n)]
        chunk_set = ChunkSet(
            small_synthetic,
            [Chunk.from_rows(small_synthetic, g) for g in groups],
        )
        index = build_chunk_index(small_synthetic, chunk_set, name="skewed")
        costs = estimate_chunk_costs(index, PAPER_2005_COST_MODEL)
        assert costs.shape == (3,)
        assert np.all(costs > 0.0)
        assert costs[0] > costs[1]


class TestPartitionIndex:
    @pytest.fixture()
    def index(self, tiny_collection):
        groups = [range(0, 20), range(20, 40), range(40, 60)]
        chunk_set = ChunkSet(
            tiny_collection,
            [Chunk.from_rows(tiny_collection, g) for g in groups],
        )
        return build_chunk_index(tiny_collection, chunk_set, name="base")

    def test_contents_and_renumbering(self, index):
        sub = build_partition_index(index, [2, 0], name="p0")
        assert sub.n_chunks == 2
        assert [meta.chunk_id for meta in sub.metas] == [0, 1]
        ids, vectors = sub.read_chunk(0)
        ref_ids, ref_vectors = index.read_chunk(2)
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(vectors, ref_vectors)
        # Page offsets recompacted, extents preserved.
        assert sub.metas[0].page_offset == 0
        assert sub.metas[1].page_offset == sub.metas[0].page_count
        assert sub.metas[0].page_count == index.metas[2].page_count

    def test_centroid_norms_subset(self, index):
        sub = build_partition_index(index, [1])
        np.testing.assert_allclose(
            sub.centroid_sq_norm_vector(),
            index.centroid_sq_norm_vector()[[1]],
        )

    def test_empty_partition_rejected(self, index):
        with pytest.raises(ValueError, match="at least one chunk"):
            build_partition_index(index, [])
