"""Tests for admission control and load shedding."""

import numpy as np
import pytest

from repro.service.admission import (
    SHED_PREDICTED_LATE,
    SHED_QUEUE_FULL,
    AdmissionController,
)
from repro.service.request import QueryRequest


def request(arrival=0.0, deadline=1.0, index=0):
    return QueryRequest(
        index=index,
        query=np.zeros(2),
        arrival_s=arrival,
        deadline_s=deadline,
    )


class TestDecide:
    def test_admits_when_idle(self):
        ctl = AdmissionController(queue_capacity=4, initial_service_estimate_s=0.1)
        admit, reason = ctl.decide(request(), 0.0, [0.0, 0.0], queue_len=0)
        assert admit and reason == ""
        assert ctl.n_shed == 0

    def test_queue_full_sheds(self):
        ctl = AdmissionController(queue_capacity=2, initial_service_estimate_s=0.1)
        admit, reason = ctl.decide(request(), 0.0, [0.0], queue_len=2)
        assert not admit and reason == SHED_QUEUE_FULL
        assert ctl.n_shed_full == 1 and ctl.n_shed_late == 0

    def test_predicted_late_sheds(self):
        # One worker busy until t=5; a request with deadline t=1 cannot
        # possibly finish in time.
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=0.5)
        admit, reason = ctl.decide(
            request(arrival=0.0, deadline=1.0), 0.0, [5.0], queue_len=0
        )
        assert not admit and reason == SHED_PREDICTED_LATE
        assert ctl.n_shed_late == 1 and ctl.n_shed == 1

    def test_shed_slack_loosens_the_horizon(self):
        # Predicted finish 1.5 > deadline 1.0; slack 2.0 stretches the
        # horizon to 2.0 and admits.
        strict = AdmissionController(
            queue_capacity=8, initial_service_estimate_s=0.5, shed_slack=1.0
        )
        loose = AdmissionController(
            queue_capacity=8, initial_service_estimate_s=0.5, shed_slack=2.0
        )
        args = (request(arrival=0.0, deadline=1.0), 0.0, [1.0], 0)
        assert strict.decide(*args) == (False, SHED_PREDICTED_LATE)
        assert loose.decide(*args) == (True, "")

    def test_tight_slack_sheds_earlier(self):
        # Predicted finish 0.6 fits the deadline 1.0 but not 0.5 * 1.0.
        tight = AdmissionController(
            queue_capacity=8, initial_service_estimate_s=0.3, shed_slack=0.5
        )
        admit, reason = tight.decide(
            request(arrival=0.0, deadline=1.0), 0.0, [0.3], queue_len=0
        )
        assert not admit and reason == SHED_PREDICTED_LATE


class TestPrediction:
    def test_fifo_replay_over_free_times(self):
        # Two idle workers, three queued requests at one estimated second
        # each: starts at 0, 0, 1 -> the new arrival starts at t=1.
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=1.0)
        assert ctl.predicted_start_s(0.0, [0.0, 0.0], queue_len=3) == 1.0

    def test_idle_pool_starts_now(self):
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=1.0)
        assert ctl.predicted_start_s(7.0, [0.0, 3.0], queue_len=0) == 7.0

    def test_busy_pool_starts_at_free_time(self):
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=1.0)
        assert ctl.predicted_start_s(0.0, [2.5], queue_len=0) == 2.5

    def test_needs_free_times(self):
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=1.0)
        with pytest.raises(ValueError, match="free time"):
            ctl.predicted_start_s(0.0, [], queue_len=0)


class TestEstimator:
    def test_ewma_update_is_exact(self):
        ctl = AdmissionController(
            queue_capacity=8, initial_service_estimate_s=1.0, alpha=0.25
        )
        expected = 1.0
        for observed in (0.5, 2.0, 0.25):
            ctl.observe_service_time(observed)
            expected += 0.25 * (observed - expected)
            assert ctl.service_estimate_s == expected

    def test_negative_observation_rejected(self):
        ctl = AdmissionController(queue_capacity=8, initial_service_estimate_s=1.0)
        with pytest.raises(ValueError, match="negative"):
            ctl.observe_service_time(-0.1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queue_capacity=0, initial_service_estimate_s=1.0),
            dict(queue_capacity=1, initial_service_estimate_s=0.0),
            dict(queue_capacity=1, initial_service_estimate_s=1.0, alpha=0.0),
            dict(queue_capacity=1, initial_service_estimate_s=1.0, alpha=1.5),
            dict(queue_capacity=1, initial_service_estimate_s=1.0, shed_slack=0.0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
