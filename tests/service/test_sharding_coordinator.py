"""End-to-end tests for the sharded scatter-gather coordinator.

The load-bearing claim is *exact equivalence*: with zero faults and
hedging disabled, the sharded service's merged top-k must be
bit-identical — ids, distances, stop reasons — to the single-node
:class:`~repro.core.search.ChunkSearcher`, for every placement
strategy and chunk family.  Everything else (failover, hedging,
deadlines, breakers, quorum) must degrade *honestly*: coverage
fractions that add up, stop reasons that name the cause, and no run
that ever hangs or silently drops a query.
"""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.core.metrics import (
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_SHED,
)
from repro.core.search import ChunkSearcher
from repro.faults import ShardFaultPlan
from repro.service.sharding import (
    PLACEMENT_STRATEGIES,
    ShardServiceConfig,
    ShardedQueryService,
    estimate_chunk_costs,
    plan_placement,
)

SEED = 2005


class ShardHarness:
    """One built index plus its single-node exact reference results."""

    def __init__(self, data, family="SR"):
        built = data.built(family, "SMALL")
        self.index = built.index
        self.cost_model = data.scale.cost_model
        self.k = data.scale.k
        self.queries = data.workloads["DQ"].queries
        self.costs = estimate_chunk_costs(self.index, self.cost_model)
        searcher = ChunkSearcher(self.index, cost_model=self.cost_model)
        self.reference = [
            searcher.search(query, k=self.k, query_index=i)
            for i, query in enumerate(self.queries)
        ]

    def plan(self, n_shards, n_replicas=1, strategy="greedy"):
        return plan_placement(
            self.costs,
            n_shards=n_shards,
            n_replicas=n_replicas,
            strategy=strategy,
            seed=SEED,
        )

    def config(self, **overrides):
        settings = dict(
            workers_per_shard=2,
            deadline_s=1e6,
            arrival_rate_qps=1.0,
            seed=SEED,
            k=self.k,
            max_in_flight=1024,
        )
        settings.update(overrides)
        return ShardServiceConfig(**settings)

    def run(self, plan, config=None, faults=None, queries=None, truth=None):
        service = ShardedQueryService(
            self.index,
            plan,
            config or self.config(),
            cost_model=self.cost_model,
            faults=faults,
            true_neighbor_ids=truth,
        )
        try:
            return service.run(
                self.queries if queries is None else queries
            )
        finally:
            service.close()


@pytest.fixture(scope="module")
def harness(experiment_data):
    return ShardHarness(experiment_data, family="SR")


@pytest.fixture(scope="module")
def bag_harness(experiment_data):
    return ShardHarness(experiment_data, family="BAG")


def assert_bit_identical(records, reference):
    for record, ref in zip(records, reference):
        assert record.outcome == OUTCOME_OK
        assert record.stop_reason == ref.stop_reason
        assert list(record.neighbors) == list(ref.neighbors)
        assert record.coverage_fraction == 1.0
        assert record.n_lost_partitions == 0


class TestExactEquivalence:
    @pytest.mark.parametrize("strategy", PLACEMENT_STRATEGIES)
    def test_every_placement_matches_single_node(self, harness, strategy):
        plan = harness.plan(n_shards=4, n_replicas=2, strategy=strategy)
        result = harness.run(plan)
        assert_bit_identical(result.records, harness.reference)

    def test_bag_family_matches_single_node(self, bag_harness):
        plan = bag_harness.plan(n_shards=3, n_replicas=1, strategy="split")
        result = bag_harness.run(plan)
        assert_bit_identical(result.records, bag_harness.reference)

    def test_single_shard_degenerates_to_single_node(self, harness):
        plan = harness.plan(n_shards=1)
        result = harness.run(plan)
        assert plan.n_partitions == 1
        assert_bit_identical(result.records, harness.reference)

    def test_failover_preserves_exactness(self, harness):
        """Injected read errors with R=2: every query whose partitions all
        found a surviving replica is still bit-identical."""
        plan = harness.plan(n_shards=4, n_replicas=2)
        faults = ShardFaultPlan(seed=SEED, error_rate=0.35)
        result = harness.run(plan, faults=faults)
        assert result.n_failovers > 0
        clean = [r for r in result.records if r.n_lost_partitions == 0]
        assert clean, "expected some fully answered queries"
        for record in clean:
            ref = harness.reference[record.index]
            assert list(record.neighbors) == list(ref.neighbors)
            assert record.stop_reason == ref.stop_reason
        for record in result.records:
            if record.n_lost_partitions > 0:
                assert record.outcome == OUTCOME_DEGRADED
                assert record.coverage_fraction < 1.0
                assert record.stop_reason.startswith(
                    ("shard-lost", "below-quorum")
                )

    def test_hedging_preserves_exactness(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=2)
        faults = ShardFaultPlan(
            seed=3, straggler_rate=0.3, straggler_factor=20.0
        )
        config = harness.config(arrival_rate_qps=0.5, hedge_delay_s=0.3)
        result = harness.run(plan, config=config, faults=faults)
        assert result.n_hedges > 0
        assert_bit_identical(result.records, harness.reference)


class TestDegradation:
    def test_coverage_falls_monotonically_with_error_rate(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=1)
        coverages = []
        for rate in (0.0, 0.4, 0.8):
            faults = (
                ShardFaultPlan(seed=SEED, error_rate=rate) if rate else None
            )
            result = harness.run(plan, faults=faults)
            coverages.append(result.mean_coverage)
        assert coverages[0] == 1.0
        assert coverages[0] > coverages[1] > coverages[2]

    def test_all_partitions_lost_degrades_cleanly(self, harness):
        """Certain failure everywhere, no replicas: the run must still
        terminate, answer every query, and say exactly what happened."""
        plan = harness.plan(n_shards=2, n_replicas=1)
        faults = ShardFaultPlan(seed=1, error_rate=1.0)
        result = harness.run(plan, faults=faults)
        assert len(result.records) == len(harness.queries)
        for record in result.records:
            assert record.outcome == OUTCOME_DEGRADED
            assert record.stop_reason.startswith("below-quorum")
            assert record.coverage_fraction == 0.0
            assert record.neighbors == ()
            assert record.recall == 0.0

    def test_deadline_partials_are_honest(self, harness):
        """A deadline shorter than the work: deadline outcomes with
        coverage in [0, 1), plus sheds once in-flight saturates."""
        plan = harness.plan(n_shards=2, n_replicas=1)
        config = harness.config(
            workers_per_shard=1,
            deadline_s=0.1,
            arrival_rate_qps=50.0,
            max_in_flight=4,
        )
        result = harness.run(plan, config=config)
        outcomes = {record.outcome for record in result.records}
        assert OUTCOME_DEADLINE in outcomes
        assert OUTCOME_SHED in outcomes
        for record in result.records:
            if record.outcome == OUTCOME_DEADLINE:
                assert record.stop_reason == "deadline(0.1s)"
                assert 0.0 <= record.coverage_fraction < 1.0
                assert record.latency_s == pytest.approx(0.1)
            elif record.outcome == OUTCOME_SHED:
                assert math.isnan(record.latency_s)
                assert record.stop_reason == "in-flight-limit"

    def test_quorum_threshold_names_thin_answers(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=1)
        faults = ShardFaultPlan(seed=SEED, error_rate=0.6)
        strict = harness.run(
            plan, config=harness.config(quorum_coverage=1.0), faults=faults
        )
        lenient = harness.run(
            plan, config=harness.config(quorum_coverage=0.0), faults=faults
        )
        # Identical merged answers; only the labelling moves.
        for a, b in zip(strict.records, lenient.records):
            assert a.neighbors == b.neighbors
        assert any(
            r.stop_reason.startswith("below-quorum") for r in strict.records
        )
        assert not any(
            r.stop_reason.startswith("below-quorum") for r in lenient.records
        )


class TestHedging:
    def test_hedges_cut_straggler_latency(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=2)
        faults = ShardFaultPlan(
            seed=3, straggler_rate=0.3, straggler_factor=20.0
        )
        base = dict(arrival_rate_qps=0.5)
        queries = np.tile(harness.queries, (4, 1))
        off = harness.run(
            plan, config=harness.config(**base), faults=faults,
            queries=queries,
        )
        on = harness.run(
            plan,
            config=harness.config(hedge_delay_s=0.3, **base),
            faults=faults,
            queries=queries,
        )
        assert on.n_hedges > 0
        assert on.n_hedge_wins > 0
        assert on.reclaimed_s > 0.0
        assert on.stats.mean_latency_s < off.stats.mean_latency_s
        assert on.stats.p99_s <= off.stats.p99_s

    def test_hedging_disabled_spawns_no_hedges(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=2)
        result = harness.run(plan)
        assert result.n_hedges == result.n_hedge_wins == 0

    def test_single_replica_cannot_hedge(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=1)
        config = harness.config(hedge_delay_s=1e-6)
        result = harness.run(plan, config=config)
        assert result.n_hedges == 0
        assert_bit_identical(result.records, harness.reference)


class TestBreakers:
    @pytest.fixture(scope="class")
    def outage_run(self, harness):
        """Every shard suffers one 1.5 s outage somewhere in an 8 s
        horizon; breakers must open during it and close after it."""
        plan = harness.plan(n_shards=2, n_replicas=2)
        faults = ShardFaultPlan(
            seed=11, outage_rate=1.0, outage_duration_s=1.5, horizon_s=8.0
        )
        config = harness.config(
            deadline_s=1.0,
            arrival_rate_qps=10.0,
            breaker_cooldown_s=0.3,
            breaker_failure_threshold=3,
        )
        queries = np.tile(harness.queries, (4, 1))
        return harness.run(plan, config=config, faults=faults, queries=queries)

    def test_outage_trips_and_recovers_breakers(self, outage_run):
        transitions = outage_run.breaker_transitions
        assert transitions["opened"] > 0
        assert transitions["half_opened"] > 0
        assert transitions["closed"] > 0
        # By the end of the run both shards are healthy again.
        assert outage_run.breaker_state_counts == {
            "closed": 2, "open": 0, "half-open": 0,
        }

    def test_open_breakers_cause_skips_and_failovers(self, outage_run):
        assert outage_run.n_breaker_skips > 0
        assert outage_run.n_failovers > 0
        assert sum(outage_run.shard_failed) > 0

    def test_transitions_surface_in_report(self, outage_run):
        report = outage_run.to_report()
        assert report["breakers"]["transitions"] == {
            "closed": outage_run.breaker_transitions["closed"],
            "half_opened": outage_run.breaker_transitions["half_opened"],
            "opened": outage_run.breaker_transitions["opened"],
        }
        json.dumps(report)


class TestDeterminismAndAccounting:
    def test_same_seed_reports_are_byte_identical(self, harness):
        plan = harness.plan(n_shards=4, n_replicas=2)
        faults = ShardFaultPlan.balanced(0.2, seed=7, horizon_s=30.0)
        config = harness.config(
            deadline_s=0.5, arrival_rate_qps=40.0, hedge_delay_s=0.05
        )
        first = harness.run(plan, config=config, faults=faults)
        second = harness.run(plan, config=config, faults=faults)
        assert json.dumps(first.to_report(), sort_keys=True) == json.dumps(
            second.to_report(), sort_keys=True
        )

    def test_every_query_recorded_once_in_order(self, harness):
        plan = harness.plan(n_shards=3, n_replicas=1)
        result = harness.run(plan)
        assert [r.index for r in result.records] == list(
            range(len(harness.queries))
        )

    def test_utilization_and_makespan_are_sane(self, harness):
        plan = harness.plan(n_shards=3, n_replicas=2)
        result = harness.run(plan)
        assert result.makespan_s > 0.0
        assert 0.0 < result.mean_utilization <= 1.0

    def test_ground_truth_drives_recall(self, experiment_data, harness):
        truth = experiment_data.ground_truth("SMALL", "DQ")
        truth_lists = [truth.get(i) for i in range(len(harness.queries))]
        plan = harness.plan(n_shards=2, n_replicas=1)
        result = harness.run(plan, truth=truth_lists)
        assert result.stats.mean_recall == pytest.approx(1.0)

    def test_truth_length_mismatch_rejected(self, harness):
        plan = harness.plan(n_shards=2)
        with pytest.raises(ValueError, match="ground-truth"):
            harness.run(plan, truth=[None])


class TestValidation:
    def test_zero_worker_shards_rejected(self, harness):
        with pytest.raises(ValueError, match="worker"):
            harness.config(workers_per_shard=0)

    def test_plan_must_tile_the_index(self, harness):
        foreign = plan_placement(
            [1.0] * (harness.index.n_chunks - 1), n_shards=2
        )
        with pytest.raises(ValueError, match="tile"):
            harness.run(foreign)

    def test_shared_caches_rejected(self, harness):
        from repro.simio.chunk_cache import LruChunkCache

        cached = dataclasses.replace(
            harness.cost_model,
            chunk_cache=LruChunkCache(capacity_bytes=1 << 20, seed=0),
        )
        with pytest.raises(ValueError, match="cache"):
            ShardedQueryService(
                harness.index, harness.plan(2), harness.config(), cost_model=cached
            )

    def test_queries_must_be_a_matrix(self, harness):
        plan = harness.plan(n_shards=2)
        with pytest.raises(ValueError, match="matrix"):
            harness.run(plan, queries=np.zeros((0, harness.index.dimensions)))
