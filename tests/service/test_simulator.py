"""End-to-end tests for the simulated resilient query service.

One harness, three open-loop arrival rates (0.5x, 2x, 8x the pool's
calibrated capacity): the service must keep p99 under the target at
every load, paying with a monotonically rising shed+degraded fraction —
the ISSUE's acceptance criterion, asserted on a small sweep.  The
deadline doubles as the p99 target, so the envelope being checked is
the one the deadline-propagation machinery genuinely enforces.
"""

import json
import math

import numpy as np
import pytest

from repro.core.batch_search import BatchChunkSearcher
from repro.core.metrics import OUTCOME_SHED, REQUEST_OUTCOMES
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.service import QueryService, ServiceConfig

N_REQUESTS = 96
N_WORKERS = 4
SEED = 2005
LOADS = (0.5, 2.0, 8.0)


class ServiceHarness:
    """A searcher pool calibrated against its own index, plus a cache of
    same-seed runs so each load is simulated once per module."""

    def __init__(self, data):
        built = data.built("SR", "SMALL")
        self.k = data.scale.k
        self.searcher = BatchChunkSearcher(
            built.index, cost_model=data.scale.cost_model
        )
        workload = data.workloads["DQ"].queries
        reps = -(-N_REQUESTS // workload.shape[0])
        self.queries = np.tile(workload, (reps, 1))[:N_REQUESTS]
        self.mean_service_s = self.searcher.search_batch(
            workload, k=self.k
        ).mean_elapsed_s
        self._runs = {}

    def config(self, load, **overrides):
        capacity_qps = N_WORKERS / self.mean_service_s
        deadline_s = 4.0 * self.mean_service_s
        settings = dict(
            n_workers=N_WORKERS,
            deadline_s=deadline_s,
            target_p99_s=deadline_s,
            arrival_rate_qps=load * capacity_qps,
            seed=SEED,
            k=self.k,
            initial_service_estimate_s=self.mean_service_s,
            shed_slack=0.75,
            adjust_every=4,
            latency_window=32,
        )
        settings.update(overrides)
        return ServiceConfig(**settings)

    def service(self, load, faults=None, truth=None):
        return QueryService(
            self.searcher,
            self.config(load),
            faults=faults,
            true_neighbor_ids=truth,
        )

    def run(self, load):
        if load not in self._runs:
            self._runs[load] = self.service(load).run(self.queries)
        return self._runs[load]

    def faulted_run(self, fault_rate=0.3, load=2.0):
        plan = FaultPlan.balanced(fault_rate, seed=SEED)
        faults = FaultInjector.from_cost_model(
            plan, self.searcher.cost_model
        )
        return self.service(load, faults=faults).run(self.queries)


@pytest.fixture(scope="module")
def harness(experiment_data):
    return ServiceHarness(experiment_data)


class TestDeterminism:
    def test_same_seed_reports_are_byte_identical(self, harness):
        first = harness.service(2.0).run(harness.queries)
        second = harness.service(2.0).run(harness.queries)
        assert json.dumps(first.to_report(), sort_keys=True) == json.dumps(
            second.to_report(), sort_keys=True
        )

    def test_faulted_runs_are_deterministic_too(self, harness):
        first = harness.faulted_run()
        second = harness.faulted_run()
        assert json.dumps(first.to_report(), sort_keys=True) == json.dumps(
            second.to_report(), sort_keys=True
        )


class TestEnvelope:
    def test_p99_held_under_target_at_high_load(self, harness):
        result = harness.run(8.0)
        assert result.stats.p99_s <= harness.config(8.0).target_p99_s

    def test_shed_fraction_rises_monotonically_with_load(self, harness):
        fractions = [harness.run(load).stats.shed_fraction for load in LOADS]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] > 0.5  # heavy overload really does shed

    def test_shed_plus_degraded_rises_monotonically(self, harness):
        combined = [
            harness.run(load).stats.shed_fraction
            + harness.run(load).stats.degraded_fraction
            for load in LOADS
        ]
        assert combined == sorted(combined)
        assert combined[-1] > combined[0]

    def test_underloaded_pool_serves_everything_perfectly(self, harness):
        stats = harness.run(0.5).stats
        assert stats.ok_fraction == 1.0
        assert stats.shed_fraction == 0.0
        assert stats.mean_recall == 1.0  # full scans: coverage proxy is 1


class TestAccounting:
    def test_every_request_recorded_exactly_once(self, harness):
        for load in LOADS:
            records = harness.run(load).records
            assert [r.index for r in records] == list(range(N_REQUESTS))
            assert {r.outcome for r in records} <= set(REQUEST_OUTCOMES)

    def test_shed_records_carry_nan_timings(self, harness):
        records = harness.run(8.0).records
        shed = [r for r in records if r.outcome == OUTCOME_SHED]
        served = [r for r in records if r.outcome != OUTCOME_SHED]
        assert shed and served  # overload produces both
        for record in shed:
            assert not record.served
            assert math.isnan(record.start_s)
            assert math.isnan(record.latency_s)
            assert math.isnan(record.recall)
            assert record.chunks_read == 0
            assert record.stop_reason in ("queue-full", "predicted-late")
        for record in served:
            assert record.served
            assert record.start_s >= record.arrival_s
            assert record.latency_s == record.finish_s - record.arrival_s
            assert math.isfinite(record.latency_s)

    def test_utilization_and_makespan(self, harness):
        result = harness.run(2.0)
        assert 0.0 < result.utilization <= 1.0
        last_finish = max(
            r.finish_s for r in result.records if r.served
        )
        assert result.makespan_s >= last_finish > 0.0


class TestFaultsAndBreakers:
    def test_clean_traffic_never_trips_breakers(self, harness):
        for load in LOADS:
            result = harness.run(load)
            assert result.breaker_opens == 0
            assert result.breaker_skipped_chunks == 0

    def test_faulty_regions_trip_breakers_and_cost_recall(self, harness):
        result = harness.faulted_run()
        assert result.breaker_opens > 0
        assert result.breaker_skipped_chunks > 0
        assert result.breaker_skipped_chunks == sum(
            record.breaker_skips for record in result.records
        )
        assert result.stats.degraded_fraction > 0.0
        assert result.stats.mean_recall < 1.0


class TestGroundTruth:
    def test_supplied_truth_drives_the_recall_metric(self, harness):
        truth = [[-1] for _ in range(N_REQUESTS)]  # nothing found is "true"
        result = harness.service(0.5, truth=truth).run(harness.queries)
        assert result.stats.mean_recall == 0.0

    def test_truth_length_must_match_queries(self, harness):
        with pytest.raises(ValueError, match="ground-truth"):
            harness.service(0.5, truth=[[0]]).run(harness.queries)


class TestRecallProxyGuards:
    def test_zero_descriptor_index_recall_is_nan(self):
        """The coverage proxy must not divide by a zero-descriptor total.

        An index can legitimately hold zero descriptors (every image
        filtered as an outlier); an incomplete search over it has no
        meaningful scanned fraction, so the proxy reports NaN — the same
        "no quality signal" marker shed requests carry — instead of
        raising ZeroDivisionError.
        """
        import types

        service = object.__new__(QueryService)
        service.truth = None
        service._total_descriptors = 0
        request = types.SimpleNamespace(index=0)
        incomplete = types.SimpleNamespace(completed=False)
        assert math.isnan(service._recall_of(request, incomplete))
        # Provable exactness needs no scanning, even over zero descriptors.
        complete = types.SimpleNamespace(completed=True)
        assert service._recall_of(request, complete) == 1.0
