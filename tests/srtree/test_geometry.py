"""Unit and property tests for SR-tree geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.srtree.geometry import Rect, Sphere

points_strategy = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(1, 6)),
    elements=st.floats(-100, 100),
)


class TestRect:
    def test_of_points(self):
        rect = Rect.of_points(np.array([[0.0, 5.0], [2.0, 1.0]]))
        np.testing.assert_allclose(rect.lows, [0.0, 1.0])
        np.testing.assert_allclose(rect.highs, [2.0, 5.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Rect(np.array([1.0]), np.array([0.0]))

    def test_union(self):
        a = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = Rect(np.array([-1.0, 0.5]), np.array([0.5, 2.0]))
        u = Rect.union_of([a, b])
        np.testing.assert_allclose(u.lows, [-1.0, 0.0])
        np.testing.assert_allclose(u.highs, [1.0, 2.0])
        assert u.contains_rect(a) and u.contains_rect(b)

    def test_union_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_of([])

    def test_min_dist_inside_zero(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert rect.min_dist(np.array([1.0, 1.0])) == 0.0

    def test_min_dist_outside(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.min_dist(np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_max_dist_corner(self):
        rect = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert rect.max_dist(np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2))

    def test_expanded_to(self):
        rect = Rect(np.array([0.0]), np.array([1.0]))
        grown = rect.expanded_to(np.array([5.0]))
        assert grown.contains_point(np.array([5.0]))

    def test_extents_center(self):
        rect = Rect(np.array([0.0, 2.0]), np.array([4.0, 6.0]))
        np.testing.assert_allclose(rect.extents(), [4.0, 4.0])
        np.testing.assert_allclose(rect.center, [2.0, 4.0])

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, points):
        """min_dist lower-bounds and max_dist upper-bounds the true
        distances to the contained points, for any query."""
        rect = Rect.of_points(points)
        rng = np.random.default_rng(0)
        query = rng.uniform(-150, 150, size=points.shape[1])
        dists = np.linalg.norm(points - query, axis=1)
        assert rect.min_dist(query) <= dists.min() + 1e-7
        assert rect.max_dist(query) >= dists.max() - 1e-7
        for p in points:
            assert rect.contains_point(p)


class TestSphere:
    def test_of_points_centroid(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0]])
        sphere = Sphere.of_points(points)
        np.testing.assert_allclose(sphere.center, [1.0, 0.0])
        assert sphere.radius == pytest.approx(1.0)

    def test_explicit_center(self):
        sphere = Sphere.of_points(np.array([[1.0, 0.0]]), center=np.zeros(2))
        assert sphere.radius == pytest.approx(1.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), -0.1)

    def test_min_max_dist(self):
        sphere = Sphere(np.zeros(2), 1.0)
        q = np.array([3.0, 0.0])
        assert sphere.min_dist(q) == pytest.approx(2.0)
        assert sphere.max_dist(q) == pytest.approx(4.0)
        assert sphere.min_dist(np.array([0.5, 0.0])) == 0.0

    def test_contains(self):
        outer = Sphere(np.zeros(2), 2.0)
        inner = Sphere(np.array([0.5, 0.0]), 1.0)
        assert outer.contains_sphere(inner)
        assert not inner.contains_sphere(outer)
        assert outer.contains_point(np.array([1.9, 0.0]))

    @given(points_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_bounds(self, points):
        sphere = Sphere.of_points(points)
        rng = np.random.default_rng(1)
        query = rng.uniform(-150, 150, size=points.shape[1])
        dists = np.linalg.norm(points - query, axis=1)
        assert sphere.min_dist(query) <= dists.min() + 1e-7
        assert sphere.max_dist(query) >= dists.max() - 1e-7
        for p in points:
            assert sphere.contains_point(p)
