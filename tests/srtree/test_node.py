"""Tests for SR-tree node summaries."""

import numpy as np
import pytest

from repro.srtree.node import SRNode


@pytest.fixture()
def vectors(rng):
    return rng.standard_normal((40, 3))


def make_leaf(vectors, rows):
    leaf = SRNode(is_leaf=True, dimensions=vectors.shape[1])
    leaf.rows = list(rows)
    leaf.refresh_summary(vectors)
    return leaf


class TestLeafSummary:
    def test_centroid_count(self, vectors):
        leaf = make_leaf(vectors, range(10))
        assert leaf.count == 10
        np.testing.assert_allclose(leaf.centroid, vectors[:10].mean(axis=0))

    def test_sphere_and_rect_cover_points(self, vectors):
        leaf = make_leaf(vectors, range(15))
        for p in vectors[:15]:
            assert leaf.sphere.contains_point(p)
            assert leaf.rect.contains_point(p)

    def test_empty_leaf_rejected(self, vectors):
        leaf = SRNode(is_leaf=True, dimensions=3)
        with pytest.raises(ValueError):
            leaf.refresh_summary(vectors)


class TestInternalSummary:
    def test_weighted_centroid(self, vectors):
        a = make_leaf(vectors, range(0, 10))
        b = make_leaf(vectors, range(10, 40))
        parent = SRNode(is_leaf=False, dimensions=3)
        parent.children = [a, b]
        parent.refresh_summary(vectors)
        assert parent.count == 40
        np.testing.assert_allclose(parent.centroid, vectors.mean(axis=0))

    def test_region_covers_all_points(self, vectors):
        a = make_leaf(vectors, range(0, 20))
        b = make_leaf(vectors, range(20, 40))
        parent = SRNode(is_leaf=False, dimensions=3)
        parent.children = [a, b]
        parent.refresh_summary(vectors)
        for p in vectors:
            assert parent.rect.contains_point(p)
            assert parent.sphere.contains_point(p)

    def test_sphere_uses_tighter_reach(self, vectors):
        """The SR-tree sphere radius is min(sphere reach, rect reach),
        so it can be smaller than the plain union-of-spheres radius."""
        a = make_leaf(vectors, range(0, 20))
        b = make_leaf(vectors, range(20, 40))
        parent = SRNode(is_leaf=False, dimensions=3)
        parent.children = [a, b]
        parent.refresh_summary(vectors)
        union_reach = max(
            np.linalg.norm(c.centroid - parent.centroid) + c.sphere.radius
            for c in parent.children
        )
        assert parent.sphere.radius <= union_reach + 1e-12

    def test_empty_internal_rejected(self, vectors):
        parent = SRNode(is_leaf=False, dimensions=3)
        with pytest.raises(ValueError):
            parent.refresh_summary(vectors)


class TestDistances:
    def test_min_dist_is_max_of_primitives(self, vectors):
        leaf = make_leaf(vectors, range(25))
        query = np.array([10.0, 10.0, 10.0])
        expected = max(leaf.sphere.min_dist(query), leaf.rect.min_dist(query))
        assert leaf.min_dist(query) == pytest.approx(expected)

    def test_min_dist_lower_bounds_points(self, vectors):
        leaf = make_leaf(vectors, range(25))
        query = np.array([3.0, -2.0, 1.0])
        true_min = np.linalg.norm(vectors[:25] - query, axis=1).min()
        assert leaf.min_dist(query) <= true_min + 1e-9

    def test_max_dist_upper_bounds_points(self, vectors):
        leaf = make_leaf(vectors, range(25))
        query = np.array([3.0, -2.0, 1.0])
        true_max = np.linalg.norm(vectors[:25] - query, axis=1).max()
        assert leaf.max_dist(query) >= true_max - 1e-9

    def test_unsummarized_node_raises(self):
        node = SRNode(is_leaf=True, dimensions=2)
        with pytest.raises(ValueError):
            node.min_dist(np.zeros(2))


class TestStructure:
    def test_depth_and_iter_leaves(self, vectors):
        a = make_leaf(vectors, range(0, 20))
        b = make_leaf(vectors, range(20, 40))
        parent = SRNode(is_leaf=False, dimensions=3)
        parent.children = [a, b]
        parent.refresh_summary(vectors)
        assert parent.depth() == 2
        assert a.depth() == 1
        assert list(parent.iter_leaves()) == [a, b]
        assert len(parent) == 2
        assert len(a) == 20
