"""Tests for the dynamic SR-tree: structure, invariants, exact search."""

import numpy as np
import pytest

from repro.srtree.tree import SRTree


def brute_knn(vectors, query, k):
    d = np.linalg.norm(vectors - query, axis=1)
    order = sorted(range(len(vectors)), key=lambda i: (d[i], i))[:k]
    return [(d[i], i) for i in order]


@pytest.fixture()
def populated_tree(rng):
    tree = SRTree(dimensions=4, leaf_capacity=8, internal_capacity=4)
    points = rng.standard_normal((300, 4))
    tree.extend(points)
    return tree, points


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SRTree(dimensions=0)
        with pytest.raises(ValueError):
            SRTree(dimensions=2, leaf_capacity=1)
        with pytest.raises(ValueError):
            SRTree(dimensions=2, min_fill=0.9)

    def test_empty_tree(self):
        tree = SRTree(dimensions=3)
        assert len(tree) == 0
        assert tree.height() == 0
        assert tree.nn_search(np.zeros(3), 1) == []

    def test_single_insert(self):
        tree = SRTree(dimensions=2)
        row = tree.insert([1.0, 2.0])
        assert row == 0
        assert len(tree) == 1
        assert tree.height() == 1

    def test_dimension_mismatch(self):
        tree = SRTree(dimensions=2)
        with pytest.raises(ValueError):
            tree.insert([1.0, 2.0, 3.0])


class TestInvariants:
    def test_validate_after_growth(self, populated_tree):
        tree, _ = populated_tree
        tree.validate()
        assert len(tree) == 300
        assert tree.height() >= 2

    def test_leaf_capacity_respected(self, populated_tree):
        tree, _ = populated_tree
        for leaf in tree.root.iter_leaves():
            assert 1 <= len(leaf.rows) <= tree.leaf_capacity

    def test_counts_consistent(self, populated_tree):
        tree, _ = populated_tree
        total = sum(len(leaf.rows) for leaf in tree.root.iter_leaves())
        assert total == 300

    def test_incremental_validation(self, rng):
        """Validate after every few inserts to catch transient corruption."""
        tree = SRTree(dimensions=3, leaf_capacity=4, internal_capacity=3)
        points = rng.standard_normal((60, 3))
        for i, p in enumerate(points):
            tree.insert(p)
            if i % 10 == 9:
                tree.validate()


class TestSearch:
    def test_exactness_vs_brute_force(self, populated_tree):
        tree, points = populated_tree
        rng = np.random.default_rng(9)
        for _ in range(20):
            query = rng.standard_normal(4)
            for k in (1, 5, 13):
                got = tree.nn_search(query, k)
                expected = brute_knn(points, query, k)
                assert [i for _, i in got] == [i for _, i in expected]
                np.testing.assert_allclose(
                    [d for d, _ in got], [d for d, _ in expected]
                )

    def test_query_for_inserted_point(self, populated_tree):
        tree, points = populated_tree
        got = tree.nn_search(points[42], 1)
        assert got[0][1] == 42
        assert got[0][0] == pytest.approx(0.0)

    def test_k_larger_than_tree(self):
        tree = SRTree(dimensions=2, leaf_capacity=4)
        tree.extend(np.array([[0.0, 0.0], [1.0, 0.0]]))
        got = tree.nn_search(np.zeros(2), 10)
        assert len(got) == 2

    def test_dimension_mismatch(self, populated_tree):
        tree, _ = populated_tree
        with pytest.raises(ValueError):
            tree.nn_search(np.zeros(3), 1)


class TestClusteredData:
    def test_clustered_inserts_stay_exact(self, tiny_collection):
        tree = SRTree(dimensions=4, leaf_capacity=6, internal_capacity=3)
        tree.extend(tiny_collection.vectors.astype(float))
        tree.validate()
        query = tiny_collection.vectors[0].astype(float)
        got = tree.nn_search(query, 8)
        expected = brute_knn(tiny_collection.vectors.astype(float), query, 8)
        assert [i for _, i in got] == [i for _, i in expected]
