"""Tests for the static SR-tree build (the paper's chunk-formation path)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.srtree.bulk_load import bulk_load, partition_rows_uniform
from repro.srtree.tree import SRTree


class TestPartition:
    def test_uniform_sizes(self, rng):
        vectors = rng.standard_normal((1000, 8))
        groups = partition_rows_uniform(vectors, leaf_capacity=64)
        sizes = [g.size for g in groups]
        # All groups are exactly the capacity except at most one remainder.
        assert sum(1 for s in sizes if s != 64) <= 1
        assert sum(sizes) == 1000

    def test_covers_all_rows_once(self, rng):
        vectors = rng.standard_normal((333, 5))
        groups = partition_rows_uniform(vectors, leaf_capacity=10)
        all_rows = np.concatenate(groups)
        assert sorted(all_rows.tolist()) == list(range(333))

    def test_capacity_of_one(self, rng):
        vectors = rng.standard_normal((7, 2))
        groups = partition_rows_uniform(vectors, leaf_capacity=1)
        assert len(groups) == 7

    def test_capacity_exceeding_n(self, rng):
        vectors = rng.standard_normal((5, 2))
        groups = partition_rows_uniform(vectors, leaf_capacity=100)
        assert len(groups) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_rows_uniform(np.empty((0, 3)), 4)

    def test_bad_capacity_rejected(self, rng):
        with pytest.raises(ValueError):
            partition_rows_uniform(rng.standard_normal((4, 2)), 0)

    def test_spatial_coherence(self, tiny_collection):
        """Groups should roughly follow the three clusters: a group never
        spans all three cluster centers."""
        groups = partition_rows_uniform(
            tiny_collection.vectors.astype(float), leaf_capacity=20
        )
        for rows in groups:
            clusters = set(int(r) // 20 for r in rows)
            assert len(clusters) <= 2

    @given(st.integers(2, 500), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_property_sizes(self, n, capacity):
        rng = np.random.default_rng(n * 1000 + capacity)
        vectors = rng.standard_normal((n, 3))
        groups = partition_rows_uniform(vectors, capacity)
        sizes = [g.size for g in groups]
        assert sum(sizes) == n
        assert all(1 <= s <= capacity for s in sizes)
        assert sum(1 for s in sizes if s < capacity) <= 1


class TestBulkLoad:
    def test_valid_structure(self, rng):
        vectors = rng.standard_normal((500, 6))
        tree = bulk_load(vectors, leaf_capacity=32, internal_capacity=5)
        tree.validate()
        assert len(tree) == 500

    def test_search_exact(self, rng):
        vectors = rng.standard_normal((400, 5))
        tree = bulk_load(vectors, leaf_capacity=25)
        query = rng.standard_normal(5)
        got = [i for _, i in tree.nn_search(query, 9)]
        d = np.linalg.norm(vectors - query, axis=1)
        expected = sorted(range(400), key=lambda i: (d[i], i))[:9]
        assert got == expected

    def test_matches_dynamic_tree_results(self, rng):
        """Static and dynamic builds must return identical k-NN."""
        vectors = rng.standard_normal((200, 4))
        static = bulk_load(vectors, leaf_capacity=16)
        dynamic = SRTree(dimensions=4, leaf_capacity=16)
        dynamic.extend(vectors)
        query = rng.standard_normal(4)
        assert [i for _, i in static.nn_search(query, 7)] == [
            i for _, i in dynamic.nn_search(query, 7)
        ]

    def test_single_leaf_tree(self, rng):
        vectors = rng.standard_normal((10, 3))
        tree = bulk_load(vectors, leaf_capacity=64)
        assert tree.height() == 1
        tree.validate()
