"""Tests for the end-to-end image retrieval system facade."""

import numpy as np
import pytest

from repro.chunking.hybrid import HybridChunker
from repro.core.dataset import DescriptorCollection
from repro.system import ImageRetrievalSystem


@pytest.fixture()
def image_collection():
    rng = np.random.default_rng(12)
    centers = rng.uniform(0, 10, size=(8, 6))
    parts, image_ids = [], []
    for image, center in enumerate(centers):
        parts.append(center + 0.2 * rng.standard_normal((25, 6)))
        image_ids.extend([image] * 25)
    return DescriptorCollection(
        vectors=np.vstack(parts).astype(np.float32),
        ids=np.arange(200),
        image_ids=np.asarray(image_ids),
    )


@pytest.fixture()
def system(image_collection):
    s = ImageRetrievalSystem(default_stop_chunks=4)
    s.index_images(image_collection)
    return s


class TestBuild:
    def test_counts(self, system, image_collection):
        assert system.n_descriptors == len(image_collection)
        assert system.n_images == 8

    def test_unbuilt_rejects_queries(self):
        s = ImageRetrievalSystem()
        with pytest.raises(RuntimeError, match="index images first"):
            s.find_similar_descriptors(np.zeros(6))
        with pytest.raises(RuntimeError):
            s.add_image(0, np.zeros((1, 6)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ImageRetrievalSystem().index_images(DescriptorCollection.empty(6))

    def test_custom_chunker(self, image_collection):
        s = ImageRetrievalSystem(chunker=HybridChunker(target_chunk_size=30))
        s.index_images(image_collection)
        assert s.n_descriptors == len(image_collection)

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageRetrievalSystem(default_stop_chunks=0)


class TestQueries:
    def test_descriptor_search(self, system, image_collection):
        result = system.find_similar_descriptors(
            image_collection.vectors[3].astype(float), k=5, exact=True
        )
        assert result.neighbor_ids()[0] == 3
        assert result.completed

    def test_approximate_by_default(self, system, image_collection):
        result = system.find_similar_descriptors(
            image_collection.vectors[3].astype(float), k=5
        )
        assert result.chunks_read <= 4

    def test_image_search_finds_source(self, system, image_collection):
        rows = np.flatnonzero(image_collection.image_ids == 5)[:10]
        matches = system.find_similar_images(
            image_collection.vectors[rows].astype(float)
        )
        assert matches[0].image_id == 5


class TestLiveUpdates:
    def test_add_then_find(self, system):
        rng = np.random.default_rng(3)
        new_image = 100.0 + 0.1 * rng.standard_normal((12, 6))
        assert system.add_image(99, new_image) == 12
        assert system.n_images == 9
        matches = system.find_similar_images(new_image[:5], exact=True)
        assert matches[0].image_id == 99

    def test_remove_image(self, system, image_collection):
        system.remove_image(2)
        assert system.n_images == 7
        assert system.n_descriptors == len(image_collection) - 25
        rows = np.flatnonzero(image_collection.image_ids == 2)[:5]
        matches = system.find_similar_images(
            image_collection.vectors[rows].astype(float), exact=True
        )
        assert all(match.image_id != 2 for match in matches)

    def test_remove_missing_image(self, system):
        with pytest.raises(KeyError):
            system.remove_image(12345)

    def test_add_empty_image_rejected(self, system):
        with pytest.raises(ValueError):
            system.add_image(50, np.empty((0, 6)))


class TestPersistence:
    def test_save_load_roundtrip(self, system, image_collection, tmp_path):
        directory = str(tmp_path / "retrieval")
        query_rows = np.flatnonzero(image_collection.image_ids == 4)[:8]
        query = image_collection.vectors[query_rows].astype(float)
        before = system.find_similar_images(query, exact=True)

        system.save(directory)
        loaded = ImageRetrievalSystem.load(directory)
        assert loaded.n_descriptors == system.n_descriptors
        assert loaded.n_images == system.n_images
        after = loaded.find_similar_images(query, exact=True)
        assert [m.image_id for m in before] == [m.image_id for m in after]
        assert [m.votes for m in before] == [m.votes for m in after]

    def test_load_then_update(self, system, tmp_path):
        directory = str(tmp_path / "retrieval2")
        system.save(directory)
        loaded = ImageRetrievalSystem.load(directory)
        rng = np.random.default_rng(1)
        loaded.add_image(77, 50.0 + rng.standard_normal((5, 6)))
        assert loaded.n_images == system.n_images + 1


class TestMaintainedPersistence:
    def test_save_after_maintenance_compacts(self, system, tmp_path):
        """A system that accumulated relocation holes persists fine; the
        saved layout is compacted (regression test for the layout-drift
        failure)."""
        rng = np.random.default_rng(8)
        for i in range(3):
            system.add_image(200 + i, 20.0 + rng.standard_normal((30, 6)))
        system.remove_image(0)
        directory = str(tmp_path / "maintained")
        system.save(directory)
        loaded = ImageRetrievalSystem.load(directory)
        assert loaded.n_descriptors == system.n_descriptors
        offset = 0
        for meta in loaded._index.metas:
            assert meta.page_offset == offset
            offset += meta.page_count
