"""Cross-module property-based tests (hypothesis).

The single most load-bearing property of the whole system is tested here
under adversarial inputs: *a run-to-completion chunk search equals a
sequential scan, for any data and any chunking* — plus a stateful model
test of the index maintainer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.chunking.random_chunker import RandomChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.dataset import DescriptorCollection
from repro.core.ground_truth import exact_knn
from repro.core.maintenance import ChunkIndexMaintainer
from repro.core.search import ChunkSearcher


@st.composite
def collections(draw, max_points=60, max_dims=6):
    n = draw(st.integers(2, max_points))
    d = draw(st.integers(1, max_dims))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    # A mix of clustered and duplicate-heavy data to stress tie handling.
    base = rng.standard_normal((n, d)) * draw(st.floats(0.01, 10.0))
    if draw(st.booleans()):
        base[: n // 2] = base[0]  # duplicates
    return DescriptorCollection.from_vectors(base.astype(np.float32))


class TestSearchExactnessProperty:
    @given(
        collections(),
        st.integers(1, 10),
        st.integers(2, 16),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_equals_scan(self, collection, k, granule, use_random):
        chunker = (
            RandomChunker(n_chunks=granule, seed=0)
            if use_random
            else SRTreeChunker(leaf_capacity=granule)
        )
        result = chunker.form_chunks(collection)
        index = build_chunk_index(result.retained, result.chunk_set)
        searcher = ChunkSearcher(index)
        rng = np.random.default_rng(1)
        query = rng.standard_normal(collection.dimensions)
        got = searcher.search(query, k=min(k, len(collection)))
        assert got.completed
        expected = exact_knn(collection, query, min(k, len(collection)))
        np.testing.assert_array_equal(got.neighbor_ids(), expected)

    @given(collections(), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_chunk_invariants_hold(self, collection, granule):
        result = SRTreeChunker(leaf_capacity=granule).form_chunks(collection)
        result.validate()
        assert result.chunk_set.is_partition()


class MaintainerMachine(RuleBasedStateMachine):
    """Model-based test: the maintainer against a plain dict model."""

    def __init__(self):
        super().__init__()
        self.model = {}
        self.maintainer = None
        self.rng = np.random.default_rng(99)
        self.next_id = 1000

    @initialize()
    def build(self):
        vectors = self.rng.standard_normal((20, 3)).astype(np.float32) * 2
        collection = DescriptorCollection.from_vectors(vectors)
        chunking = SRTreeChunker(leaf_capacity=6).form_chunks(collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        self.maintainer = ChunkIndexMaintainer(index)
        self.model = {
            int(i): vectors[row] for row, i in enumerate(collection.ids)
        }

    @rule()
    def insert(self):
        vector = self.rng.standard_normal(3).astype(np.float32) * 2
        self.maintainer.insert(self.next_id, vector)
        self.model[self.next_id] = vector
        self.next_id += 1

    @rule(pick=st.integers(0, 10**6))
    def delete(self, pick):
        if len(self.model) <= 2:
            return
        keys = sorted(self.model)
        victim = keys[pick % len(keys)]
        self.maintainer.delete(victim)
        del self.model[victim]

    @rule()
    def compact(self):
        self.maintainer.compact()

    @invariant()
    def search_matches_model(self):
        if self.maintainer is None or len(self.model) < 2:
            return
        ids = sorted(self.model)
        logical = DescriptorCollection(
            vectors=np.vstack([self.model[i] for i in ids]),
            ids=np.asarray(ids, dtype=np.int64),
            image_ids=np.zeros(len(ids), dtype=np.int64),
        )
        searcher = ChunkSearcher(self.maintainer.to_index())
        query = self.rng.standard_normal(3) * 2
        k = min(4, len(ids))
        got = searcher.search(query, k=k)
        np.testing.assert_array_equal(
            got.neighbor_ids(), exact_knn(logical, query, k)
        )

    @invariant()
    def sizes_agree(self):
        if self.maintainer is not None:
            assert len(self.maintainer) == len(self.model)


MaintainerMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestMaintainerStateMachine = MaintainerMachine.TestCase
