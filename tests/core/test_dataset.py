"""Tests for the descriptor collection data model."""

import numpy as np
import pytest

from repro.core.dataset import (
    DESCRIPTOR_RECORD_BYTES,
    DescriptorCollection,
)


class TestConstruction:
    def test_from_vectors_defaults(self):
        col = DescriptorCollection.from_vectors(np.ones((4, 3)))
        assert len(col) == 4
        assert col.dimensions == 3
        assert list(col.ids) == [0, 1, 2, 3]
        assert list(col.image_ids) == [0, 1, 2, 3]

    def test_single_vector_promoted(self):
        col = DescriptorCollection.from_vectors(np.ones(5))
        assert len(col) == 1
        assert col.dimensions == 5

    def test_empty(self):
        col = DescriptorCollection.empty(24)
        assert len(col) == 0
        assert col.dimensions == 24

    def test_dtype_coercion(self):
        col = DescriptorCollection.from_vectors(np.ones((2, 2), dtype=np.float64))
        assert col.vectors.dtype == np.float32
        assert col.ids.dtype == np.int64

    def test_mismatched_ids_raise(self):
        with pytest.raises(ValueError, match="ids shape"):
            DescriptorCollection(
                vectors=np.ones((3, 2)),
                ids=np.arange(2),
                image_ids=np.arange(3),
            )

    def test_mismatched_image_ids_raise(self):
        with pytest.raises(ValueError, match="image_ids shape"):
            DescriptorCollection(
                vectors=np.ones((3, 2)),
                ids=np.arange(3),
                image_ids=np.arange(2),
            )

    def test_1d_vectors_raise(self):
        with pytest.raises(ValueError, match="2-D"):
            DescriptorCollection(
                vectors=np.ones(3), ids=np.arange(3), image_ids=np.arange(3)
            )


class TestRecordLayout:
    def test_paper_record_is_100_bytes(self):
        assert DESCRIPTOR_RECORD_BYTES == 100

    def test_storage_bytes(self):
        col = DescriptorCollection.from_vectors(np.ones((10, 24)))
        assert col.storage_bytes == 1000


class TestSelection:
    def test_take_preserves_order(self, tiny_collection):
        sub = tiny_collection.take([5, 1, 3])
        assert list(sub.ids) == [5, 1, 3]
        np.testing.assert_array_equal(sub.vectors[0], tiny_collection.vectors[5])

    def test_mask(self, tiny_collection):
        keep = np.zeros(len(tiny_collection), dtype=bool)
        keep[:10] = True
        sub = tiny_collection.mask(keep)
        assert len(sub) == 10
        assert list(sub.ids) == list(range(10))

    def test_mask_wrong_shape(self, tiny_collection):
        with pytest.raises(ValueError, match="mask shape"):
            tiny_collection.mask(np.ones(3, dtype=bool))

    def test_rows_for_ids(self, tiny_collection):
        sub = tiny_collection.take([7, 2, 9])
        rows = sub.rows_for_ids([2, 9])
        assert list(rows) == [1, 2]

    def test_rows_for_missing_id(self, tiny_collection):
        with pytest.raises(KeyError, match="9999"):
            tiny_collection.rows_for_ids([9999])

    def test_concat(self, tiny_collection):
        both = tiny_collection.concat(tiny_collection)
        assert len(both) == 2 * len(tiny_collection)

    def test_concat_dim_mismatch(self, tiny_collection):
        other = DescriptorCollection.from_vectors(np.ones((2, 7)))
        with pytest.raises(ValueError, match="concat"):
            tiny_collection.concat(other)

    def test_equality(self, tiny_collection):
        assert tiny_collection == tiny_collection.take(
            np.arange(len(tiny_collection))
        )
        assert tiny_collection != tiny_collection.take([0, 1])


class TestStatistics:
    def test_centroid(self):
        col = DescriptorCollection.from_vectors(
            np.array([[0.0, 0.0], [2.0, 4.0]])
        )
        np.testing.assert_allclose(col.centroid(), [1.0, 2.0])

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            DescriptorCollection.empty(3).centroid()

    def test_norms(self):
        col = DescriptorCollection.from_vectors(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(col.norms(), [5.0])

    def test_dimension_ranges_untrimmed(self):
        col = DescriptorCollection.from_vectors(
            np.array([[0.0, 10.0], [1.0, 20.0], [2.0, 30.0]])
        )
        ranges = col.dimension_ranges()
        np.testing.assert_allclose(ranges[:, 0], [0.0, 10.0])
        np.testing.assert_allclose(ranges[:, 1], [2.0, 30.0])

    def test_dimension_ranges_trimmed_narrower(self, tiny_collection):
        full = tiny_collection.dimension_ranges(0.0)
        trimmed = tiny_collection.dimension_ranges(0.05)
        assert np.all(trimmed[:, 0] >= full[:, 0])
        assert np.all(trimmed[:, 1] <= full[:, 1])

    def test_bad_trim_fraction(self, tiny_collection):
        with pytest.raises(ValueError):
            tiny_collection.dimension_ranges(0.5)

    def test_ranges_empty_raise(self):
        with pytest.raises(ValueError):
            DescriptorCollection.empty(2).dimension_ranges()
