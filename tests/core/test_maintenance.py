"""Tests for incremental chunk-index maintenance."""

import numpy as np
import pytest

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.ground_truth import exact_knn
from repro.core.maintenance import ChunkIndexMaintainer
from repro.core.dataset import DescriptorCollection
from repro.core.search import ChunkSearcher


@pytest.fixture()
def maintainer(tiny_collection):
    chunking = SRTreeChunker(leaf_capacity=12).form_chunks(tiny_collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)
    return ChunkIndexMaintainer(index), tiny_collection


def full_collection_after(maintainer, base, inserted, deleted):
    """The logical collection after maintenance operations."""
    keep = [i for i in range(len(base)) if int(base.ids[i]) not in deleted]
    vectors = [base.vectors[i] for i in keep]
    ids = [int(base.ids[i]) for i in keep]
    for descriptor_id, vector in inserted:
        ids.append(descriptor_id)
        vectors.append(np.asarray(vector, dtype=np.float32))
    return DescriptorCollection(
        vectors=np.vstack(vectors),
        ids=np.asarray(ids, dtype=np.int64),
        image_ids=np.zeros(len(ids), dtype=np.int64),
    )


class TestConstruction:
    def test_copies_index(self, maintainer):
        m, collection = maintainer
        assert len(m) == len(collection)
        assert m.n_chunks > 1

    def test_validation(self, maintainer):
        m, _ = maintainer
        from repro.chunking.srtree_chunker import SRTreeChunker

        with pytest.raises(ValueError):
            ChunkIndexMaintainer(m.to_index(), split_factor=1.0)
        with pytest.raises(ValueError):
            ChunkIndexMaintainer(m.to_index(), merge_fraction=1.0)


class TestInsert:
    def test_insert_searchable(self, maintainer):
        m, collection = maintainer
        new_vector = collection.vectors[0] + 0.01
        m.insert(1000, new_vector)
        assert len(m) == len(collection) + 1
        index = m.to_index()
        result = ChunkSearcher(index).search(
            new_vector.astype(float), k=1
        )
        assert result.neighbor_ids()[0] == 1000

    def test_duplicate_id_rejected(self, maintainer):
        m, _ = maintainer
        with pytest.raises(ValueError, match="already present"):
            m.insert(0, np.zeros(4))

    def test_dimension_mismatch(self, maintainer):
        m, _ = maintainer
        with pytest.raises(ValueError):
            m.insert(1000, np.zeros(3))

    def test_oversized_chunk_splits(self, maintainer):
        m, collection = maintainer
        target = m.target_chunk_size
        before = m.n_chunks
        # Pour many descriptors into one spot to force a split.
        for i in range(int(m.split_factor * target) + 2):
            m.insert(2000 + i, collection.vectors[0] + 0.001 * i)
        assert m.stats.splits >= 1
        assert m.n_chunks > before

    def test_exactness_preserved_after_inserts(self, maintainer):
        m, collection = maintainer
        rng = np.random.default_rng(0)
        inserted = []
        for i in range(25):
            vector = rng.standard_normal(4).astype(np.float32) * 3
            m.insert(5000 + i, vector)
            inserted.append((5000 + i, vector))
        logical = full_collection_after(m, collection, inserted, set())
        index = m.to_index()
        searcher = ChunkSearcher(index)
        for _ in range(5):
            query = rng.standard_normal(4) * 3
            got = searcher.search(query, k=6)
            np.testing.assert_array_equal(
                got.neighbor_ids(), exact_knn(logical, query, 6)
            )


class TestDelete:
    def test_delete_removes_from_results(self, maintainer):
        m, collection = maintainer
        m.delete(7)
        index = m.to_index()
        result = ChunkSearcher(index).search(
            collection.vectors[7].astype(float), k=len(collection) - 1
        )
        assert 7 not in set(result.neighbor_ids().tolist())

    def test_missing_id_raises(self, maintainer):
        m, _ = maintainer
        with pytest.raises(KeyError):
            m.delete(10_000)

    def test_shrunken_chunk_merges(self, maintainer):
        m, collection = maintainer
        # Delete most of one chunk's members to force a merge.
        index = m.to_index()
        ids, _ = index.read_chunk(0)
        for descriptor_id in ids[:-1]:
            m.delete(int(descriptor_id))
        assert m.stats.merges >= 1 or m.n_chunks < index.n_chunks

    def test_exactness_preserved_after_mixed_workload(self, maintainer):
        m, collection = maintainer
        rng = np.random.default_rng(1)
        inserted, deleted = [], set()
        for i in range(30):
            if i % 3 == 2:
                victim = int(rng.integers(len(collection)))
                if victim not in deleted:
                    m.delete(victim)
                    deleted.add(victim)
            else:
                vector = rng.standard_normal(4).astype(np.float32) * 4
                m.insert(7000 + i, vector)
                inserted.append((7000 + i, vector))
        logical = full_collection_after(m, collection, inserted, deleted)
        assert len(m) == len(logical)
        searcher = ChunkSearcher(m.to_index())
        for _ in range(5):
            query = rng.standard_normal(4) * 4
            got = searcher.search(query, k=5)
            np.testing.assert_array_equal(
                got.neighbor_ids(), exact_knn(logical, query, 5)
            )


class TestStorageAccounting:
    def test_relocation_tracked(self, tiny_collection):
        # A high split threshold lets one chunk's payload outgrow its
        # 8 KiB page (an 8-byte-per-value record layout fits 81 records).
        chunking = SRTreeChunker(leaf_capacity=12).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        m = ChunkIndexMaintainer(
            index, target_chunk_size=300, split_factor=3.0
        )
        # 4-d records are 20 bytes, so one 8 KiB page holds 409; growing a
        # chunk past that must relocate it.
        for i in range(450):
            m.insert(9000 + i, tiny_collection.vectors[0] + 0.0001 * i)
        assert m.stats.relocations >= 1
        assert m.stats.dead_pages >= 1
        assert 0.0 <= m.fragmentation < 1.0

    def test_extents_never_overlap(self, maintainer):
        m, collection = maintainer
        rng = np.random.default_rng(2)
        for i in range(100):
            m.insert(11000 + i, rng.standard_normal(4).astype(np.float32) * 4)
        index = m.to_index()
        spans = sorted(
            (meta.page_offset, meta.page_offset + meta.page_count)
            for meta in index.metas
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end


class TestCompaction:
    def test_compact_reclaims_dead_pages(self, tiny_collection):
        chunking = SRTreeChunker(leaf_capacity=12).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        m = ChunkIndexMaintainer(index, target_chunk_size=300, split_factor=3.0)
        for i in range(450):
            m.insert(9000 + i, tiny_collection.vectors[0] + 0.0001 * i)
        assert m.fragmentation > 0
        reclaimed = m.compact()
        assert reclaimed > 0
        assert m.fragmentation == 0.0

    def test_compact_preserves_contents_and_layout(self, maintainer):
        m, collection = maintainer
        rng = np.random.default_rng(3)
        for i in range(60):
            m.insert(12000 + i, rng.standard_normal(4).astype(np.float32) * 4)
        before = m.to_index()
        query = collection.vectors[0].astype(float)
        expected = ChunkSearcher(before).search(query, k=8).neighbor_ids()
        m.compact()
        after = m.to_index()
        got = ChunkSearcher(after).search(query, k=8).neighbor_ids()
        np.testing.assert_array_equal(got, expected)
        # Extents are now dense: offsets are the running page sum.
        offset = 0
        for meta in after.metas:
            assert meta.page_offset == offset
            offset += meta.page_count
