"""Batch engine equivalence: batch search must be an optimization, never
a semantic change.

The property under test: for every chunker in the zoo and every stop
rule, ``BatchChunkSearcher.search_batch`` returns per-query neighbor
ids, distances, stop reasons, trace lengths, and simulated elapsed
times identical to running ``ChunkSearcher.search`` one query at a time
— at any worker count, and with or without ground-truth match counting.
"""

import dataclasses

import numpy as np
import pytest

from repro.chunking.bag import BagClusterer, estimate_mpi
from repro.chunking.random_chunker import RandomChunker
from repro.chunking.round_robin import RoundRobinChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.batch_search import BatchChunkSearcher, BatchSearchResult
from repro.core.chunk_index import build_chunk_index
from repro.core.ground_truth import exact_knn
from repro.core.search import RANK_BY_LOWER_BOUND, ChunkSearcher
from repro.core.stop_rules import MaxChunks, TimeBudget
from repro.simio.cache import LruPageCache
from repro.simio.calibration import PAPER_2005_COST_MODEL


def make_index(collection, chunker):
    result = chunker.form_chunks(collection)
    return build_chunk_index(result.retained, result.chunk_set)


def make_queries(n, dims, seed=97):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dims)) * 4.0


CHUNKER_FACTORIES = {
    "srtree": lambda collection: SRTreeChunker(leaf_capacity=7),
    "bag": lambda collection: BagClusterer(
        mpi=estimate_mpi(collection, sample_size=50, seed=3),
        target_clusters=5,
    ),
    "random": lambda collection: RandomChunker(n_chunks=6, seed=3),
    "round-robin": lambda collection: RoundRobinChunker(n_chunks=9),
}


def assert_equivalent(batch_result, sequential_results):
    """Batch and per-query outcomes must agree on every observable.

    Ids, stop reasons, trace lengths, and simulated times are compared
    exactly; distances to within one ulp (the batch engine's expanded-form
    kernel and the sequential direct-form kernel round the same value
    differently in the last bit).
    """
    assert len(batch_result) == len(sequential_results)
    for got, want in zip(batch_result, sequential_results):
        np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
        np.testing.assert_allclose(
            [n.distance for n in got.neighbors],
            [n.distance for n in want.neighbors],
            rtol=1e-12,
        )
        assert got.stop_reason == want.stop_reason
        assert got.completed == want.completed
        assert len(got.trace) == len(want.trace)
        assert got.elapsed_s == want.elapsed_s
        assert got.trace.start_elapsed_s == want.trace.start_elapsed_s
        for got_event, want_event in zip(got.trace.events, want.trace.events):
            assert got_event.chunk_id == want_event.chunk_id
            assert got_event.rank == want_event.rank
            assert got_event.elapsed_s == want_event.elapsed_s
            assert got_event.n_descriptors == want_event.n_descriptors
            assert got_event.neighbors_found == want_event.neighbors_found
            assert got_event.true_matches == want_event.true_matches
            assert got_event.kth_distance == pytest.approx(
                want_event.kth_distance, rel=1e-12
            )


class TestEquivalence:
    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    @pytest.mark.parametrize(
        "stop_rule_factory",
        [lambda: None, lambda: MaxChunks(3), lambda: TimeBudget(0.08)],
        ids=["exact", "max-chunks", "time-budget"],
    )
    def test_batch_matches_sequential(
        self, tiny_collection, chunker_name, stop_rule_factory
    ):
        chunker = CHUNKER_FACTORIES[chunker_name](tiny_collection)
        index = make_index(tiny_collection, chunker)
        queries = make_queries(12, tiny_collection.dimensions)

        sequential = ChunkSearcher(index)
        wanted = [
            sequential.search(q, k=7, stop_rule=stop_rule_factory())
            for q in queries
        ]
        batch = BatchChunkSearcher(index).search_batch(
            queries, k=7, stop_rule=stop_rule_factory()
        )
        assert_equivalent(batch, wanted)

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_ground_truth_columns_match(self, tiny_collection, chunker_name):
        chunker = CHUNKER_FACTORIES[chunker_name](tiny_collection)
        index = make_index(tiny_collection, chunker)
        queries = make_queries(6, tiny_collection.dimensions, seed=41)
        truth = [exact_knn(tiny_collection, q, 5) for q in queries]

        sequential = ChunkSearcher(index)
        wanted = [
            sequential.search(q, k=5, true_neighbor_ids=t)
            for q, t in zip(queries, truth)
        ]
        batch = BatchChunkSearcher(index).search_batch(
            queries, k=5, true_neighbor_ids=truth
        )
        assert_equivalent(batch, wanted)
        for result in batch:
            assert all(e.true_matches >= 0 for e in result.trace.events)

    def test_partial_ground_truth_lists(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        queries = make_queries(4, tiny_collection.dimensions, seed=8)
        truth = [
            exact_knn(tiny_collection, queries[0], 5),
            None,
            exact_knn(tiny_collection, queries[2], 5),
            None,
        ]
        batch = BatchChunkSearcher(index).search_batch(
            queries, k=5, true_neighbor_ids=truth
        )
        for i, result in enumerate(batch):
            expected = -1 if truth[i] is None else 0
            assert all(
                (e.true_matches >= 0) == (expected >= 0)
                for e in result.trace.events
            )

    def test_parallel_workers_identical(self, small_synthetic):
        index = make_index(small_synthetic, SRTreeChunker(leaf_capacity=64))
        queries = make_queries(16, small_synthetic.dimensions, seed=5)
        searcher = BatchChunkSearcher(index)
        serial = searcher.search_batch(queries, k=10)
        threaded = searcher.search_batch(queries, k=10, workers=4)
        assert_equivalent(threaded, serial.results)

    def test_lower_bound_ranking_equivalent(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=6))
        queries = make_queries(8, tiny_collection.dimensions, seed=13)
        wanted = [
            ChunkSearcher(index, rank_by=RANK_BY_LOWER_BOUND).search(q, k=5)
            for q in queries
        ]
        batch = BatchChunkSearcher(index, rank_by=RANK_BY_LOWER_BOUND)
        assert_equivalent(batch.search_batch(queries, k=5), wanted)

    def test_shared_page_cache_falls_back_to_sequential_order(
        self, tiny_collection
    ):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        queries = make_queries(10, tiny_collection.dimensions, seed=29)
        # Two identical models, each with its own fresh cache: the batch
        # engine must replay the per-query loop's exact page-touch order.
        model_a = dataclasses.replace(
            PAPER_2005_COST_MODEL, cache=LruPageCache(capacity_pages=8)
        )
        model_b = dataclasses.replace(
            PAPER_2005_COST_MODEL, cache=LruPageCache(capacity_pages=8)
        )
        sequential = ChunkSearcher(index, cost_model=model_a)
        wanted = [sequential.search(q, k=5) for q in queries]
        batch = BatchChunkSearcher(index, cost_model=model_b).search_batch(
            queries, k=5, workers=4  # workers must be ignored here
        )
        assert_equivalent(batch, wanted)
        assert model_b.cache.hits == model_a.cache.hits
        assert model_b.cache.misses == model_a.cache.misses


class TestBatchRanking:
    def test_rank_rows_match_sequential(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=7))
        queries = make_queries(9, tiny_collection.dimensions, seed=3)
        sequential = ChunkSearcher(index)
        batch = BatchChunkSearcher(index)
        orders, suffix_mins = batch.rank_chunks_batch(queries)
        for i, query in enumerate(queries):
            want_order, want_suffix = sequential.rank_chunks(query)
            np.testing.assert_array_equal(orders[i], want_order)
            np.testing.assert_allclose(
                suffix_mins[i], want_suffix, rtol=0, atol=1e-9
            )


class TestBatchSearchResult:
    def test_aggregate_views(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        queries = make_queries(5, tiny_collection.dimensions, seed=19)
        batch = BatchChunkSearcher(index).search_batch(queries, k=4)
        assert len(batch) == 5
        matrix = batch.neighbor_ids_matrix()
        assert matrix.shape == (5, 4)
        for row, result in zip(matrix, batch):
            np.testing.assert_array_equal(row[row >= 0], result.neighbor_ids())
        assert batch.stop_reasons() == [r.stop_reason for r in batch.results]
        assert batch.elapsed_s().shape == (5,)
        assert batch.total_chunks_read == sum(
            r.chunks_read for r in batch.results
        )
        assert batch.mean_elapsed_s == pytest.approx(
            float(batch.elapsed_s().mean())
        )
        assert len(batch.traces()) == 5
        assert batch[0] is batch.results[0]

    def test_empty_batch(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        dims = tiny_collection.dimensions
        batch = BatchChunkSearcher(index).search_batch(
            np.empty((0, dims)), k=4
        )
        assert len(batch) == 0
        assert batch.neighbor_ids_matrix().shape == (0, 0)
        assert batch.mean_elapsed_s == 0.0

    def test_single_vector_promoted(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        query = tiny_collection.vectors[0].astype(float)
        batch = BatchChunkSearcher(index).search_batch(query, k=3)
        assert len(batch) == 1
        want = ChunkSearcher(index).search(query, k=3)
        assert_equivalent(batch, [want])


class TestValidation:
    def test_dimension_mismatch_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        with pytest.raises(ValueError, match="dims"):
            BatchChunkSearcher(index).search_batch(np.zeros((2, 7)), k=3)

    def test_nan_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        bad = np.zeros((2, 4))
        bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="NaN or infinite"):
            BatchChunkSearcher(index).search_batch(bad, k=3)

    def test_nonpositive_k_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        with pytest.raises(ValueError, match="k must be positive"):
            BatchChunkSearcher(index).search_batch(np.zeros((1, 4)), k=0)

    def test_truth_length_mismatch_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        with pytest.raises(ValueError, match="ground-truth"):
            BatchChunkSearcher(index).search_batch(
                np.zeros((3, 4)), k=2, true_neighbor_ids=[None]
            )

    def test_bad_rank_rule_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        with pytest.raises(ValueError, match="ranking"):
            BatchChunkSearcher(index, rank_by="bogus")

    def test_negative_workers_rejected(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))
        with pytest.raises(ValueError):
            BatchChunkSearcher(index).search_batch(
                np.zeros((2, 4)), k=2, workers=-2
            )
