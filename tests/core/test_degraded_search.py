"""Degraded execution: searches must survive injected and real storage
faults with the loss quantified in the trace.

Contracts under test (the ISSUE's acceptance gates):

* a zero-rate injector is *bit-identical* to running without one — ids,
  stop reasons, and every simulated timestamp — for both the sequential
  and the batch engine, over SR-tree and BAG indexes;
* at positive fault rates no query raises, every abandoned chunk appears
  in the trace as a skip, and exactness claims are withdrawn
  (``degraded`` implies ``not completed``);
* the batch engine reproduces the sequential engine's faulted outcomes
  exactly, at any worker count;
* real on-disk corruption (a flipped bit caught by the CRC layer) is
  skipped-and-continued when an injector is present, and propagates
  when not.
"""

import numpy as np
import pytest

from repro.chunking.bag import BagClusterer, estimate_mpi
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.batch_search import BatchChunkSearcher
from repro.core.chunk_index import CHUNK_FILE_NAME, ChunkIndex, build_chunk_index
from repro.core.search import ChunkSearcher
from repro.core.stop_rules import MaxChunks
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_NONE, FaultPlan
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.storage.errors import ChecksumError
from repro.storage.pages import PageGeometry

CHUNKER_FACTORIES = {
    "srtree": lambda collection: SRTreeChunker(leaf_capacity=7),
    "bag": lambda collection: BagClusterer(
        mpi=estimate_mpi(collection, sample_size=50, seed=3),
        target_clusters=5,
    ),
}


def make_index(collection, chunker_name):
    chunker = CHUNKER_FACTORIES[chunker_name](collection)
    result = chunker.form_chunks(collection)
    return build_chunk_index(result.retained, result.chunk_set)


def make_queries(n, dims, seed=97):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dims)) * 4.0


def injector(rate, seed=42, **overrides):
    plan = FaultPlan.balanced(rate, seed=seed, **overrides)
    return FaultInjector.from_cost_model(plan, PAPER_2005_COST_MODEL)


def assert_results_identical(got, want):
    """Every observable equal to the bit — no tolerances anywhere."""
    np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
    assert [n.distance for n in got.neighbors] == [
        n.distance for n in want.neighbors
    ]
    assert got.stop_reason == want.stop_reason
    assert got.completed == want.completed
    assert got.degraded == want.degraded
    assert got.elapsed_s == want.elapsed_s
    assert got.trace.start_elapsed_s == want.trace.start_elapsed_s
    assert got.trace.events == want.trace.events


def assert_results_equivalent(got, want):
    """Cross-engine comparison: exact except kth_distance (the batch
    engine's one-time float64 promotion differs in the last ulp)."""
    np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
    assert got.stop_reason == want.stop_reason
    assert got.completed == want.completed
    assert got.degraded == want.degraded
    assert got.elapsed_s == want.elapsed_s
    assert len(got.trace) == len(want.trace)
    for g, w in zip(got.trace.events, want.trace.events):
        assert (g.chunk_id, g.rank, g.elapsed_s) == (
            w.chunk_id,
            w.rank,
            w.elapsed_s,
        )
        assert (g.skipped, g.fault, g.retries) == (
            w.skipped,
            w.fault,
            w.retries,
        )
        assert g.n_descriptors == w.n_descriptors
        assert g.neighbors_found == w.neighbors_found
        assert g.kth_distance == pytest.approx(w.kth_distance, rel=1e-12)


class TestZeroRateBitIdentity:
    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_sequential_unchanged_under_null_injector(
        self, tiny_collection, chunker_name
    ):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(10, tiny_collection.dimensions)
        searcher = ChunkSearcher(index)
        for i, q in enumerate(queries):
            baseline = searcher.search(q, k=7)
            nulled = searcher.search(
                q, k=7, faults=injector(0.0), query_index=i
            )
            assert_results_identical(nulled, baseline)
            assert not nulled.degraded
            assert nulled.coverage_fraction == 1.0
            assert nulled.chunks_skipped == 0

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_batch_unchanged_under_null_injector(
        self, tiny_collection, chunker_name
    ):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(10, tiny_collection.dimensions)
        searcher = BatchChunkSearcher(index)
        baseline = searcher.search_batch(queries, k=7)
        nulled = searcher.search_batch(queries, k=7, faults=injector(0.0))
        for got, want in zip(nulled, baseline):
            assert_results_identical(got, want)


class TestFaultedExecution:
    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_no_query_raises_and_skips_are_traced(
        self, tiny_collection, chunker_name
    ):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(16, tiny_collection.dimensions, seed=23)
        searcher = ChunkSearcher(index)
        faults = injector(0.35)
        saw_skip = saw_degraded = False
        for i, q in enumerate(queries):
            result = searcher.search(q, k=7, faults=faults, query_index=i)
            skips = [e for e in result.trace.events if e.skipped]
            # Empty results are legal only in the total-loss case.
            if not result.neighbors:
                assert len(skips) == len(result.trace)
            assert result.chunks_skipped == len(skips)
            assert result.degraded == bool(skips)
            if skips:
                saw_skip = saw_degraded = True
                assert not result.completed
                assert result.coverage_fraction < 1.0
                for event in skips:
                    assert event.fault != FAULT_NONE
                # A skip scans nothing, so the running neighbor count
                # cannot change across it.
                events = result.trace.events
                for prev, event in zip(events, events[1:]):
                    if event.skipped:
                        assert event.neighbors_found == prev.neighbors_found
            else:
                assert result.coverage_fraction == 1.0
        assert saw_skip and saw_degraded  # rate 0.35 must actually bite

    def test_degraded_proof_is_not_an_exactness_claim(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(20, tiny_collection.dimensions, seed=31)
        searcher = ChunkSearcher(index)
        faults = injector(0.4)
        reasons = set()
        for i, q in enumerate(queries):
            result = searcher.search(q, k=5, faults=faults, query_index=i)
            reasons.add(result.stop_reason)
            if result.degraded:
                assert result.stop_reason in ("proof-degraded", "exhausted")
                assert not result.completed
            elif result.stop_reason == "completed":
                assert result.completed
        assert "proof-degraded" in reasons or "exhausted" in reasons

    def test_spikes_and_retries_cost_time_but_not_quality(
        self, tiny_collection
    ):
        """A spike/retry-only plan (no persistent faults, enough retries)
        returns the same neighbors as a clean run, later."""
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(8, tiny_collection.dimensions, seed=7)
        searcher = ChunkSearcher(index)
        plan = FaultPlan(seed=9, spike_rate=0.5, spike_s=0.05)
        faults = FaultInjector(plan, PAPER_2005_COST_MODEL.disk)
        slowed = 0
        for i, q in enumerate(queries):
            clean = searcher.search(q, k=5)
            spiky = searcher.search(q, k=5, faults=faults, query_index=i)
            np.testing.assert_array_equal(
                spiky.neighbor_ids(), clean.neighbor_ids()
            )
            assert not spiky.degraded
            assert spiky.elapsed_s >= clean.elapsed_s
            slowed += spiky.elapsed_s > clean.elapsed_s
        assert slowed > 0

    def test_stop_rule_still_respected_under_faults(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(6, tiny_collection.dimensions, seed=3)
        searcher = ChunkSearcher(index)
        faults = injector(0.3)
        for i, q in enumerate(queries):
            result = searcher.search(
                q, k=5, stop_rule=MaxChunks(2), faults=faults, query_index=i
            )
            assert len(result.trace) <= 2


class TestBatchEquivalenceUnderFaults:
    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    @pytest.mark.parametrize("rate", [0.1, 0.35])
    def test_batch_matches_sequential(
        self, tiny_collection, chunker_name, rate
    ):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(12, tiny_collection.dimensions, seed=11)
        faults = injector(rate)
        sequential = ChunkSearcher(index)
        wanted = [
            sequential.search(q, k=7, faults=faults, query_index=i)
            for i, q in enumerate(queries)
        ]
        batch = BatchChunkSearcher(index).search_batch(
            queries, k=7, faults=faults
        )
        assert len(batch) == len(wanted)
        for got, want in zip(batch, wanted):
            assert_results_equivalent(got, want)

    def test_workers_do_not_change_faulted_outcomes(self, small_synthetic):
        result = small_synthetic
        chunker = SRTreeChunker(leaf_capacity=64)
        formed = chunker.form_chunks(result)
        index = build_chunk_index(formed.retained, formed.chunk_set)
        queries = make_queries(16, result.dimensions, seed=5)
        faults = injector(0.25)
        searcher = BatchChunkSearcher(index)
        serial = searcher.search_batch(queries, k=10, faults=faults)
        threaded = searcher.search_batch(queries, k=10, faults=faults, workers=4)
        for got, want in zip(threaded, serial.results):
            assert_results_identical(got, want)


class TestRealCorruption:
    def make_damaged_index(self, tmp_path, tiny_collection):
        """Save an index to disk, then flip a payload bit in chunk 0."""
        index = make_index(tiny_collection, "srtree")
        directory = str(tmp_path / "index")
        index.save(directory)
        path = f"{directory}/{CHUNK_FILE_NAME}"
        page_bytes = PageGeometry().page_bytes
        offset = page_bytes * (1 + index.metas[0].page_offset) + 5
        with open(path, "r+b") as f:
            f.seek(offset)
            value = f.read(1)[0]
            f.seek(offset)
            f.write(bytes([value ^ 0x10]))
        return ChunkIndex.load(directory, tiny_collection.dimensions)

    def test_checksum_failure_skipped_with_injector(
        self, tmp_path, tiny_collection
    ):
        with self.make_damaged_index(tmp_path, tiny_collection) as loaded:
            searcher = ChunkSearcher(loaded)
            queries = make_queries(5, tiny_collection.dimensions, seed=13)
            hit_damage = False
            for i, q in enumerate(queries):
                result = searcher.search(
                    q, k=5, faults=injector(0.0), query_index=i
                )
                damaged = [
                    e
                    for e in result.trace.events
                    if e.chunk_id == 0 and e.skipped
                ]
                clean = [
                    e
                    for e in result.trace.events
                    if e.chunk_id == 0 and not e.skipped
                ]
                assert not clean  # chunk 0 can never be scanned
                if damaged:
                    hit_damage = True
                    assert result.degraded and not result.completed
                    assert damaged[0].fault == "corrupt"
            assert hit_damage

    def test_checksum_failure_raises_without_injector(
        self, tmp_path, tiny_collection
    ):
        with self.make_damaged_index(tmp_path, tiny_collection) as loaded:
            searcher = ChunkSearcher(loaded)
            queries = make_queries(5, tiny_collection.dimensions, seed=13)
            with pytest.raises(ChecksumError):
                for q in queries:
                    searcher.search(q, k=5)

    def test_batch_reads_damaged_chunk_once(self, tmp_path, tiny_collection):
        with self.make_damaged_index(tmp_path, tiny_collection) as loaded:
            queries = make_queries(6, tiny_collection.dimensions, seed=17)
            batch = BatchChunkSearcher(loaded).search_batch(
                queries, k=5, faults=injector(0.0)
            )
            for result in batch:
                assert all(
                    e.skipped for e in result.trace.events if e.chunk_id == 0
                )


class TestSearcherOwnership:
    def test_searchers_close_their_index(self, tmp_path, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        directory = str(tmp_path / "index")
        index.save(directory)
        loaded = ChunkIndex.load(directory, tiny_collection.dimensions)
        with ChunkSearcher(loaded) as searcher:
            searcher.search(make_queries(1, tiny_collection.dimensions)[0], k=3)
        with pytest.raises(ValueError):
            loaded.read_chunk(0)  # underlying reader is closed

    def test_batch_searcher_context_manager(self, tmp_path, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        directory = str(tmp_path / "index")
        index.save(directory)
        loaded = ChunkIndex.load(directory, tiny_collection.dimensions)
        queries = make_queries(3, tiny_collection.dimensions)
        with BatchChunkSearcher(loaded) as searcher:
            searcher.search_batch(queries, k=3)
        with pytest.raises(ValueError):
            loaded.read_chunk(0)
