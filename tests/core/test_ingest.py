"""Tests for the crash-safe streaming chunk index.

The crash-matrix class is the acceptance gate: a simulated kill at
*every* WAL/segment/rename boundary of a mixed workload must recover to
a directory that passes the deep checker, and — after resubmitting the
unacknowledged batches, exactly as a client driver would — end in a
state whose searches are bit-identical to the uncrashed run and to a
fresh batch build of the same logical contents, with pruning, routing
and the chunk cache all enabled.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.batch_search import BatchChunkSearcher
from repro.core.chunk import Chunk, ChunkSet
from repro.core.chunk_index import build_chunk_index
from repro.core.dataset import DescriptorCollection
from repro.core.ingest import (
    MANIFEST_NAME,
    StreamingChunkIndex,
    verify_streaming_index,
)
from repro.core.routing import CentroidRouter
from repro.faults.crash_plan import (
    CrashAtStep,
    InjectedCrash,
    RecordingCrashPlan,
)
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.simio.chunk_cache import LruChunkCache
from repro.storage.wal import delete_op, insert_op


def _halves(collection):
    """First half -> base index; second half -> streamed arrivals."""
    half = len(collection) // 2
    base = DescriptorCollection(
        vectors=collection.vectors[:half],
        ids=collection.ids[:half],
        image_ids=np.zeros(half, dtype=np.int64),
    )
    return base, collection.ids[half:], collection.vectors[half:]


def _base_index(base):
    chunking = SRTreeChunker(leaf_capacity=8).form_chunks(base)
    return build_chunk_index(chunking.retained, chunking.chunk_set)


def _scenario_actions(rest_ids, rest_vectors):
    """A mixed workload: inserts, deletes, a checkpoint, a rebuild."""
    blocks = np.array_split(np.arange(rest_ids.size), 3)

    def inserts(block):
        return [
            insert_op(int(rest_ids[i]), rest_vectors[i]) for i in block
        ]

    return [
        ("apply", inserts(blocks[0])),
        ("apply", inserts(blocks[1]) + [delete_op(int(rest_ids[blocks[0][0]]))]),
        ("checkpoint", None),
        ("apply", inserts(blocks[2]) + [delete_op(int(rest_ids[blocks[1][0]]))]),
        ("rebuild", None),
        (
            "apply",
            [
                delete_op(int(rest_ids[blocks[2][0]])),
                delete_op(int(rest_ids[blocks[0][1]])),
            ],
        ),
    ]


def _run_actions(index, actions, start=0):
    """Drive ``actions[start:]``; returns the last acknowledged seq."""
    acked = index.last_batch_seq
    for kind, payload in actions[start:]:
        if kind == "apply":
            acked = index.apply(payload)
        elif kind == "checkpoint":
            index.checkpoint(defragment=True)
        else:
            index.rebuild_base()
    return acked


@pytest.fixture()
def populated(tiny_collection, tmp_path):
    """A streaming directory that has lived through the full scenario."""
    base, rest_ids, rest_vectors = _halves(tiny_collection)
    directory = str(tmp_path / "stream")
    with StreamingChunkIndex.create(directory, _base_index(base)) as index:
        _run_actions(index, _scenario_actions(rest_ids, rest_vectors))
        n_final = index.n_descriptors
    return directory, n_final


def _search_all(index, queries, k=5):
    """Batch search with pruning, routing and the chunk cache enabled."""
    model = dataclasses.replace(
        PAPER_2005_COST_MODEL,
        chunk_cache=LruChunkCache(capacity_bytes=1 << 20),
    )
    searcher = BatchChunkSearcher(
        index,
        cost_model=model,
        prune=True,
        router=CentroidRouter.from_index(index),
    )
    return searcher.search_batch(queries, k=k)


def _assert_searches_identical(got_index, want_index, dimensions):
    """Every observable of every query equal to the bit."""
    rng = np.random.default_rng(97)
    queries = rng.standard_normal((8, dimensions)) * 4.0
    got_batch = _search_all(got_index, queries)
    want_batch = _search_all(want_index, queries)
    assert len(got_batch) == len(want_batch)
    for got, want in zip(got_batch, want_batch):
        np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
        assert [n.distance for n in got.neighbors] == [
            n.distance for n in want.neighbors
        ]
        assert got.stop_reason == want.stop_reason
        assert got.completed == want.completed
        assert got.degraded == want.degraded
        assert got.elapsed_s == want.elapsed_s
        assert got.trace.start_elapsed_s == want.trace.start_elapsed_s
        assert got.trace.events == want.trace.events


def _fresh_batch_build(streaming):
    """Rebuild the current logical contents as a from-scratch batch index."""
    maintainer = streaming.maintainer
    parts, id_parts, row_ranges = [], [], []
    cursor = 0
    for position in range(maintainer.n_chunks):
        snap = maintainer.snapshot(position)
        parts.append(snap.vectors)
        id_parts.append(np.asarray(snap.ids, dtype=np.int64))
        row_ranges.append(np.arange(cursor, cursor + len(snap.ids)))
        cursor += len(snap.ids)
    collection = DescriptorCollection(
        vectors=np.vstack(parts),
        ids=np.concatenate(id_parts),
        image_ids=np.zeros(cursor, dtype=np.int64),
    )
    chunk_set = ChunkSet(
        collection,
        [Chunk.from_rows(collection, rows) for rows in row_ranges],
    )
    return build_chunk_index(collection, chunk_set, name="fresh-batch")


class TestCreateAndOpen:
    def test_create_persists_and_reopens(self, tiny_collection, tmp_path):
        base, _, _ = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        created = StreamingChunkIndex.create(directory, _base_index(base))
        n = created.n_descriptors
        created.close()
        assert os.path.exists(os.path.join(directory, MANIFEST_NAME))
        reopened = StreamingChunkIndex.open(directory)
        assert reopened.n_descriptors == n
        assert reopened.dimensions == tiny_collection.dimensions
        assert reopened.recovery.replayed_batches == 0
        assert reopened.recovery.torn_bytes == 0
        reopened.close()

    def test_create_refuses_existing_directory(self, tiny_collection, tmp_path):
        base, _, _ = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        StreamingChunkIndex.create(directory, _base_index(base)).close()
        with pytest.raises(ValueError, match="already holds"):
            StreamingChunkIndex.create(directory, _base_index(base))

    def test_uncheckpointed_batches_replay_on_open(
        self, tiny_collection, tmp_path
    ):
        base, rest_ids, rest_vectors = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        with StreamingChunkIndex.create(directory, _base_index(base)) as index:
            index.apply([insert_op(int(rest_ids[0]), rest_vectors[0])])
            index.apply(
                [
                    insert_op(int(rest_ids[1]), rest_vectors[1]),
                    delete_op(int(rest_ids[0])),
                ]
            )
            n_final = index.n_descriptors
        with StreamingChunkIndex.open(directory) as reopened:
            assert reopened.recovery.replayed_batches == 2
            assert reopened.recovery.replayed_ops == 3
            assert reopened.n_descriptors == n_final
            assert int(rest_ids[1]) in reopened.maintainer
            assert int(rest_ids[0]) not in reopened.maintainer

    def test_checkpoint_clears_replay_and_charges_io(self, populated):
        directory, n_final = populated
        with StreamingChunkIndex.open(directory) as index:
            index.apply([delete_op(self._any_live_id(index))])
            report = index.checkpoint()
            assert report.segments_written >= 1
            assert index.io_seconds > 0.0
        with StreamingChunkIndex.open(directory) as reopened:
            assert reopened.recovery.replayed_batches == 0
            assert reopened.n_descriptors == n_final - 1

    @staticmethod
    def _any_live_id(index):
        return int(index.maintainer.snapshot(0).ids[0])

    def test_rebuild_base_advances_generation(self, populated):
        directory, n_final = populated
        with StreamingChunkIndex.open(directory) as index:
            generation = index.generation
            new_generation = index.rebuild_base()
            assert new_generation == generation + 1
            assert index.n_descriptors == n_final
        report = verify_streaming_index(directory)
        assert report["ok"], report

    def test_batch_sequence_is_contiguous(self, tiny_collection, tmp_path):
        base, rest_ids, rest_vectors = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        with StreamingChunkIndex.create(directory, _base_index(base)) as index:
            first = index.apply([insert_op(int(rest_ids[0]), rest_vectors[0])])
            index.checkpoint()
            second = index.apply([insert_op(int(rest_ids[1]), rest_vectors[1])])
            assert second == first + 1
        with StreamingChunkIndex.open(directory) as reopened:
            assert reopened.last_batch_seq == second

    def test_garbage_files_removed_on_open(self, populated):
        directory, _ = populated
        stray = os.path.join(directory, "delta-999999-00000.seg")
        with open(stray, "wb") as handle:
            handle.write(b"junk")
        with StreamingChunkIndex.open(directory) as index:
            assert index.recovery.orphans_removed >= 1
        assert not os.path.exists(stray)


class TestValidation:
    def test_bad_batches_rejected_without_poisoning(
        self, tiny_collection, tmp_path
    ):
        base, rest_ids, rest_vectors = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        with StreamingChunkIndex.create(directory, _base_index(base)) as index:
            live = int(base.ids[0])
            with pytest.raises(ValueError):
                index.apply([])
            with pytest.raises(ValueError, match="already present"):
                index.apply([insert_op(live, rest_vectors[0])])
            with pytest.raises(KeyError, match="not in index"):
                index.apply([delete_op(987654)])
            with pytest.raises(ValueError):
                index.apply(
                    [insert_op(int(rest_ids[0]), rest_vectors[0][:-1])]
                )
            # A failed validation must not have touched the WAL or the
            # in-memory state:
            seq = index.apply([insert_op(int(rest_ids[0]), rest_vectors[0])])
            assert seq == index.last_batch_seq

    def test_crash_poisons_until_reopen(self, tiny_collection, tmp_path):
        base, rest_ids, rest_vectors = _halves(tiny_collection)
        directory = str(tmp_path / "stream")
        StreamingChunkIndex.create(directory, _base_index(base)).close()
        index = StreamingChunkIndex.open(directory, crash=CrashAtStep(0))
        with pytest.raises(InjectedCrash):
            index.apply([insert_op(int(rest_ids[0]), rest_vectors[0])])
        with pytest.raises(ValueError, match="poisoned"):
            index.apply([insert_op(int(rest_ids[1]), rest_vectors[1])])
        index.close()
        with StreamingChunkIndex.open(directory) as recovered:
            assert int(rest_ids[0]) not in recovered.maintainer

    def test_closed_index_rejects_mutation(self, populated):
        directory, _ = populated
        index = StreamingChunkIndex.open(directory)
        index.close()
        with pytest.raises(ValueError, match="closed"):
            index.checkpoint()


class TestVerify:
    def test_healthy_directory_passes(self, populated):
        directory, n_final = populated
        report = verify_streaming_index(directory)
        assert report["ok"], report
        assert report["n_descriptors"] == n_final
        assert {c["name"] for c in report["checks"]} == {
            "manifest",
            "storage",
            "summaries",
            "extents",
            "wal",
            "liveness",
        }

    def test_missing_manifest_fails(self, tmp_path):
        report = verify_streaming_index(str(tmp_path / "empty"))
        assert not report["ok"]
        assert report["checks"][0]["name"] == "manifest"
        assert not report["checks"][0]["ok"]

    def test_corrupt_segment_fails_storage_check(self, populated):
        directory, _ = populated
        # The scenario ends with uncheckpointed deletes; checkpoint them
        # so the directory holds delta segments to corrupt.
        with StreamingChunkIndex.open(directory) as index:
            index.checkpoint()
        segments = sorted(
            f for f in os.listdir(directory) if f.startswith("delta-")
        )
        assert segments, "checkpoint produced no delta segments"
        target = os.path.join(directory, segments[0])
        size = os.path.getsize(target)
        with open(target, "r+b") as handle:
            handle.seek(size - 1)
            byte = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        report = verify_streaming_index(directory)
        assert not report["ok"]
        failed = [c["name"] for c in report["checks"] if not c["ok"]]
        assert "storage" in failed

    def test_tampered_centroid_fails_summaries_check(self, populated):
        import json

        directory, _ = populated
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["chunks"][0]["centroid"][0] += 0.5
        with open(manifest_path, "w") as handle:  # deliberate torn-style edit
            json.dump(manifest, handle)
        report = verify_streaming_index(directory)
        assert not report["ok"]

    def test_torn_wal_tail_reported_not_repaired(self, populated):
        directory, _ = populated
        import json

        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            wal_file = json.load(handle)["wal_file"]
        wal_path = os.path.join(directory, wal_file)
        with open(wal_path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        before = os.path.getsize(wal_path)
        report = verify_streaming_index(directory)
        assert report["ok"], report  # torn tail alone is recoverable
        assert report["torn_bytes"] == 3
        assert os.path.getsize(wal_path) == before  # read-only checker


class TestCrashMatrix:
    """Kill the writer at every protocol boundary; recover; compare."""

    def _reference(self, tiny_collection, tmp_path):
        base, rest_ids, rest_vectors = _halves(tiny_collection)
        actions = _scenario_actions(rest_ids, rest_vectors)
        ref_dir = str(tmp_path / "reference")
        StreamingChunkIndex.create(ref_dir, _base_index(base)).close()
        recording = RecordingCrashPlan()
        reference = StreamingChunkIndex.open(ref_dir, crash=recording)
        _run_actions(reference, actions)
        return base, actions, reference, recording

    def _recover_and_finish(self, directory, actions, pos, acked):
        """Reopen after a crash and drive the scenario to completion.

        Exactly what a client driver does: resubmit the batch whose ack
        never arrived — unless recovery shows it committed — then run
        the remaining actions.
        """
        recovered = StreamingChunkIndex.open(directory)
        kind, payload = actions[pos]
        if kind == "apply" and recovered.last_batch_seq == acked:
            recovered.apply(payload)  # the crashed batch was lost: resubmit
        elif kind == "checkpoint":
            recovered.checkpoint(defragment=True)
        elif kind == "rebuild":
            recovered.rebuild_base()
        _run_actions(recovered, actions, start=pos + 1)
        return recovered

    def test_every_crash_point_recovers_bit_identically(
        self, tiny_collection, tmp_path
    ):
        base, actions, reference, recording = self._reference(
            tiny_collection, tmp_path
        )
        n_sites = len(recording.sites)
        assert n_sites >= 20  # WAL x4 batches + checkpoint + rebuild sites
        want_index = reference.to_index()
        dimensions = reference.dimensions
        reference.close()

        for step in range(n_sites):
            directory = str(tmp_path / f"crash-{step:03d}")
            StreamingChunkIndex.create(directory, _base_index(base)).close()
            index = StreamingChunkIndex.open(
                directory, crash=CrashAtStep(step)
            )
            acked = index.last_batch_seq
            crash_pos = None
            try:
                for pos, (kind, payload) in enumerate(actions):
                    if kind == "apply":
                        acked = index.apply(payload)
                    elif kind == "checkpoint":
                        index.checkpoint(defragment=True)
                    else:
                        index.rebuild_base()
            except InjectedCrash:
                crash_pos = pos
            index.close()
            assert crash_pos is not None, f"step {step} never fired"

            # The directory must verify clean before anything touches it.
            report = verify_streaming_index(directory)
            assert report["ok"], (step, recording.sites[step], report)

            recovered = self._recover_and_finish(
                directory, actions, crash_pos, acked
            )
            got_index = recovered.to_index()
            _assert_searches_identical(got_index, want_index, dimensions)
            recovered.close()
            assert verify_streaming_index(directory)["ok"]

    def test_recovered_state_matches_fresh_batch_build(self, populated):
        directory, _ = populated
        with StreamingChunkIndex.open(directory) as index:
            fresh = _fresh_batch_build(index)
            _assert_searches_identical(
                index.to_index(), fresh, index.dimensions
            )
