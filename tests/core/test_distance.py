"""Unit and property tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import (
    euclidean_distances,
    nearest_index,
    pairwise_squared_distances,
    squared_distances,
    top_k_smallest,
)


def brute_force_sq(query, points):
    return np.array([np.sum((p - query) ** 2) for p in points])


class TestSquaredDistances:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal((50, 24))
        query = rng.standard_normal(24)
        np.testing.assert_allclose(
            squared_distances(query, points), brute_force_sq(query, points)
        )

    def test_zero_for_identical_point(self):
        q = np.array([1.0, 2.0, 3.0])
        d = squared_distances(q, np.array([[1.0, 2.0, 3.0]]))
        assert d[0] == 0.0

    def test_single_vector_promoted(self):
        d = squared_distances(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert d.shape == (1,)
        assert d[0] == pytest.approx(25.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            squared_distances(np.zeros(3), np.zeros((5, 4)))

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            squared_distances(np.zeros(2), np.zeros((2, 2, 2)))

    def test_float32_inputs_promoted_exactly(self):
        points = np.array([[1.5, 2.5]], dtype=np.float32)
        d = squared_distances(np.array([0.5, 0.5], dtype=np.float32), points)
        assert d.dtype == np.float64
        assert d[0] == pytest.approx(5.0)

    def test_float32_blockwise_path_bit_identical(self):
        """Above DEFAULT_BLOCK_ROWS the float32 input takes the blockwise
        promotion path; every row's reduction is independent of the
        blocking, so the result must be bit-identical to promoting the
        whole matrix up front."""
        from repro.core.distance import DEFAULT_BLOCK_ROWS

        rng = np.random.default_rng(12)
        n = DEFAULT_BLOCK_ROWS + 1000  # spills into a second block
        points = rng.standard_normal((n, 4)).astype(np.float32)
        query = rng.standard_normal(4).astype(np.float32)
        blocked = squared_distances(query, points)
        direct = squared_distances(query, points.astype(np.float64))
        np.testing.assert_array_equal(blocked, direct)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 30), st.integers(1, 8)),
            elements=st.floats(-1e3, 1e3),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_nonnegative_and_exact(self, points):
        query = points[0]
        d = squared_distances(query, points)
        assert np.all(d >= 0)
        assert d[0] == 0.0
        np.testing.assert_allclose(d, brute_force_sq(query, points), atol=1e-6)


class TestEuclidean:
    def test_is_sqrt_of_squared(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((20, 6))
        query = rng.standard_normal(6)
        np.testing.assert_allclose(
            euclidean_distances(query, points) ** 2,
            squared_distances(query, points),
        )

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        a, b, c = rng.standard_normal((3, 10))
        ab = euclidean_distances(a, b[np.newaxis])[0]
        bc = euclidean_distances(b, c[np.newaxis])[0]
        ac = euclidean_distances(a, c[np.newaxis])[0]
        assert ac <= ab + bc + 1e-9


class TestPairwise:
    def test_matches_rowwise(self):
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((7, 5))
        points = rng.standard_normal((13, 5))
        full = pairwise_squared_distances(queries, points)
        assert full.shape == (7, 13)
        for i, q in enumerate(queries):
            np.testing.assert_allclose(full[i], squared_distances(q, points))

    def test_blocking_does_not_change_result(self):
        rng = np.random.default_rng(4)
        queries = rng.standard_normal((3, 4))
        points = rng.standard_normal((25, 4))
        np.testing.assert_allclose(
            pairwise_squared_distances(queries, points, block_rows=7),
            pairwise_squared_distances(queries, points, block_rows=1000),
        )

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_squared_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    @pytest.mark.parametrize("block_rows", [0, -1])
    def test_nonpositive_block_rows_rejected(self, block_rows):
        with pytest.raises(ValueError, match="block_rows must be positive"):
            pairwise_squared_distances(
                np.zeros((2, 3)), np.zeros((4, 3)), block_rows=block_rows
            )

    def test_supplied_norms_bit_identical(self):
        """Precomputed |p|^2 terms (the v2 index's stored norms) must give
        the same matrix, bit for bit, as recomputing them in the kernel —
        the property that lets stored norms feed chunk ranking."""
        rng = np.random.default_rng(13)
        queries = rng.standard_normal((6, 8))
        points = rng.standard_normal((21, 8)).astype(np.float32)
        promoted = points.astype(np.float64)
        norms = np.einsum("pd,pd->p", promoted, promoted)
        with_norms = pairwise_squared_distances(
            queries, points, block_rows=7, points_sq_norms=norms
        )
        without = pairwise_squared_distances(queries, points, block_rows=7)
        np.testing.assert_array_equal(with_norms, without)

    def test_wrong_norms_length_rejected(self):
        with pytest.raises(ValueError, match="point norms"):
            pairwise_squared_distances(
                np.zeros((2, 3)), np.zeros((4, 3)), points_sq_norms=np.zeros(3)
            )

    def test_expanded_form_agrees_with_direct_form(self):
        """The |q|^2 - 2 q.p + |p|^2 kernel must agree with the direct
        (q - p)^2 sum to 1e-9 relative, over magnitudes spanning the
        descriptor range and including coincident rows."""
        rng = np.random.default_rng(6)
        for scale in (1e-3, 1.0, 1e3):
            queries = rng.standard_normal((11, 24)) * scale
            points = rng.standard_normal((40, 24)) * scale
            points[7] = queries[3]  # exercise the clamp at zero
            expanded = pairwise_squared_distances(queries, points)
            direct = np.vstack(
                [squared_distances(q, points) for q in queries]
            )
            # 1e-9 agreement relative to the problem magnitude: the
            # coincident row makes the direct form exactly 0.0 while
            # cancellation leaves the expanded form a few ulps of |q|^2
            # above it, so a pure rtol check would be vacuous there.
            atol = 1e-9 * float(direct.max())
            np.testing.assert_allclose(expanded, direct, rtol=1e-9, atol=atol)
            assert np.all(expanded >= 0.0)

    def test_coincident_rows_clamped_nonnegative(self):
        rng = np.random.default_rng(7)
        points = rng.standard_normal((5, 16)) * 1e3
        d = pairwise_squared_distances(points, points)
        assert np.all(d >= 0.0)
        assert np.all(np.diag(d) <= 1e-6)


class TestTopK:
    def test_sorted_ascending(self):
        values = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        idx = top_k_smallest(values, 3)
        assert list(idx) == [1, 3, 2]

    def test_k_zero_empty(self):
        assert top_k_smallest(np.array([1.0]), 0).size == 0

    def test_k_exceeds_length(self):
        values = np.array([3.0, 1.0, 2.0])
        assert list(top_k_smallest(values, 10)) == [1, 2, 0]

    def test_ties_broken_by_index(self):
        values = np.array([1.0, 0.5, 0.5, 0.5, 2.0])
        idx = top_k_smallest(values, 2)
        assert list(idx) == [1, 2]

    @given(
        hnp.arrays(
            np.float64, st.integers(1, 60), elements=st.floats(-100, 100)
        ),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_full_sort(self, values, k):
        idx = top_k_smallest(values, k)
        expected = sorted(range(len(values)), key=lambda i: (values[i], i))[:k]
        assert list(idx) == expected


class TestNearestIndex:
    def test_finds_nearest(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.1, 0.0]])
        assert nearest_index(np.array([0.0, 0.05]), points) == 0

    def test_tie_lowest_index(self):
        points = np.array([[1.0, 0.0], [-1.0, 0.0]])
        assert nearest_index(np.array([0.0, 0.0]), points) == 0
