"""Tests for the quality/cost metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    completion_stats,
    curves_from_traces,
    percentile,
    percentiles,
    precision_at_k,
    robustness_stats,
)
from repro.core.trace import SearchTrace, TraceEvent


def make_trace(start, steps):
    """steps: list of (elapsed, matches)."""
    t = SearchTrace(start_elapsed_s=start)
    for rank, (elapsed, matches) in enumerate(steps, start=1):
        t.append(
            TraceEvent(
                chunk_id=rank - 1,
                rank=rank,
                elapsed_s=elapsed,
                n_descriptors=4,
                neighbors_found=matches,
                kth_distance=1.0,
                true_matches=matches,
            )
        )
    return t


class TestPrecision:
    def test_full_match(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 9, 8], [1, 2, 3]) == pytest.approx(1 / 3)

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [])

    def test_equals_recall_for_fixed_size(self):
        """Paper: with fixed result size, precision == recall."""
        result, truth = [1, 2, 9], [1, 2, 3]
        precision = precision_at_k(result, truth)
        recall = len(set(result) & set(truth)) / len(truth)
        assert precision == recall


class TestCurves:
    def test_averaging_over_traces(self):
        t1 = make_trace(0.1, [(0.2, 1), (0.3, 2)])
        t2 = make_trace(0.1, [(0.4, 2), (0.5, 2)])
        curves = curves_from_traces([t1, t2], k=2)
        assert curves.n_queries == 2
        # N=0: both pay start cost.
        assert curves.elapsed_s[0] == pytest.approx(0.1)
        assert curves.chunks_read[0] == 0.0
        # N=1: t1 after chunk 1 (0.2), t2 after chunk 1 (0.4).
        assert curves.elapsed_s[1] == pytest.approx(0.3)
        assert curves.chunks_read[1] == pytest.approx(1.0)
        # N=2: t1 after chunk 2 (0.3), t2 after chunk 1 (0.4).
        assert curves.elapsed_s[2] == pytest.approx(0.35)
        assert curves.chunks_read[2] == pytest.approx(1.5)

    def test_incomplete_trace_rejected(self):
        t = make_trace(0.0, [(0.1, 1)])
        with pytest.raises(ValueError, match="never found"):
            curves_from_traces([t], k=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            curves_from_traces([], k=2)

    def test_as_rows(self):
        t = make_trace(0.0, [(0.1, 2)])
        rows = curves_from_traces([t], k=2).as_rows()
        assert rows[0]["neighbors"] == 0
        assert rows[2]["chunks_read"] == 1.0

    def test_curves_monotone(self):
        t = make_trace(0.0, [(0.1, 0), (0.2, 1), (0.3, 3)])
        curves = curves_from_traces([t], k=3)
        assert np.all(np.diff(curves.chunks_read) >= 0)
        assert np.all(np.diff(curves.elapsed_s) >= 0)


class TestCompletionStats:
    def test_means(self):
        t1 = make_trace(0.0, [(0.2, 1)])
        t2 = make_trace(0.0, [(0.1, 1), (0.4, 1), (0.6, 1)])
        stats = completion_stats([t1, t2])
        assert stats.mean_elapsed_s == pytest.approx(0.4)
        assert stats.mean_chunks_read == pytest.approx(2.0)
        assert stats.mean_descriptors_scanned == pytest.approx(8.0)
        assert stats.n_queries == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            completion_stats([])


def make_degraded_trace(start, steps):
    """steps: list of (elapsed, skipped) over 4-descriptor chunks."""
    t = SearchTrace(start_elapsed_s=start)
    for rank, (elapsed, skipped) in enumerate(steps, start=1):
        t.append(
            TraceEvent(
                chunk_id=rank - 1,
                rank=rank,
                elapsed_s=elapsed,
                n_descriptors=4,
                neighbors_found=0 if skipped else 2,
                kth_distance=1.0,
                skipped=skipped,
                fault="corrupt" if skipped else "none",
                retries=2 if skipped else 0,
            )
        )
    return t


class TestRobustnessStats:
    def test_aggregates(self):
        clean = make_degraded_trace(0.0, [(0.1, False), (0.2, False)])
        lossy = make_degraded_trace(0.0, [(0.1, False), (0.3, True)])
        stats = robustness_stats([clean, lossy])
        assert stats.degraded_fraction == pytest.approx(0.5)
        assert stats.mean_coverage == pytest.approx((1.0 + 0.5) / 2)
        assert stats.mean_chunks_skipped == pytest.approx(0.5)
        assert stats.mean_retries == pytest.approx(1.0)
        assert stats.mean_elapsed_s == pytest.approx(0.25)
        assert stats.n_queries == 2

    def test_fault_free_run_is_clean(self):
        traces = [make_trace(0.0, [(0.2, 1)])]
        stats = robustness_stats(traces)
        assert stats.degraded_fraction == 0.0
        assert stats.mean_coverage == 1.0
        assert stats.mean_chunks_skipped == 0.0
        assert stats.mean_retries == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robustness_stats([])


class TestPercentiles:
    def test_nearest_rank_semantics(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentiles(values, (0.25, 0.5, 0.75, 1.0)) == [
            10.0, 20.0, 30.0, 40.0,
        ]
        # ceil(0.26 * 4) = 2 -> second order statistic.
        assert percentiles(values, (0.26,)) == [20.0]

    def test_batch_matches_single(self):
        rng = np.random.default_rng(7)
        values = rng.random(31).tolist()
        qs = (0.5, 0.9, 0.95, 0.99)
        assert percentiles(values, qs) == [percentile(values, q) for q in qs]

    def test_order_is_independent_of_input(self):
        values = [3.0, 1.0, 2.0]
        assert percentiles(values, (0.99, 0.01)) == [3.0, 1.0]
        assert percentiles(list(reversed(values)), (0.99, 0.01)) == [3.0, 1.0]

    def test_single_value(self):
        assert percentiles([42.0], (0.5, 0.99)) == [42.0, 42.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentiles([], (0.5,))
        with pytest.raises(ValueError, match="q must lie"):
            percentiles([1.0], (0.0,))
        with pytest.raises(ValueError, match="q must lie"):
            percentiles([1.0], (1.1,))
