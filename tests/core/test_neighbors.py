"""Unit and property tests for the bounded neighbor set."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import Neighbor, NeighborSet, merge_neighbor_lists


class TestNeighbor:
    def test_ordering_by_distance_then_id(self):
        assert Neighbor(1.0, 5) < Neighbor(2.0, 1)
        assert Neighbor(1.0, 1) < Neighbor(1.0, 2)

    def test_accessors(self):
        n = Neighbor(1.5, 7)
        assert n.distance == 1.5
        assert n.descriptor_id == 7


class TestNeighborSet:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            NeighborSet(0)

    def test_kth_distance_infinite_until_full(self):
        ns = NeighborSet(2)
        assert math.isinf(ns.kth_distance)
        ns.offer(1.0, 1)
        assert math.isinf(ns.kth_distance)
        ns.offer(2.0, 2)
        assert ns.kth_distance == 2.0

    def test_eviction_keeps_best(self):
        ns = NeighborSet(2)
        for d, i in [(5.0, 1), (3.0, 2), (4.0, 3), (1.0, 4)]:
            ns.offer(d, i)
        assert [n.descriptor_id for n in ns.sorted()] == [4, 2]

    def test_rejects_worse_when_full(self):
        ns = NeighborSet(1)
        assert ns.offer(1.0, 1)
        assert not ns.offer(2.0, 2)

    def test_tie_admits_lower_id(self):
        ns = NeighborSet(1)
        ns.offer(1.0, 10)
        assert ns.offer(1.0, 3)
        assert ns.sorted()[0].descriptor_id == 3

    def test_tie_rejects_higher_id(self):
        ns = NeighborSet(1)
        ns.offer(1.0, 3)
        assert not ns.offer(1.0, 10)

    def test_bulk_update_matches_individual(self):
        rng = np.random.default_rng(0)
        distances = rng.random(100)
        ids = rng.permutation(100)
        bulk = NeighborSet(10)
        bulk.update(distances, ids)
        single = NeighborSet(10)
        for d, i in zip(distances, ids):
            single.offer(d, i)
        assert bulk.sorted() == single.sorted()

    def test_update_returns_admitted_count(self):
        ns = NeighborSet(3)
        admitted = ns.update(np.array([1.0, 2.0, 3.0, 4.0]), np.arange(4))
        assert admitted == 3

    def test_update_shape_mismatch(self):
        with pytest.raises(ValueError):
            NeighborSet(2).update(np.ones(3), np.arange(2))

    def test_merge(self):
        a = NeighborSet(3)
        a.update(np.array([1.0, 5.0]), np.array([1, 2]))
        b = NeighborSet(3)
        b.update(np.array([2.0, 0.5]), np.array([3, 4]))
        a.merge(b)
        assert [n.descriptor_id for n in a.sorted()] == [4, 1, 3]

    def test_contains_and_id_set(self):
        ns = NeighborSet(2)
        ns.offer(1.0, 42)
        assert 42 in ns
        assert 7 not in ns
        assert ns.id_set() == {42}

    def test_ids_sorted_best_first(self):
        ns = NeighborSet(3)
        ns.update(np.array([3.0, 1.0, 2.0]), np.array([30, 10, 20]))
        assert list(ns.ids()) == [10, 20, 30]

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False), st.integers(0, 10_000)
            ),
            min_size=1,
            max_size=80,
        ),
        st.integers(1, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_equals_sorted_prefix(self, pairs, k):
        """The set must always equal the k best of everything offered,
        under (distance, id) ordering with duplicate ids allowed."""
        ns = NeighborSet(k)
        for d, i in pairs:
            ns.offer(d, i)
        expected = sorted(set(pairs), key=lambda p: (p[0], p[1]))
        # Duplicate (d, id) pairs are admitted at most once per offer; the
        # set itself may hold duplicates if offered twice, so compare
        # against the multiset of offers.
        expected_multiset = sorted(pairs, key=lambda p: (p[0], p[1]))[:k]
        got = [(n.distance, n.descriptor_id) for n in ns.sorted()]
        assert got == expected_multiset

    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=60),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_kth_distance_is_max_retained(self, distances, k):
        ns = NeighborSet(k)
        ns.update(np.asarray(distances), np.arange(len(distances)))
        if len(ns) < k:
            assert math.isinf(ns.kth_distance)
        else:
            assert ns.kth_distance == max(n.distance for n in ns.sorted())


class TestMergeNeighborLists:
    def test_disjoint_merge_equals_global_top_k(self):
        rng = np.random.default_rng(3)
        distances = rng.random(30)
        all_neighbors = [Neighbor(d, i) for i, d in enumerate(distances)]
        parts = [all_neighbors[:10], all_neighbors[10:18], all_neighbors[18:]]
        merged = merge_neighbor_lists(parts, k=7)
        assert merged == sorted(all_neighbors)[:7]

    def test_duplicate_ids_keep_the_best(self):
        parts = [
            [Neighbor(0.5, 1), Neighbor(0.9, 2)],
            [Neighbor(0.3, 1), Neighbor(0.7, 3)],
        ]
        merged = merge_neighbor_lists(parts, k=10)
        assert merged == [Neighbor(0.3, 1), Neighbor(0.7, 3), Neighbor(0.9, 2)]

    def test_empty_inputs_merge_to_empty(self):
        assert merge_neighbor_lists([], k=5) == []
        assert merge_neighbor_lists([[], []], k=5) == []

    def test_short_lists_return_what_exists(self):
        merged = merge_neighbor_lists([[Neighbor(1.0, 4)]], k=10)
        assert merged == [Neighbor(1.0, 4)]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be positive"):
            merge_neighbor_lists([], k=0)

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), max_size=30),
        st.integers(1, 5),
        st.integers(1, 10),
    )
    @settings(deadline=None, max_examples=60)
    def test_property_matches_neighbor_set(self, distances, n_parts, k):
        """Merging disjoint lists (ids unique, as partitions guarantee)
        must agree with offering every element to one bounded
        NeighborSet — the single-node accumulation order."""
        neighbors = [Neighbor(d, i) for i, d in enumerate(distances)]
        lists = [neighbors[part::n_parts] for part in range(n_parts)]
        merged = merge_neighbor_lists(lists, k)
        reference = NeighborSet(k)
        for part in lists:
            for neighbor in part:
                reference.offer(neighbor.distance, neighbor.descriptor_id)
        assert merged == reference.sorted()
