"""Pruned scan path: pruning, routing, and the chunk cache must be pure
optimizations — never semantic changes.

The property under test (the ISSUE's acceptance gate): with pruning on,
every observable of every query — neighbor ids and distances, stop
reasons, completed/degraded flags, and every simulated trace timestamp —
is *bit-identical* to the unpruned scan, on every chunker in the zoo,
for both the sequential and the batch engine, with and without fault
injection.  The only thing pruning may change is ``chunks_pruned`` (and
how fast the host finishes).

The router must likewise reproduce the flat ranking's scan order and
completion-proof values exactly, and the simulated chunk cache must
change timing only through its documented warm-hit charge — identically
for both engines.
"""

import dataclasses

import numpy as np
import pytest

from repro.chunking.bag import BagClusterer, estimate_mpi
from repro.chunking.random_chunker import RandomChunker
from repro.chunking.round_robin import RoundRobinChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.batch_search import BatchChunkSearcher
from repro.core.chunk_index import build_chunk_index
from repro.core.routing import CentroidRouter
from repro.core.search import RANK_BY_LOWER_BOUND, ChunkSearcher
from repro.core.stop_rules import MaxChunks, TimeBudget
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.simio.chunk_cache import LruChunkCache

CHUNKER_FACTORIES = {
    "srtree": lambda collection: SRTreeChunker(leaf_capacity=7),
    "bag": lambda collection: BagClusterer(
        mpi=estimate_mpi(collection, sample_size=50, seed=3),
        target_clusters=5,
    ),
    "random": lambda collection: RandomChunker(n_chunks=6, seed=3),
    "round-robin": lambda collection: RoundRobinChunker(n_chunks=9),
}


def make_index(collection, chunker_name):
    chunker = CHUNKER_FACTORIES[chunker_name](collection)
    result = chunker.form_chunks(collection)
    return build_chunk_index(result.retained, result.chunk_set)


def make_queries(n, dims, seed=97):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dims)) * 4.0


def injector(rate, seed=42):
    plan = FaultPlan.balanced(rate, seed=seed)
    return FaultInjector.from_cost_model(plan, PAPER_2005_COST_MODEL)


def assert_results_identical(got, want):
    """Every observable equal to the bit — no tolerances anywhere."""
    np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
    assert [n.distance for n in got.neighbors] == [
        n.distance for n in want.neighbors
    ]
    assert got.stop_reason == want.stop_reason
    assert got.completed == want.completed
    assert got.degraded == want.degraded
    assert got.elapsed_s == want.elapsed_s
    assert got.trace.start_elapsed_s == want.trace.start_elapsed_s
    assert got.trace.events == want.trace.events


def assert_batches_identical(got, want):
    assert len(got) == len(want)
    for got_result, want_result in zip(got, want):
        assert_results_identical(got_result, want_result)


def assert_results_equivalent(got, want):
    """Cross-engine comparator: everything exact except kernel distances,
    which the batch engine's expanded-form kernel and the sequential
    direct-form kernel round differently in the last bit."""
    np.testing.assert_array_equal(got.neighbor_ids(), want.neighbor_ids())
    np.testing.assert_allclose(
        [n.distance for n in got.neighbors],
        [n.distance for n in want.neighbors],
        rtol=1e-12,
    )
    assert got.stop_reason == want.stop_reason
    assert got.completed == want.completed
    assert got.degraded == want.degraded
    assert got.chunks_pruned == want.chunks_pruned
    assert got.elapsed_s == want.elapsed_s
    assert got.trace.start_elapsed_s == want.trace.start_elapsed_s
    assert len(got.trace) == len(want.trace)
    for got_event, want_event in zip(got.trace.events, want.trace.events):
        assert got_event.chunk_id == want_event.chunk_id
        assert got_event.rank == want_event.rank
        assert got_event.elapsed_s == want_event.elapsed_s
        assert got_event.n_descriptors == want_event.n_descriptors
        assert got_event.neighbors_found == want_event.neighbors_found
        assert got_event.true_matches == want_event.true_matches
        assert got_event.skipped == want_event.skipped
        assert got_event.fault == want_event.fault
        assert got_event.retries == want_event.retries
        assert got_event.kth_distance == pytest.approx(
            want_event.kth_distance, rel=1e-12
        )


class TestPrunedEquivalence:
    """Pruned scan == unpruned scan, to the bit, everywhere."""

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_sequential_engine(self, tiny_collection, chunker_name):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(12, tiny_collection.dimensions)
        plain = ChunkSearcher(index, prune=False)
        pruned = ChunkSearcher(index, prune=True)
        for query in queries:
            want = plain.search(query, k=7)
            got = pruned.search(query, k=7)
            assert_results_identical(got, want)
            assert want.chunks_pruned == 0

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_batch_engine(self, tiny_collection, chunker_name):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(12, tiny_collection.dimensions)
        want = BatchChunkSearcher(index, prune=False).search_batch(queries, k=7)
        got = BatchChunkSearcher(index, prune=True).search_batch(queries, k=7)
        assert_batches_identical(got, want)
        assert want.total_chunks_pruned == 0

    def test_pruning_actually_fires(self, tiny_collection):
        """The guard that this suite tests something: on a clustered
        collection the triangle-inequality bound must exclude chunks."""
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(12, tiny_collection.dimensions)
        batch = BatchChunkSearcher(index).search_batch(queries, k=7)
        assert batch.total_chunks_pruned > 0
        sequential = ChunkSearcher(index)
        assert (
            sum(sequential.search(q, k=7).chunks_pruned for q in queries) > 0
        )

    @pytest.mark.parametrize("chunker_name", ["srtree", "bag"])
    @pytest.mark.parametrize("rate", [0.0, 0.25])
    def test_sequential_engine_under_faults(
        self, tiny_collection, chunker_name, rate
    ):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(8, tiny_collection.dimensions)
        plain = ChunkSearcher(index, prune=False)
        pruned = ChunkSearcher(index, prune=True)
        for i, query in enumerate(queries):
            want = plain.search(query, k=5, faults=injector(rate), query_index=i)
            got = pruned.search(query, k=5, faults=injector(rate), query_index=i)
            assert_results_identical(got, want)

    @pytest.mark.parametrize("chunker_name", ["srtree", "bag"])
    @pytest.mark.parametrize("rate", [0.0, 0.25])
    def test_batch_engine_under_faults(self, tiny_collection, chunker_name, rate):
        index = make_index(tiny_collection, chunker_name)
        queries = make_queries(8, tiny_collection.dimensions)
        want = BatchChunkSearcher(index, prune=False).search_batch(
            queries, k=5, faults=injector(rate)
        )
        got = BatchChunkSearcher(index, prune=True).search_batch(
            queries, k=5, faults=injector(rate)
        )
        assert_batches_identical(got, want)

    @pytest.mark.parametrize(
        "stop_rule_factory",
        [lambda: MaxChunks(3), lambda: TimeBudget(0.08)],
        ids=["max-chunks", "time-budget"],
    )
    def test_early_stop_rules(self, tiny_collection, stop_rule_factory):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(10, tiny_collection.dimensions)
        want = BatchChunkSearcher(index, prune=False).search_batch(
            queries, k=5, stop_rule=stop_rule_factory()
        )
        got = BatchChunkSearcher(index, prune=True).search_batch(
            queries, k=5, stop_rule=stop_rule_factory()
        )
        assert_batches_identical(got, want)

    def test_parallel_workers_identical(self, small_synthetic):
        # Wider chunks for the session-scale collection.
        result = SRTreeChunker(leaf_capacity=64).form_chunks(small_synthetic)
        index = build_chunk_index(result.retained, result.chunk_set)
        queries = make_queries(16, small_synthetic.dimensions, seed=5)
        searcher = BatchChunkSearcher(index)
        serial = searcher.search_batch(queries, k=10)
        threaded = searcher.search_batch(queries, k=10, workers=4)
        assert_batches_identical(threaded, serial)
        assert serial.total_chunks_pruned == threaded.total_chunks_pruned


class TestRouterEquivalence:
    """Routed ranking == flat ranking, to the bit, for both engines."""

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    @pytest.mark.parametrize("rank_by", ["centroid", RANK_BY_LOWER_BOUND])
    def test_sequential_engine(self, tiny_collection, chunker_name, rank_by):
        index = make_index(tiny_collection, chunker_name)
        router = CentroidRouter.from_index(index)
        queries = make_queries(10, tiny_collection.dimensions)
        flat = ChunkSearcher(index, rank_by=rank_by)
        routed = ChunkSearcher(index, rank_by=rank_by, router=router)
        for query in queries:
            assert_results_identical(
                routed.search(query, k=6), flat.search(query, k=6)
            )

    @pytest.mark.parametrize("chunker_name", sorted(CHUNKER_FACTORIES))
    def test_batch_engine(self, tiny_collection, chunker_name):
        """Batch + router must equal batch flat bit for bit: both rank by
        the direct-form kernel, so routing changes nothing observable."""
        index = make_index(tiny_collection, chunker_name)
        router = CentroidRouter.from_index(index)
        queries = make_queries(10, tiny_collection.dimensions)
        want = BatchChunkSearcher(index).search_batch(queries, k=6)
        got = BatchChunkSearcher(index, router=router).search_batch(
            queries, k=6
        )
        assert_batches_identical(got, want)

    def test_batch_engine_matches_sequential(self, tiny_collection):
        """Cross-engine: batch + router vs sequential + router agree on
        every observable (distances to within one ulp)."""
        index = make_index(tiny_collection, "srtree")
        router = CentroidRouter.from_index(index)
        queries = make_queries(10, tiny_collection.dimensions)
        sequential = ChunkSearcher(index, router=router)
        want = [sequential.search(q, k=6) for q in queries]
        got = BatchChunkSearcher(index, router=router).search_batch(
            queries, k=6
        )
        assert len(got) == len(want)
        for got_result, want_result in zip(got, want):
            assert_results_equivalent(got_result, want_result)

    def test_router_under_faults(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        router = CentroidRouter.from_index(index)
        queries = make_queries(8, tiny_collection.dimensions)
        want = BatchChunkSearcher(index).search_batch(
            queries, k=5, faults=injector(0.25)
        )
        got = BatchChunkSearcher(index, router=router).search_batch(
            queries, k=5, faults=injector(0.25)
        )
        assert_batches_identical(got, want)

    def test_router_with_early_stop(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        router = CentroidRouter.from_index(index)
        queries = make_queries(8, tiny_collection.dimensions)
        want = BatchChunkSearcher(index).search_batch(
            queries, k=5, stop_rule=MaxChunks(2)
        )
        got = BatchChunkSearcher(index, router=router).search_batch(
            queries, k=5, stop_rule=MaxChunks(2)
        )
        assert_batches_identical(got, want)


class TestChunkCacheEquivalence:
    """The simulated chunk cache: engine-independent, deterministic."""

    def _model(self, capacity_bytes=1 << 20):
        return dataclasses.replace(
            PAPER_2005_COST_MODEL,
            chunk_cache=LruChunkCache(capacity_bytes=capacity_bytes),
        )

    def test_batch_matches_sequential(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(10, tiny_collection.dimensions, seed=29)
        model_a = self._model()
        model_b = self._model()
        sequential = ChunkSearcher(index, cost_model=model_a)
        want = [sequential.search(q, k=5) for q in queries]
        batch = BatchChunkSearcher(index, cost_model=model_b).search_batch(
            queries, k=5, workers=4  # workers must be ignored here
        )
        assert len(batch) == len(want)
        for got_result, want_result in zip(batch, want):
            assert_results_equivalent(got_result, want_result)
        assert model_b.chunk_cache.hits == model_a.chunk_cache.hits
        assert model_b.chunk_cache.misses == model_a.chunk_cache.misses
        assert model_b.chunk_cache.hits > 0

    def test_batch_matches_sequential_under_faults(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(8, tiny_collection.dimensions, seed=29)
        sequential = ChunkSearcher(index, cost_model=self._model())
        want = [
            sequential.search(q, k=5, faults=injector(0.25), query_index=i)
            for i, q in enumerate(queries)
        ]
        batch = BatchChunkSearcher(
            index, cost_model=self._model()
        ).search_batch(queries, k=5, faults=injector(0.25))
        assert len(batch) == len(want)
        for got_result, want_result in zip(batch, want):
            assert_results_equivalent(got_result, want_result)

    def test_warm_batch_is_simulated_faster(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(10, tiny_collection.dimensions, seed=29)
        cold_model = self._model()
        searcher = BatchChunkSearcher(index, cost_model=cold_model)
        cold = searcher.search_batch(queries, k=5)
        warm = searcher.search_batch(queries, k=5)
        # Identical results, cheaper timing: warm hits are charged at
        # memory-copy cost instead of the disk's random-read price.
        for cold_result, warm_result in zip(cold, warm):
            np.testing.assert_array_equal(
                cold_result.neighbor_ids(), warm_result.neighbor_ids()
            )
        assert warm.mean_elapsed_s < cold.mean_elapsed_s

    def test_determinism_across_fresh_caches(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        queries = make_queries(10, tiny_collection.dimensions, seed=29)
        run_a = BatchChunkSearcher(index, cost_model=self._model()).search_batch(
            queries, k=5
        )
        run_b = BatchChunkSearcher(index, cost_model=self._model()).search_batch(
            queries, k=5
        )
        assert_batches_identical(run_a, run_b)

    def test_cache_composes_with_router_and_pruning(self, tiny_collection):
        index = make_index(tiny_collection, "srtree")
        router = CentroidRouter.from_index(index)
        queries = make_queries(10, tiny_collection.dimensions, seed=29)
        want = BatchChunkSearcher(
            index, cost_model=self._model(), prune=False
        ).search_batch(queries, k=5)
        got = BatchChunkSearcher(
            index, cost_model=self._model(), prune=True, router=router
        ).search_batch(queries, k=5)
        assert_batches_identical(got, want)
