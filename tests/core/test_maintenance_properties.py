"""Property test: the pruning bound stays sound under maintenance.

The searcher skips a chunk when ``max(0, d(q, centroid) - radius)``
exceeds the current k-th distance; that is only correct if the bound
never exceeds the true distance from the query to *any* live member of
the chunk.  Batch-built indexes get this by construction; this test
checks that no seeded sequence of inserts, deletes, splits and merges
can break it — the summaries are recomputed exactly on every mutation,
so the bound must hold (to float64 rounding) at every intermediate state.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.dataset import DescriptorCollection
from repro.core.distance import squared_distances
from repro.core.maintenance import ChunkIndexMaintainer


def _assert_bound_sound(maintainer, queries):
    """max(0, d(q, centroid) - radius) <= d(q, member), for everything."""
    index = maintainer.to_index()
    for query in queries:
        for meta in index.metas:
            ids, vectors = index.store.read_chunk(meta.chunk_id)
            assert ids.size == meta.n_descriptors
            true = np.sqrt(squared_distances(query, vectors))
            bound = meta.min_distance(query)
            # The centroid is the float64 mean of the live members and
            # the radius their exact maximum distance, so the triangle
            # inequality makes the bound sound up to float64 rounding
            # of the two square roots.
            assert bound <= true.min() + 1e-9, (
                f"chunk {meta.chunk_id}: bound {bound} exceeds "
                f"true distance {true.min()}"
            )


@st.composite
def workloads(draw):
    """A seeded mixed maintenance workload over a small collection."""
    seed = draw(st.integers(0, 2**16))
    n_base = draw(st.integers(8, 40))
    dims = draw(st.integers(1, 6))
    leaf = draw(st.integers(2, 8))
    n_ops = draw(st.integers(5, 60))
    spread = draw(st.floats(0.05, 8.0))
    return seed, n_base, dims, leaf, n_ops, spread


class TestPruningBoundSoundness:
    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_bound_never_exceeds_true_distance(self, workload):
        seed, n_base, dims, leaf, n_ops, spread = workload
        rng = np.random.default_rng(seed)
        base = DescriptorCollection.from_vectors(
            (rng.standard_normal((n_base, dims)) * spread).astype(np.float32)
        )
        chunking = SRTreeChunker(leaf_capacity=leaf).form_chunks(base)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        maintainer = ChunkIndexMaintainer(index)
        queries = rng.standard_normal((3, dims)) * spread * 2

        live = {int(i) for i in chunking.retained.ids}
        next_id = 10_000
        splits_before = maintainer.stats.splits
        merges_before = maintainer.stats.merges
        for _ in range(n_ops):
            # Bias toward inserts so splits occur; deletes drive merges.
            if live and rng.random() < 0.35 and len(live) > 1:
                victim = int(rng.choice(sorted(live)))
                maintainer.delete(victim)
                live.discard(victim)
            else:
                # Clustered inserts (near an existing member) force
                # splits; uniform ones exercise relocation.
                if live and rng.random() < 0.7:
                    anchor = maintainer.to_index()
                    ids, vectors = anchor.store.read_chunk(0)
                    vector = vectors[0] + rng.standard_normal(dims).astype(
                        np.float32
                    ) * 0.01
                else:
                    vector = (rng.standard_normal(dims) * spread).astype(
                        np.float32
                    )
                maintainer.insert(next_id, vector)
                live.add(next_id)
                next_id += 1
            _assert_bound_sound(maintainer, queries)
        # The workload is tuned so the structural operations actually
        # fire across the example set; this example alone may not split.
        assert maintainer.stats.splits >= splits_before
        assert maintainer.stats.merges >= merges_before

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_bound_sound_after_forced_splits_and_merges(self, seed):
        """Deterministically drive both split and merge paths."""
        rng = np.random.default_rng(seed)
        base = DescriptorCollection.from_vectors(
            (rng.standard_normal((24, 4)) * 2.0).astype(np.float32)
        )
        chunking = SRTreeChunker(leaf_capacity=6).form_chunks(base)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        maintainer = ChunkIndexMaintainer(index)
        queries = rng.standard_normal((4, 4)) * 4.0

        target = maintainer.target_chunk_size
        n_burst = int(maintainer.split_factor * target) + 2
        anchor = base.vectors[0]
        for i in range(n_burst):
            maintainer.insert(20_000 + i, anchor + 0.001 * (i + 1))
        assert maintainer.stats.splits >= 1
        _assert_bound_sound(maintainer, queries)

        for i in range(n_burst):
            maintainer.delete(20_000 + i)
            _assert_bound_sound(maintainer, queries)
        for descriptor_id in sorted(int(i) for i in chunking.retained.ids)[:-2]:
            maintainer.delete(descriptor_id)
            _assert_bound_sound(maintainer, queries)
        assert maintainer.stats.merges >= 1
