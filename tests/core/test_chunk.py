"""Tests for the chunk model and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.chunk import Chunk, ChunkMeta, ChunkSet, summarize_members
from repro.core.dataset import DescriptorCollection


class TestSummarize:
    def test_centroid_and_radius(self):
        vectors = np.array([[0.0, 0.0], [2.0, 0.0]])
        centroid, radius = summarize_members(vectors)
        np.testing.assert_allclose(centroid, [1.0, 0.0])
        assert radius == pytest.approx(1.0)

    def test_single_point_zero_radius(self):
        centroid, radius = summarize_members(np.array([[3.0, 4.0]]))
        assert radius == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_members(np.empty((0, 3)))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 40), st.integers(1, 6)),
            elements=st.floats(-50, 50),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_radius_covers_all_members(self, vectors):
        centroid, radius = summarize_members(vectors)
        dists = np.linalg.norm(vectors - centroid, axis=1)
        assert np.all(dists <= radius + 1e-9)
        # Minimality: the radius is attained by some member.
        assert np.isclose(dists.max(), radius)


class TestChunk:
    def test_from_rows(self, tiny_collection):
        chunk = Chunk.from_rows(tiny_collection, [0, 1, 2])
        assert len(chunk) == 3
        assert chunk.contains_all_members(tiny_collection)

    def test_empty_rows_raise(self, tiny_collection):
        with pytest.raises(ValueError):
            Chunk.from_rows(tiny_collection, [])

    def test_member_ids(self, tiny_collection):
        chunk = Chunk.from_rows(tiny_collection, [5, 7])
        assert list(chunk.member_ids(tiny_collection)) == [5, 7]


class TestChunkMeta:
    def make(self, **kwargs):
        defaults = dict(
            chunk_id=0,
            centroid=np.zeros(3),
            radius=1.0,
            n_descriptors=10,
            page_offset=0,
            page_count=1,
        )
        defaults.update(kwargs)
        return ChunkMeta(**defaults)

    def test_min_distance_outside(self):
        meta = self.make(centroid=np.array([0.0, 0.0, 0.0]), radius=1.0)
        assert meta.min_distance(np.array([3.0, 0.0, 0.0])) == pytest.approx(2.0)

    def test_min_distance_inside_is_zero(self):
        meta = self.make(radius=5.0)
        assert meta.min_distance(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_centroid_distance(self):
        meta = self.make()
        assert meta.centroid_distance(np.array([0.0, 4.0, 3.0])) == pytest.approx(5.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            self.make(n_descriptors=0)
        with pytest.raises(ValueError):
            self.make(radius=-1.0)
        with pytest.raises(ValueError):
            self.make(page_count=0)

    def test_min_distance_lower_bounds_members(self, tiny_collection):
        """The chunk lower bound never exceeds the true nearest member
        distance — the property the completion proof relies on."""
        chunk = Chunk.from_rows(tiny_collection, list(range(20)))
        meta = self.make(
            centroid=chunk.centroid, radius=chunk.radius, n_descriptors=20
        )
        rng = np.random.default_rng(3)
        for _ in range(20):
            query = rng.standard_normal(4) * 5
            true_min = np.min(
                np.linalg.norm(
                    tiny_collection.vectors[:20].astype(float) - query, axis=1
                )
            )
            assert meta.min_distance(query) <= true_min + 1e-9


class TestChunkSet:
    def make_set(self, collection, groups):
        return ChunkSet(
            collection, [Chunk.from_rows(collection, g) for g in groups]
        )

    def test_partition_detection(self, tiny_collection):
        n = len(tiny_collection)
        full = self.make_set(
            tiny_collection, [range(0, n // 2), range(n // 2, n)]
        )
        assert full.is_partition()
        partial = self.make_set(tiny_collection, [range(0, n // 2)])
        assert not partial.is_partition()

    def test_sizes_and_average(self, tiny_collection):
        cs = self.make_set(tiny_collection, [range(0, 10), range(10, 60)])
        assert list(cs.sizes()) == [10, 50]
        assert cs.average_size() == 30.0
        assert cs.total_descriptors() == 60

    def test_largest_sizes(self, tiny_collection):
        cs = self.make_set(
            tiny_collection, [range(0, 5), range(5, 45), range(45, 60)]
        )
        assert list(cs.largest_sizes(2)) == [40, 15]

    def test_validate_catches_duplicates(self, tiny_collection):
        cs = self.make_set(tiny_collection, [range(0, 10), range(5, 60)])
        with pytest.raises(ValueError, match="more than one chunk"):
            cs.validate()

    def test_validate_passes_on_partition(self, tiny_collection):
        n = len(tiny_collection)
        cs = self.make_set(tiny_collection, [range(0, n)])
        cs.validate()

    def test_empty_chunk_set_raises(self, tiny_collection):
        with pytest.raises(ValueError):
            ChunkSet(tiny_collection, [])

    def test_validate_catches_bad_radius(self, tiny_collection):
        chunk = Chunk.from_rows(tiny_collection, range(len(tiny_collection)))
        chunk.radius = 0.0  # corrupt the invariant
        cs = ChunkSet(tiny_collection, [chunk])
        with pytest.raises(ValueError, match="bounding radius"):
            cs.validate()
