"""Tests for chunk-index building, access, and persistence."""

import numpy as np
import pytest

from repro.core.chunk import Chunk, ChunkSet
from repro.core.chunk_index import (
    ChunkIndex,
    InMemoryChunkStore,
    build_chunk_index,
)
from repro.storage.pages import PageGeometry
from repro.storage.records import RecordCodec


@pytest.fixture()
def simple_index(tiny_collection):
    groups = [range(0, 20), range(20, 40), range(40, 60)]
    chunk_set = ChunkSet(
        tiny_collection, [Chunk.from_rows(tiny_collection, g) for g in groups]
    )
    return build_chunk_index(tiny_collection, chunk_set, name="test-index")


class TestBuild:
    def test_counts(self, simple_index):
        assert simple_index.n_chunks == 3
        assert simple_index.n_descriptors == 60

    def test_read_chunk_contents(self, simple_index, tiny_collection):
        ids, vectors = simple_index.read_chunk(1)
        assert list(ids) == list(range(20, 40))
        np.testing.assert_array_equal(vectors, tiny_collection.vectors[20:40])

    def test_read_chunk_out_of_range(self, simple_index):
        with pytest.raises(IndexError):
            simple_index.read_chunk(3)

    def test_page_layout_matches_on_disk_writer(self, simple_index):
        """Extents assigned at build time must equal what the chunk-file
        writer would produce (the simulated I/O depends on it)."""
        geometry = PageGeometry()
        codec = RecordCodec(simple_index.dimensions)
        next_page = 0
        for meta in simple_index.metas:
            expected_pages = geometry.pages_for(
                meta.n_descriptors * codec.record_bytes
            )
            assert meta.page_offset == next_page
            assert meta.page_count == expected_pages
            next_page += expected_pages

    def test_matrix_accessors(self, simple_index):
        assert simple_index.centroid_matrix().shape == (3, 4)
        assert simple_index.radius_vector().shape == (3,)
        assert list(simple_index.descriptor_counts()) == [20, 20, 20]
        assert simple_index.index_bytes > 0

    def test_store_size_mismatch_raises(self, simple_index):
        with pytest.raises(ValueError, match="store has"):
            ChunkIndex(
                metas=simple_index.metas,
                store=InMemoryChunkStore([(np.arange(1), np.ones((1, 4)))]),
                dimensions=4,
            )

    def test_empty_metas_raise(self):
        with pytest.raises(ValueError):
            ChunkIndex(metas=[], store=InMemoryChunkStore([]), dimensions=4)


class TestPersistence:
    def test_save_load_roundtrip(self, simple_index, tmp_path):
        directory = str(tmp_path / "idx")
        simple_index.save(directory)
        loaded = ChunkIndex.load(directory, dimensions=4)
        assert loaded.n_chunks == simple_index.n_chunks
        for chunk_id in range(simple_index.n_chunks):
            ids_a, vec_a = simple_index.read_chunk(chunk_id)
            ids_b, vec_b = loaded.read_chunk(chunk_id)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(vec_a, vec_b)
            meta_a = simple_index.metas[chunk_id]
            meta_b = loaded.metas[chunk_id]
            np.testing.assert_allclose(meta_a.centroid, meta_b.centroid)
            assert meta_a.radius == pytest.approx(meta_b.radius)
        loaded.close()

    def test_loaded_index_searchable(self, simple_index, tiny_collection, tmp_path):
        from repro.core.ground_truth import exact_knn
        from repro.core.search import ChunkSearcher

        directory = str(tmp_path / "idx2")
        simple_index.save(directory)
        loaded = ChunkIndex.load(directory, dimensions=4)
        query = tiny_collection.vectors[7].astype(float)
        result = ChunkSearcher(loaded).search(query, k=5)
        assert result.completed
        np.testing.assert_array_equal(
            result.neighbor_ids(), exact_knn(tiny_collection, query, 5)
        )
        loaded.close()
