"""Tests for stop rules."""

import math

import pytest

from repro.core.stop_rules import (
    DeadlineBudget,
    ExactCompletion,
    FirstOf,
    MaxChunks,
    SearchProgress,
    TimeBudget,
)


def progress(**kwargs):
    defaults = dict(
        chunks_read=1,
        elapsed_s=0.1,
        neighbors_found=10,
        kth_distance=1.0,
        remaining_lower_bound=0.5,
    )
    defaults.update(kwargs)
    return SearchProgress(**defaults)


class TestSearchProgress:
    def test_completion_proven(self):
        assert progress(remaining_lower_bound=2.0, kth_distance=1.0).completion_proven
        assert not progress(
            remaining_lower_bound=0.5, kth_distance=1.0
        ).completion_proven

    def test_infinite_kth_never_proven(self):
        p = progress(kth_distance=math.inf, remaining_lower_bound=10.0)
        assert not p.completion_proven

    def test_no_remaining_chunks_proves(self):
        p = progress(remaining_lower_bound=math.inf, kth_distance=5.0)
        assert p.completion_proven


class TestExactCompletion:
    def test_never_stops(self):
        rule = ExactCompletion()
        assert rule.check(progress(chunks_read=10_000, elapsed_s=1e6)) is None


class TestMaxChunks:
    def test_fires_at_threshold(self):
        rule = MaxChunks(3)
        assert rule.check(progress(chunks_read=2)) is None
        assert rule.check(progress(chunks_read=3)) == "max-chunks(3)"
        assert rule.check(progress(chunks_read=4)) is not None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MaxChunks(0)


class TestTimeBudget:
    def test_fires_when_passed(self):
        rule = TimeBudget(1.0)
        assert rule.check(progress(elapsed_s=0.99)) is None
        assert rule.check(progress(elapsed_s=1.0)) is not None

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            TimeBudget(0.0)
        with pytest.raises(ValueError):
            TimeBudget(float("nan"))


class TestDeadlineBudget:
    def test_fires_when_remaining_budget_crossed(self):
        rule = DeadlineBudget(0.2)
        assert rule.check(progress(elapsed_s=0.19)) is None
        assert rule.check(progress(elapsed_s=0.2)) == "deadline(0.2s)"
        assert rule.check(progress(elapsed_s=1.0)) is not None

    def test_reason_is_distinct_from_time_budget(self):
        deadline = DeadlineBudget(0.1).check(progress(elapsed_s=0.5))
        budget = TimeBudget(0.1).check(progress(elapsed_s=0.5))
        assert deadline is not None and budget is not None
        assert deadline.startswith("deadline(")
        assert budget.startswith("time-budget(")
        assert deadline != budget

    def test_epsilon_budget_fires_after_first_chunk(self):
        # The expired-in-queue path: any real chunk completion crosses it.
        rule = DeadlineBudget(1e-9)
        assert rule.check(progress(chunks_read=1, elapsed_s=1e-6)) is not None

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0.0)
        with pytest.raises(ValueError):
            DeadlineBudget(-1.0)
        with pytest.raises(ValueError):
            DeadlineBudget(float("nan"))

    def test_composes_with_max_chunks(self):
        rule = FirstOf([DeadlineBudget(0.5), MaxChunks(3)])
        assert rule.check(progress(chunks_read=3, elapsed_s=0.1)) == "max-chunks(3)"
        assert rule.check(progress(chunks_read=1, elapsed_s=0.6)) == (
            "deadline(0.5s)"
        )

    def test_repr(self):
        assert "0.25" in repr(DeadlineBudget(0.25))


class TestFirstOf:
    def test_first_firing_rule_wins(self):
        rule = FirstOf([MaxChunks(5), TimeBudget(0.05)])
        assert rule.check(progress(chunks_read=1, elapsed_s=0.1)) == (
            "time-budget(0.05s)"
        )

    def test_none_when_no_rule_fires(self):
        rule = FirstOf([MaxChunks(5), TimeBudget(10.0)])
        assert rule.check(progress(chunks_read=1, elapsed_s=0.1)) is None

    def test_and_operator_composes(self):
        rule = MaxChunks(2) & TimeBudget(5.0)
        assert isinstance(rule, FirstOf)
        assert rule.check(progress(chunks_read=2)) == "max-chunks(2)"

    def test_nested_flattening(self):
        rule = FirstOf([FirstOf([MaxChunks(1)]), TimeBudget(1.0)])
        assert len(rule.rules) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FirstOf([])
