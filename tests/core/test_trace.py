"""Tests for search traces and their derived curves."""

import math

import numpy as np
import pytest

from repro.core.trace import SearchTrace, TraceEvent


def event(rank, elapsed, matches, chunk_id=None, n_desc=10):
    return TraceEvent(
        chunk_id=chunk_id if chunk_id is not None else rank - 1,
        rank=rank,
        elapsed_s=elapsed,
        n_descriptors=n_desc,
        neighbors_found=min(30, matches + 5),
        kth_distance=1.0,
        true_matches=matches,
    )


@pytest.fixture()
def trace():
    t = SearchTrace(start_elapsed_s=0.05)
    t.append(event(1, 0.10, 2))
    t.append(event(2, 0.20, 2))
    t.append(event(3, 0.35, 5))
    return t


class TestAppend:
    def test_rank_order_enforced(self, trace):
        with pytest.raises(ValueError):
            trace.append(event(5, 0.5, 6))

    def test_first_event_rank_one(self):
        t = SearchTrace(start_elapsed_s=0.0)
        with pytest.raises(ValueError):
            t.append(event(2, 0.1, 1))


class TestCurves:
    def test_chunks_to_find(self, trace):
        assert trace.chunks_to_find(0) == 0.0
        assert trace.chunks_to_find(1) == 1.0
        assert trace.chunks_to_find(2) == 1.0
        assert trace.chunks_to_find(3) == 3.0
        assert trace.chunks_to_find(5) == 3.0
        assert math.isinf(trace.chunks_to_find(6))

    def test_time_to_find(self, trace):
        assert trace.time_to_find(0) == 0.05
        assert trace.time_to_find(2) == 0.10
        assert trace.time_to_find(5) == 0.35
        assert math.isinf(trace.time_to_find(10))

    def test_no_ground_truth_raises(self):
        t = SearchTrace(start_elapsed_s=0.0)
        t.append(
            TraceEvent(
                chunk_id=0, rank=1, elapsed_s=0.1, n_descriptors=5,
                neighbors_found=5, kth_distance=1.0,
            )
        )
        with pytest.raises(ValueError, match="ground-truth"):
            t.chunks_to_find(1)
        with pytest.raises(ValueError, match="ground-truth"):
            t.time_to_find(1)

    def test_matches_and_elapsed_curves(self, trace):
        np.testing.assert_array_equal(trace.matches_curve(), [2, 2, 5])
        np.testing.assert_allclose(trace.elapsed_curve(), [0.10, 0.20, 0.35])


class TestSummaries:
    def test_final_elapsed(self, trace):
        assert trace.final_elapsed_s == 0.35

    def test_final_elapsed_empty_is_start(self):
        t = SearchTrace(start_elapsed_s=0.07)
        assert t.final_elapsed_s == 0.07

    def test_chunks_read_and_scanned(self, trace):
        assert trace.chunks_read == 3
        assert trace.descriptors_scanned == 30

    def test_clean_trace_has_full_coverage(self, trace):
        assert trace.chunks_skipped == 0
        assert trace.descriptors_skipped == 0
        assert trace.coverage_fraction == 1.0
        assert trace.total_retries == 0


def skipped_event(rank, elapsed, n_desc=10, fault="corrupt", retries=2):
    return TraceEvent(
        chunk_id=rank - 1,
        rank=rank,
        elapsed_s=elapsed,
        n_descriptors=n_desc,
        neighbors_found=0,
        kth_distance=math.inf,
        skipped=True,
        fault=fault,
        retries=retries,
    )


class TestDegradedSummaries:
    @pytest.fixture()
    def degraded_trace(self):
        t = SearchTrace(start_elapsed_s=0.05)
        t.append(event(1, 0.10, 2))
        t.append(skipped_event(2, 0.25, n_desc=30))
        t.append(event(3, 0.35, 5))
        t.append(skipped_event(4, 0.50, n_desc=10, fault="read-error",
                               retries=1))
        return t

    def test_skip_counters(self, degraded_trace):
        assert degraded_trace.chunks_read == 2
        assert degraded_trace.chunks_skipped == 2
        assert degraded_trace.descriptors_scanned == 20
        assert degraded_trace.descriptors_skipped == 40
        assert degraded_trace.total_retries == 3

    def test_coverage_fraction(self, degraded_trace):
        assert degraded_trace.coverage_fraction == pytest.approx(20 / 60)

    def test_empty_trace_coverage_is_one(self):
        assert SearchTrace(start_elapsed_s=0.0).coverage_fraction == 1.0

    def test_default_events_are_unskipped(self, trace):
        for e in trace.events:
            assert not e.skipped
            assert e.fault == "none"
            assert e.retries == 0
