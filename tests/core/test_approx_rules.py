"""Tests for the AC-NN / PAC-NN / VA-BND approximation rules."""

import math

import numpy as np
import pytest

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.approx_rules import (
    DistanceDistribution,
    EpsilonApproximation,
    PacApproximation,
    estimate_epsilon,
)
from repro.core.chunk_index import build_chunk_index
from repro.core.ground_truth import exact_knn
from repro.core.search import ChunkSearcher
from repro.core.stop_rules import SearchProgress


def progress(**kwargs):
    defaults = dict(
        chunks_read=5,
        elapsed_s=0.1,
        neighbors_found=10,
        kth_distance=1.0,
        remaining_lower_bound=0.95,
    )
    defaults.update(kwargs)
    return SearchProgress(**defaults)


class TestEpsilonRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonApproximation(-0.1, 10)
        with pytest.raises(ValueError):
            EpsilonApproximation(0.1, 0)

    def test_zero_epsilon_equals_exact_proof(self):
        rule = EpsilonApproximation(0.0, 10)
        # Exact proof: bound must exceed kth; 0.95 < 1.0 -> continue.
        assert rule.check(progress()) is None
        assert rule.check(progress(remaining_lower_bound=1.01)) is not None

    def test_relaxation_stops_earlier(self):
        rule = EpsilonApproximation(0.2, 10)
        # 0.95 > 1.0 / 1.2 -> the relaxed proof fires.
        assert rule.check(progress()) == "epsilon-approx(0.2)"

    def test_waits_for_k_neighbors(self):
        rule = EpsilonApproximation(0.5, 10)
        assert rule.check(progress(neighbors_found=5)) is None

    def test_infinite_kth_never_fires(self):
        rule = EpsilonApproximation(0.5, 10)
        assert rule.check(progress(kth_distance=math.inf)) is None

    def test_guarantee_holds_end_to_end(self, tiny_collection):
        """The returned k-th distance is within (1+eps) of the truth."""
        chunking = SRTreeChunker(leaf_capacity=6).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        searcher = ChunkSearcher(index)
        epsilon = 0.5
        rng = np.random.default_rng(4)
        for _ in range(10):
            query = rng.standard_normal(4) * 4
            result = searcher.search(
                query, k=5, stop_rule=EpsilonApproximation(epsilon, 5)
            )
            got_kth = result.neighbors[-1].distance
            truth = exact_knn(tiny_collection, query, 5)
            rows = tiny_collection.rows_for_ids(truth)
            true_kth = np.linalg.norm(
                tiny_collection.vectors[rows[-1]].astype(float) - query
            )
            assert got_kth <= (1 + epsilon) * true_kth + 1e-9


class TestDistanceDistribution:
    def test_cdf_monotone_and_bounded(self, tiny_collection):
        dist = DistanceDistribution.sample(tiny_collection, seed=1)
        xs = np.linspace(0, 30, 50)
        values = [dist.cdf(x) for x in xs]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(1e9) == 1.0

    def test_probability_any_within(self):
        dist = DistanceDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        # cdf(2.5) = 0.5; for 2 descriptors: 1 - 0.25 = 0.75.
        assert dist.probability_any_within(2.5, 2) == pytest.approx(0.75)
        assert dist.probability_any_within(2.5, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceDistribution(np.array([]))
        with pytest.raises(ValueError):
            DistanceDistribution(np.array([-1.0]))
        with pytest.raises(ValueError):
            DistanceDistribution(np.array([np.inf]))


class TestPacRule:
    def test_for_index_constructor(self, tiny_collection):
        chunking = SRTreeChunker(leaf_capacity=10).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        rule = PacApproximation.for_index(index, tiny_collection)
        assert rule.total_descriptors == len(tiny_collection)

    def test_stops_before_exact(self, tiny_collection):
        """A permissive PAC rule reads no more chunks than exact search."""
        chunking = SRTreeChunker(leaf_capacity=6).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        searcher = ChunkSearcher(index)
        rule = PacApproximation.for_index(
            index, tiny_collection, epsilon=0.5, delta=0.3
        )
        query = tiny_collection.vectors[0].astype(float)
        exact = searcher.search(query, k=5)
        pac = searcher.search(query, k=5, stop_rule=rule)
        assert pac.chunks_read <= exact.chunks_read

    def test_validation(self, tiny_collection):
        dist = DistanceDistribution(np.array([1.0]))
        with pytest.raises(ValueError):
            PacApproximation(-1, 0.1, dist, 10, 5.0)
        with pytest.raises(ValueError):
            PacApproximation(0.1, 1.5, dist, 10, 5.0)
        with pytest.raises(ValueError):
            PacApproximation(0.1, 0.1, dist, 0, 5.0)


class TestEstimateEpsilon:
    def test_non_negative_and_reasonable(self, small_synthetic):
        epsilon = estimate_epsilon(small_synthetic, k=10, seed=2)
        assert 0.0 <= epsilon < 50.0

    def test_too_small_collection_rejected(self, tiny_collection):
        with pytest.raises(ValueError):
            estimate_epsilon(tiny_collection, k=30)

    def test_deterministic(self, small_synthetic):
        a = estimate_epsilon(small_synthetic, k=5, seed=3)
        b = estimate_epsilon(small_synthetic, k=5, seed=3)
        assert a == b
