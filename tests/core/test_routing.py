"""Unit tests for the coarse centroid router.

The router's contract is *bit-exactness*: the lazily expanded stream must
emit chunks in precisely the flat ``lexsort((ids, key))`` order, and its
certified remaining lower bound must equal the flat ranking's suffix
minimum float for float — while actually expanding fewer groups than a
full scan touches centroids.
"""

import math

import numpy as np
import pytest

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.routing import CentroidRouter
from repro.core.search import (
    RANK_BY_CENTROID,
    RANK_BY_LOWER_BOUND,
    ChunkSearcher,
)

RANK_MODES = [RANK_BY_CENTROID, RANK_BY_LOWER_BOUND]


def make_index(collection, leaf_capacity=7):
    result = SRTreeChunker(leaf_capacity=leaf_capacity).form_chunks(collection)
    return build_chunk_index(result.retained, result.chunk_set)


def make_queries(n, dims, seed=97):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dims)) * 4.0


def drain(stream):
    """Exhaust a stream, returning (chunk ids, lower bounds) in order."""
    ids, lbs = [], []
    while True:
        emitted = stream.next()
        if emitted is None:
            return ids, lbs
        ids.append(emitted[0])
        lbs.append(emitted[1])


class TestBuild:
    def test_group_count_defaults_to_sqrt(self, tiny_collection):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        assert router.n_groups == math.ceil(math.sqrt(index.n_chunks))
        assert router.n_chunks == index.n_chunks

    def test_groups_partition_the_chunks(self, tiny_collection):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        all_ids = np.concatenate(router.member_ids)
        assert sorted(all_ids.tolist()) == list(range(index.n_chunks))

    def test_build_is_deterministic(self, tiny_collection):
        index = make_index(tiny_collection)
        a = CentroidRouter.from_index(index, seed=11)
        b = CentroidRouter.from_index(index, seed=11)
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.key_slack, b.key_slack)
        np.testing.assert_array_equal(a.lb_slack, b.lb_slack)
        for ids_a, ids_b in zip(a.member_ids, b.member_ids):
            np.testing.assert_array_equal(ids_a, ids_b)

    def test_single_group_degenerate_case(self, tiny_collection):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index, n_groups=1)
        assert router.n_groups == 1
        query = make_queries(1, tiny_collection.dimensions)[0]
        order, _ = ChunkSearcher(index).rank_chunks(query)
        ids, _ = drain(router.stream(query))
        assert ids == order.tolist()

    def test_group_count_capped_at_chunks(self, tiny_collection):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index, n_groups=10 * index.n_chunks)
        assert router.n_groups == index.n_chunks

    def test_rejects_bad_centroid_shape(self):
        with pytest.raises(ValueError, match="centroid matrix"):
            CentroidRouter.build(np.zeros((0, 4)), np.zeros(0))
        with pytest.raises(ValueError, match="centroid matrix"):
            CentroidRouter.build(np.zeros(4), np.zeros(1))

    def test_rejects_mismatched_radii(self):
        with pytest.raises(ValueError, match="radii"):
            CentroidRouter.build(np.zeros((3, 4)), np.zeros(2))

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError, match="iteration"):
            CentroidRouter.build(np.zeros((3, 4)), np.zeros(3), iterations=0)

    def test_rejects_unknown_rank_rule(self, tiny_collection):
        router = CentroidRouter.from_index(make_index(tiny_collection))
        with pytest.raises(ValueError, match="unknown ranking rule"):
            router.stream(np.zeros(tiny_collection.dimensions), rank_by="nope")


class TestStreamExactness:
    @pytest.mark.parametrize("rank_by", RANK_MODES)
    def test_emission_order_matches_flat_ranking(self, tiny_collection, rank_by):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        searcher = ChunkSearcher(index, rank_by=rank_by)
        for query in make_queries(20, tiny_collection.dimensions):
            order, _ = searcher.rank_chunks(query)
            ids, _ = drain(router.stream(query, rank_by=rank_by))
            assert ids == order.tolist()

    @pytest.mark.parametrize("rank_by", RANK_MODES)
    def test_lower_bounds_bit_equal_to_flat(self, tiny_collection, rank_by):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        searcher = ChunkSearcher(index, rank_by=rank_by)
        for query in make_queries(20, tiny_collection.dimensions):
            _, _, ranked_bounds = searcher._rank_arrays(query)
            _, lbs = drain(router.stream(query, rank_by=rank_by))
            # == on purpose: the stream computes the very same floats.
            assert lbs == ranked_bounds.tolist()

    @pytest.mark.parametrize("rank_by", RANK_MODES)
    def test_certified_lb_equals_suffix_min(self, tiny_collection, rank_by):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        searcher = ChunkSearcher(index, rank_by=rank_by)
        for query in make_queries(10, tiny_collection.dimensions):
            _, suffix_min = searcher.rank_chunks(query)
            stream = router.stream(query, rank_by=rank_by)
            # Before any emission the certificate is the global minimum;
            # after emitting rank r it is suffix_min[r + 1]; inf at the end.
            assert stream.exact_remaining_lb() == suffix_min[0]
            for rank in range(index.n_chunks):
                assert stream.next() is not None
                want = (
                    suffix_min[rank + 1]
                    if rank + 1 < index.n_chunks
                    else math.inf
                )
                assert stream.exact_remaining_lb() == want
            assert stream.exhausted
            assert stream.next() is None

    def test_lazy_expansion_saves_work(self, small_synthetic):
        """The point of the router: a far-from-everything query that stops
        early must not expand every group."""
        result = SRTreeChunker(leaf_capacity=16).form_chunks(small_synthetic)
        index = build_chunk_index(result.retained, result.chunk_set)
        router = CentroidRouter.from_index(index)
        assert router.n_groups >= 4
        query = make_queries(1, small_synthetic.dimensions, seed=1)[0]
        stream = router.stream(query)
        for _ in range(3):  # probe only the head of the ranking
            stream.next()
        assert stream.groups_expanded < router.n_groups

    def test_streams_are_independent(self, tiny_collection):
        index = make_index(tiny_collection)
        router = CentroidRouter.from_index(index)
        queries = make_queries(2, tiny_collection.dimensions)
        stream_a = router.stream(queries[0])
        stream_b = router.stream(queries[1])
        a_first = stream_a.next()
        ids_b, _ = drain(stream_b)
        order_b, _ = ChunkSearcher(index).rank_chunks(queries[1])
        assert ids_b == order_b.tolist()
        order_a, _ = ChunkSearcher(index).rank_chunks(queries[0])
        assert a_first[0] == order_a[0]
