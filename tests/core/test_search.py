"""Tests for the ranked chunk-scan search algorithm.

The load-bearing property: a run-to-completion search must return exactly
the sequential scan's k-NN, for any chunking of the collection.
"""

import numpy as np
import pytest

from repro.chunking.random_chunker import RandomChunker
from repro.chunking.round_robin import RoundRobinChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.ground_truth import exact_knn
from repro.core.search import (
    RANK_BY_CENTROID,
    RANK_BY_LOWER_BOUND,
    ChunkSearcher,
)
from repro.core.stop_rules import MaxChunks, TimeBudget


def make_index(collection, chunker):
    result = chunker.form_chunks(collection)
    return build_chunk_index(result.retained, result.chunk_set)


@pytest.fixture()
def sr_index(tiny_collection):
    return make_index(tiny_collection, SRTreeChunker(leaf_capacity=8))


class TestExactness:
    @pytest.mark.parametrize(
        "chunker",
        [
            SRTreeChunker(leaf_capacity=7),
            RoundRobinChunker(n_chunks=9),
            RandomChunker(n_chunks=5, seed=3),
        ],
        ids=["srtree", "round-robin", "random"],
    )
    def test_completion_matches_sequential_scan(self, tiny_collection, chunker):
        index = make_index(tiny_collection, chunker)
        searcher = ChunkSearcher(index)
        rng = np.random.default_rng(17)
        for _ in range(15):
            query = rng.standard_normal(4) * 4.0
            result = searcher.search(query, k=7)
            assert result.completed
            np.testing.assert_array_equal(
                result.neighbor_ids(), exact_knn(tiny_collection, query, 7)
            )

    def test_lower_bound_ranking_also_exact(self, tiny_collection):
        index = make_index(tiny_collection, SRTreeChunker(leaf_capacity=6))
        searcher = ChunkSearcher(index, rank_by=RANK_BY_LOWER_BOUND)
        query = tiny_collection.vectors[3].astype(float)
        result = searcher.search(query, k=5)
        np.testing.assert_array_equal(
            result.neighbor_ids(), exact_knn(tiny_collection, query, 5)
        )

    def test_synthetic_collection_exactness(self, small_synthetic):
        index = make_index(small_synthetic, SRTreeChunker(leaf_capacity=64))
        searcher = ChunkSearcher(index)
        rng = np.random.default_rng(23)
        rows = rng.choice(len(small_synthetic), size=5, replace=False)
        for row in rows:
            query = small_synthetic.vectors[row].astype(float)
            result = searcher.search(query, k=10)
            np.testing.assert_array_equal(
                result.neighbor_ids(), exact_knn(small_synthetic, query, 10)
            )


class TestRanking:
    def test_rank_orders_by_centroid_distance(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[0].astype(float)
        order, suffix_min = searcher.rank_chunks(query)
        centroids = sr_index.centroid_matrix()
        dists = np.linalg.norm(centroids[order] - query, axis=1)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_suffix_min_is_min_of_remaining(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[30].astype(float)
        order, suffix_min = searcher.rank_chunks(query)
        bounds = np.array(
            [sr_index.metas[c].min_distance(query) for c in order]
        )
        for r in range(len(order)):
            assert suffix_min[r] == pytest.approx(bounds[r:].min())

    def test_unknown_rank_rule_rejected(self, sr_index):
        with pytest.raises(ValueError):
            ChunkSearcher(sr_index, rank_by="bogus")

    def test_dimension_mismatch_rejected(self, sr_index):
        searcher = ChunkSearcher(sr_index)
        with pytest.raises(ValueError, match="dims"):
            searcher.search(np.zeros(7), k=3)


class TestStopRules:
    def test_max_chunks_limits_reads(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[0].astype(float)
        result = searcher.search(query, k=30, stop_rule=MaxChunks(2))
        assert result.chunks_read <= 2
        assert result.stop_reason in ("max-chunks(2)", "completed")

    def test_time_budget_stops_early(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[0].astype(float)
        full = searcher.search(query, k=30)
        tiny_budget = full.trace.start_elapsed_s + 1e-9
        limited = searcher.search(query, k=30, stop_rule=TimeBudget(tiny_budget))
        assert limited.chunks_read <= full.chunks_read
        assert limited.chunks_read == 1  # the first chunk crosses the budget

    def test_completion_beats_stop_rule(self, sr_index, tiny_collection):
        """If the proof fires before the rule, the result is exact."""
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[0].astype(float)
        result = searcher.search(query, k=1, stop_rule=MaxChunks(10_000))
        assert result.completed
        assert result.stop_reason == "completed"


class TestTraceRecording:
    def test_trace_has_event_per_chunk(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        query = tiny_collection.vectors[10].astype(float)
        result = searcher.search(query, k=5)
        assert len(result.trace) == result.chunks_read
        ranks = [e.rank for e in result.trace.events]
        assert ranks == list(range(1, result.chunks_read + 1))

    def test_elapsed_monotone(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        result = searcher.search(tiny_collection.vectors[4].astype(float), k=5)
        times = [result.trace.start_elapsed_s] + [
            e.elapsed_s for e in result.trace.events
        ]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_true_matches_recorded_and_monotone(self, sr_index, tiny_collection):
        query = tiny_collection.vectors[12].astype(float)
        truth = exact_knn(tiny_collection, query, 5)
        searcher = ChunkSearcher(sr_index)
        result = searcher.search(query, k=5, true_neighbor_ids=truth)
        matches = [e.true_matches for e in result.trace.events]
        assert all(m >= 0 for m in matches)
        assert all(a <= b for a, b in zip(matches, matches[1:]))
        assert matches[-1] == 5  # completion finds all true neighbors

    def test_no_ground_truth_means_minus_one(self, sr_index, tiny_collection):
        searcher = ChunkSearcher(sr_index)
        result = searcher.search(tiny_collection.vectors[0].astype(float), k=5)
        assert all(e.true_matches == -1 for e in result.trace.events)


class TestQueryValidation:
    def test_nan_query_rejected(self, sr_index):
        import numpy as np
        import pytest
        from repro.core.search import ChunkSearcher

        searcher = ChunkSearcher(sr_index)
        bad = np.array([np.nan, 0.0, 0.0, 0.0])
        with pytest.raises(ValueError, match="NaN or infinite"):
            searcher.search(bad, k=3)

    def test_infinite_query_rejected(self, sr_index):
        import numpy as np
        import pytest
        from repro.core.search import ChunkSearcher

        searcher = ChunkSearcher(sr_index)
        bad = np.array([np.inf, 0.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            searcher.search(bad, k=3)

    def test_nonpositive_k_rejected(self, sr_index):
        import numpy as np
        import pytest
        from repro.core.search import ChunkSearcher

        with pytest.raises(ValueError, match="k must be positive"):
            ChunkSearcher(sr_index).search(np.zeros(4), k=0)
