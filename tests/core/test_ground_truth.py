"""Tests for the sequential-scan ground truth and its store."""

import numpy as np
import pytest

from repro.core.dataset import DescriptorCollection
from repro.core.ground_truth import GroundTruthStore, exact_knn, exact_knn_batch


class TestExactKnn:
    def test_self_query_returns_self_first(self, tiny_collection):
        query = tiny_collection.vectors[7].astype(float)
        ids = exact_knn(tiny_collection, query, 3)
        assert ids[0] == 7

    def test_blockwise_equals_monolithic(self, tiny_collection):
        query = tiny_collection.vectors[3].astype(float)
        a = exact_knn(tiny_collection, query, 10, block_rows=7)
        b = exact_knn(tiny_collection, query, 10, block_rows=10_000)
        np.testing.assert_array_equal(a, b)

    def test_respects_custom_ids(self):
        col = DescriptorCollection(
            vectors=np.array([[0.0, 0.0], [1.0, 0.0]], dtype=np.float32),
            ids=np.array([100, 200]),
            image_ids=np.array([0, 0]),
        )
        ids = exact_knn(col, np.array([0.9, 0.0]), 2)
        assert list(ids) == [200, 100]

    def test_k_nonpositive_raises(self, tiny_collection):
        with pytest.raises(ValueError):
            exact_knn(tiny_collection, np.zeros(4), 0)

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            exact_knn(DescriptorCollection.empty(3), np.zeros(3), 1)

    def test_ordering_by_distance(self, tiny_collection):
        query = np.zeros(4)
        ids = exact_knn(tiny_collection, query, 20)
        rows = tiny_collection.rows_for_ids(ids)
        dists = np.linalg.norm(
            tiny_collection.vectors[rows].astype(float) - query, axis=1
        )
        assert np.all(np.diff(dists) >= -1e-12)


class TestBatch:
    def test_shape(self, tiny_collection):
        queries = tiny_collection.vectors[:4].astype(float)
        out = exact_knn_batch(tiny_collection, queries, 5)
        assert out.shape == (4, 5)
        for i in range(4):
            assert out[i, 0] == i

    def test_single_query_promoted(self, tiny_collection):
        out = exact_knn_batch(tiny_collection, np.zeros(4), 2)
        assert out.shape == (1, 2)

    def test_k_too_large(self, tiny_collection):
        with pytest.raises(ValueError, match="exceeds"):
            exact_knn_batch(tiny_collection, np.zeros(4), len(tiny_collection) + 1)


class TestStore:
    def test_put_get_roundtrip(self):
        store = GroundTruthStore(k=3)
        store.put(0, [5, 6, 7])
        np.testing.assert_array_equal(store.get(0), [5, 6, 7])
        assert 0 in store
        assert 1 not in store

    def test_wrong_length_rejected(self):
        store = GroundTruthStore(k=3)
        with pytest.raises(ValueError):
            store.put(0, [1, 2])

    def test_missing_query_raises(self):
        with pytest.raises(KeyError):
            GroundTruthStore(k=2).get(0)

    def test_compute(self, tiny_collection):
        queries = tiny_collection.vectors[:3].astype(float)
        store = GroundTruthStore.compute(tiny_collection, queries, 4)
        assert len(store) == 3
        for i in range(3):
            np.testing.assert_array_equal(
                store.get(i), exact_knn(tiny_collection, queries[i], 4)
            )

    def test_save_load_roundtrip(self, tiny_collection, tmp_path):
        queries = tiny_collection.vectors[:2].astype(float)
        store = GroundTruthStore.compute(tiny_collection, queries, 3)
        path = str(tmp_path / "gt.npz")
        store.save(path)
        loaded = GroundTruthStore.load(path)
        assert loaded.k == 3
        assert len(loaded) == 2
        for i in range(2):
            np.testing.assert_array_equal(loaded.get(i), store.get(i))

    def test_load_without_extension(self, tiny_collection, tmp_path):
        queries = tiny_collection.vectors[:1].astype(float)
        store = GroundTruthStore.compute(tiny_collection, queries, 2)
        base = str(tmp_path / "gt2")
        store.save(base)
        loaded = GroundTruthStore.load(base)
        np.testing.assert_array_equal(loaded.get(0), store.get(0))

    def test_save_leaves_no_tmp_file(self, tiny_collection, tmp_path):
        queries = tiny_collection.vectors[:1].astype(float)
        store = GroundTruthStore.compute(tiny_collection, queries, 2)
        path = str(tmp_path / "gt.npz")
        store.save(path)
        import os

        assert os.listdir(tmp_path) == ["gt.npz"]

    def test_load_rejects_missing_arrays(self, tmp_path):
        from repro.storage.errors import CorruptFileError

        path = str(tmp_path / "bad.npz")
        np.savez(path, k=np.int64(3), indices=np.arange(2))
        with pytest.raises(CorruptFileError, match="missing"):
            GroundTruthStore.load(path)

    def test_load_rejects_inconsistent_shapes(self, tmp_path):
        from repro.storage.errors import CorruptFileError

        path = str(tmp_path / "bad2.npz")
        np.savez(
            path,
            k=np.int64(3),
            indices=np.arange(2),
            ids=np.zeros((2, 5), dtype=np.int64),  # k says 3, rows say 5
        )
        with pytest.raises(CorruptFileError, match="shapes"):
            GroundTruthStore.load(path)
