"""Tests for DBIN (EM-based probabilistic indexing)."""

import numpy as np
import pytest

from repro.core.ground_truth import exact_knn
from repro.extensions.dbin import DbinIndex, GaussianMixture


class TestGaussianMixture:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture(0)
        with pytest.raises(ValueError):
            GaussianMixture(2, em_iterations=0)
        with pytest.raises(ValueError):
            GaussianMixture(5).fit(np.ones((3, 2)))

    def test_recovers_separated_blobs(self, tiny_collection):
        gmm = GaussianMixture(3, em_iterations=25, seed=0).fit(
            tiny_collection.vectors.astype(float)
        )
        true_centers = np.array(
            [[0.0, 0.0, 0.0, 0.0], [5.0, 5.0, 5.0, 5.0], [10.0, 0.0, 10.0, 0.0]]
        )
        # Every true center is near some fitted mean.
        for center in true_centers:
            gaps = np.linalg.norm(gmm.means - center, axis=1)
            assert gaps.min() < 0.5

    def test_weights_normalized(self, tiny_collection):
        gmm = GaussianMixture(3, seed=1).fit(tiny_collection.vectors.astype(float))
        assert gmm.weights.sum() == pytest.approx(1.0)
        assert np.all(gmm.weights > 0)
        assert np.all(gmm.variances > 0)

    def test_assignment_partitions(self, tiny_collection):
        gmm = GaussianMixture(3, seed=2).fit(tiny_collection.vectors.astype(float))
        assignment = gmm.assign(tiny_collection.vectors.astype(float))
        assert assignment.shape == (len(tiny_collection),)
        assert set(assignment.tolist()) <= set(range(3))

    def test_log_likelihood_improves(self, tiny_collection):
        data = tiny_collection.vectors.astype(float)
        short = GaussianMixture(3, em_iterations=1, seed=3).fit(data)
        long = GaussianMixture(3, em_iterations=20, seed=3).fit(data)

        def total_ll(gmm):
            return float(
                np.logaddexp.reduce(gmm.log_densities(data), axis=1).sum()
            )

        assert total_ll(long) >= total_ll(short) - 1e-6


class TestCantelliBound:
    def test_bound_is_valid(self):
        """The Cantelli estimate must upper-bound the empirical
        probability for Gaussian samples."""
        rng = np.random.default_rng(0)
        from repro.core.dataset import DescriptorCollection

        data = rng.standard_normal((400, 6)) * 0.5 + 2.0
        col = DescriptorCollection.from_vectors(data.astype(np.float32))
        index = DbinIndex(col, n_components=1, seed=0)
        query = np.zeros(6)
        samples = rng.standard_normal((5000, 6)) * np.sqrt(
            index.mixture.variances[0]
        ) + index.mixture.means[0]
        d2 = np.sum((samples - query) ** 2, axis=1)
        for radius2 in (np.quantile(d2, 0.01), np.quantile(d2, 0.1)):
            empirical = float(np.mean(d2 < radius2))
            bound = index._better_neighbor_probability(0, query, radius2)
            assert bound >= empirical - 0.02


class TestDbinSearch:
    @pytest.fixture()
    def index(self, tiny_collection):
        return DbinIndex(tiny_collection, n_components=6, seed=1)

    def test_zero_threshold_is_exact(self, index, tiny_collection):
        rng = np.random.default_rng(5)
        for _ in range(10):
            query = rng.standard_normal(4) * 4
            got, scanned = index.search(query, k=6, abort_threshold=0.0)
            assert scanned == index.n_bins
            assert got == exact_knn(tiny_collection, query, 6).tolist()

    def test_abort_scans_fewer_bins(self, index, tiny_collection):
        query = tiny_collection.vectors[0].astype(float)
        _, full = index.search(query, k=3, abort_threshold=0.0)
        _, aborted = index.search(query, k=3, abort_threshold=0.9)
        assert aborted <= full

    def test_recall_grows_as_threshold_falls(self, index, tiny_collection):
        rng = np.random.default_rng(6)
        queries = [rng.standard_normal(4) * 4 for _ in range(12)]

        def recall(threshold):
            hits = 0
            for query in queries:
                got, _ = index.search(query, k=5, abort_threshold=threshold)
                truth = set(exact_knn(tiny_collection, query, 5).tolist())
                hits += len(set(got) & truth)
            return hits / (len(queries) * 5)

        assert recall(0.0) == 1.0
        assert recall(0.1) >= recall(5.0) - 1e-9

    def test_validation(self, index):
        with pytest.raises(ValueError):
            index.search(np.zeros(4), k=0)
        with pytest.raises(ValueError):
            index.search(np.zeros(4), k=1, abort_threshold=-1)
        with pytest.raises(ValueError):
            index.search(np.zeros(3), k=1)

    def test_bins_partition(self, index, tiny_collection):
        assert index.bin_sizes().sum() == len(tiny_collection)

    def test_empty_collection_rejected(self):
        from repro.core.dataset import DescriptorCollection

        with pytest.raises(ValueError):
            DbinIndex(DescriptorCollection.empty(3))
