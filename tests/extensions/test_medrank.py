"""Tests for the Medrank rank-aggregation index."""

import numpy as np
import pytest

from repro.core.ground_truth import exact_knn
from repro.extensions.medrank import MedrankIndex


class TestConstruction:
    def test_validation(self, tiny_collection):
        from repro.core.dataset import DescriptorCollection

        with pytest.raises(ValueError):
            MedrankIndex(DescriptorCollection.empty(4))
        with pytest.raises(ValueError):
            MedrankIndex(tiny_collection, n_lines=0)

    def test_query_dim_mismatch(self, tiny_collection):
        index = MedrankIndex(tiny_collection, n_lines=5)
        with pytest.raises(ValueError):
            index.search(np.zeros(3), 1)
        with pytest.raises(ValueError):
            index.search(np.zeros(4), 0)


class TestSearch:
    def test_self_query_finds_self(self, tiny_collection):
        index = MedrankIndex(tiny_collection, n_lines=9, seed=1)
        query = tiny_collection.vectors[5].astype(float)
        result = index.search(query, k=1)
        assert result[0] == 5

    def test_returns_k_distinct(self, tiny_collection):
        index = MedrankIndex(tiny_collection, n_lines=9, seed=2)
        result = index.search(tiny_collection.vectors[0].astype(float), k=8)
        assert len(result) == 8
        assert len(set(result)) == 8

    def test_k_capped_at_collection(self, tiny_collection):
        index = MedrankIndex(tiny_collection, n_lines=5, seed=0)
        result = index.search(np.zeros(4), k=10_000)
        assert len(result) == len(tiny_collection)

    def test_approximation_quality(self, tiny_collection):
        """With enough lines, the approximate top-10 should overlap the
        exact top-10 substantially on clustered data."""
        index = MedrankIndex(tiny_collection, n_lines=21, seed=3)
        rng = np.random.default_rng(0)
        overlaps = []
        for _ in range(10):
            row = rng.integers(len(tiny_collection))
            query = tiny_collection.vectors[row].astype(float)
            approx = set(index.search(query, k=10))
            exact = set(exact_knn(tiny_collection, query, 10).tolist())
            overlaps.append(len(approx & exact) / 10)
        assert np.mean(overlaps) >= 0.5

    def test_deterministic(self, tiny_collection):
        a = MedrankIndex(tiny_collection, n_lines=7, seed=5)
        b = MedrankIndex(tiny_collection, n_lines=7, seed=5)
        q = tiny_collection.vectors[3].astype(float)
        assert a.search(q, 5) == b.search(q, 5)

    def test_no_distance_computed_property(self, tiny_collection):
        """Medrank touches only 1-d projections at query time: querying a
        point far outside the data still terminates and returns ids."""
        index = MedrankIndex(tiny_collection, n_lines=5, seed=1)
        result = index.search(np.full(4, 1e6), k=3)
        assert len(result) == 3
