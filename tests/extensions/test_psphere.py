"""Tests for the P-Sphere tree."""

import numpy as np
import pytest

from repro.core.ground_truth import exact_knn
from repro.extensions.psphere import PSphereTree


class TestConstruction:
    def test_validation(self, tiny_collection):
        from repro.core.dataset import DescriptorCollection

        with pytest.raises(ValueError):
            PSphereTree(DescriptorCollection.empty(4), 2, 5)
        with pytest.raises(ValueError):
            PSphereTree(tiny_collection, 0, 5)
        with pytest.raises(ValueError):
            PSphereTree(tiny_collection, 2, 0)

    def test_counts_capped(self, tiny_collection):
        tree = PSphereTree(tiny_collection, n_spheres=1000, points_per_sphere=1000)
        assert tree.n_spheres == len(tiny_collection)
        assert tree.points_per_sphere == len(tiny_collection)

    def test_replication_factor(self, tiny_collection):
        tree = PSphereTree(tiny_collection, n_spheres=6, points_per_sphere=20)
        assert tree.replication_factor == pytest.approx(120 / 60)


class TestSearch:
    def test_self_query(self, tiny_collection):
        tree = PSphereTree(tiny_collection, n_spheres=6, points_per_sphere=25, seed=1)
        result = tree.search(tiny_collection.vectors[7].astype(float), k=1)
        assert result[0] == 7

    def test_single_sphere_scanned(self, tiny_collection):
        tree = PSphereTree(tiny_collection, n_spheres=4, points_per_sphere=10)
        assert tree.descriptors_scanned_per_query() == 10
        result = tree.search(np.zeros(4), k=30)
        assert len(result) <= 10  # only one sphere's contents

    def test_space_for_time_trade(self, tiny_collection):
        """More replication -> better (or equal) recall of the true NN."""
        rng = np.random.default_rng(2)
        queries = [rng.standard_normal(4) * 4 for _ in range(15)]

        def recall(points_per_sphere):
            tree = PSphereTree(
                tiny_collection, n_spheres=5,
                points_per_sphere=points_per_sphere, seed=3,
            )
            hits = 0
            for query in queries:
                truth = exact_knn(tiny_collection, query, 1)[0]
                got = tree.search(query, k=1)
                hits += bool(got and got[0] == truth)
            return hits / len(queries)

        assert recall(40) >= recall(5)
        assert recall(60) == 1.0  # full replication: always correct

    def test_validation(self, tiny_collection):
        tree = PSphereTree(tiny_collection, 3, 10)
        with pytest.raises(ValueError):
            tree.search(np.zeros(4), k=0)
        with pytest.raises(ValueError):
            tree.search(np.zeros(3), k=1)

    def test_deterministic(self, tiny_collection):
        a = PSphereTree(tiny_collection, 5, 15, seed=9)
        b = PSphereTree(tiny_collection, 5, 15, seed=9)
        q = tiny_collection.vectors[3].astype(float)
        assert a.search(q, 5) == b.search(q, 5)
