"""Tests for multi-descriptor image-level search."""

import numpy as np
import pytest

from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.dataset import DescriptorCollection
from repro.core.stop_rules import MaxChunks
from repro.extensions.multi_descriptor import MultiDescriptorSearcher


@pytest.fixture()
def image_collection():
    """Three 'images', each a cluster of 20 descriptors."""
    rng = np.random.default_rng(8)
    centers = np.array(
        [[0.0, 0.0, 0.0, 0.0], [6.0, 6.0, 0.0, 0.0], [0.0, 0.0, 9.0, 9.0]]
    )
    parts, image_ids = [], []
    for image, center in enumerate(centers):
        parts.append(center + 0.3 * rng.standard_normal((20, 4)))
        image_ids.extend([image] * 20)
    return DescriptorCollection(
        vectors=np.vstack(parts).astype(np.float32),
        ids=np.arange(60),
        image_ids=np.asarray(image_ids),
    )


@pytest.fixture()
def searcher(image_collection):
    chunking = SRTreeChunker(leaf_capacity=10).form_chunks(image_collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)
    return MultiDescriptorSearcher(index, image_collection)


class TestVoting:
    def test_query_image_ranks_itself_first(self, searcher, image_collection):
        query_rows = np.flatnonzero(image_collection.image_ids == 1)[:8]
        query = image_collection.vectors[query_rows].astype(float)
        matches = searcher.search_image(query, k_per_descriptor=5)
        assert matches[0].image_id == 1
        assert matches[0].votes >= matches[-1].votes

    def test_votes_bounded_by_query_descriptors(self, searcher, image_collection):
        query_rows = np.flatnonzero(image_collection.image_ids == 0)[:6]
        query = image_collection.vectors[query_rows].astype(float)
        matches = searcher.search_image(query, k_per_descriptor=20)
        for match in matches:
            assert match.votes <= 6
            assert match.matched_query_descriptors <= 6

    def test_single_descriptor_query(self, searcher, image_collection):
        query = image_collection.vectors[45].astype(float)  # image 2
        matches = searcher.search_image(query, k_per_descriptor=3)
        assert matches[0].image_id == 2

    def test_top_images_limit(self, searcher, image_collection):
        query = image_collection.vectors[:10].astype(float)
        matches = searcher.search_image(
            query, k_per_descriptor=30, top_images=2
        )
        assert len(matches) <= 2

    def test_stop_rule_passthrough(self, searcher, image_collection):
        query = image_collection.vectors[:5].astype(float)
        matches = searcher.search_image(
            query, k_per_descriptor=5, stop_rule=MaxChunks(1)
        )
        assert matches  # approximate, but something comes back

    def test_empty_query_rejected(self, searcher):
        with pytest.raises(ValueError):
            searcher.search_image(np.empty((0, 4)))

    def test_mismatched_index_rejected(self, image_collection):
        chunking = SRTreeChunker(leaf_capacity=10).form_chunks(image_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        smaller = image_collection.take(range(30))
        with pytest.raises(ValueError, match="disagree"):
            MultiDescriptorSearcher(index, smaller)


class TestVerifiedVoting:
    def test_distance_cutoff_blocks_far_votes(self, searcher, image_collection):
        """A query far from everything gets votes without the cutoff and
        none with a tight one."""
        far_query = np.full((3, 4), 100.0)
        unverified = searcher.search_image(far_query, k_per_descriptor=5)
        assert unverified and unverified[0].votes > 0
        verified = searcher.search_image(
            far_query, k_per_descriptor=5, max_match_distance=1.0
        )
        assert verified == []

    def test_cutoff_keeps_close_votes(self, searcher, image_collection):
        query = image_collection.vectors[:4].astype(float)
        verified = searcher.search_image(
            query, k_per_descriptor=5, max_match_distance=2.0
        )
        assert verified and verified[0].image_id == 0
