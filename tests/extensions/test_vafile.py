"""Tests for the approximate VA-file."""

import numpy as np
import pytest

from repro.core.ground_truth import exact_knn
from repro.extensions.vafile import VAFile


@pytest.fixture()
def vafile(tiny_collection):
    return VAFile(tiny_collection, bits_per_dimension=6)


class TestConstruction:
    def test_validation(self, tiny_collection):
        from repro.core.dataset import DescriptorCollection

        with pytest.raises(ValueError):
            VAFile(DescriptorCollection.empty(4))
        with pytest.raises(ValueError):
            VAFile(tiny_collection, bits_per_dimension=0)
        with pytest.raises(ValueError):
            VAFile(tiny_collection, bits_per_dimension=17)

    def test_signature_bytes(self, tiny_collection):
        va = VAFile(tiny_collection, bits_per_dimension=4)
        assert va.signature_bytes == 2  # 4 bits x 4 dims = 16 bits

    def test_signatures_in_range(self, vafile):
        assert vafile._signatures.min() >= 0
        assert vafile._signatures.max() < 2**6


class TestLowerBounds:
    def test_bounds_never_exceed_true_distance(self, vafile, tiny_collection):
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = rng.standard_normal(4) * 5
            bounds = vafile._lower_bounds(query)
            true_d2 = np.sum(
                (tiny_collection.vectors.astype(float) - query) ** 2, axis=1
            )
            assert np.all(bounds <= true_d2 + 1e-9)

    def test_own_cell_bound_zero(self, vafile, tiny_collection):
        query = tiny_collection.vectors[7].astype(float)
        bounds = vafile._lower_bounds(query)
        assert bounds[7] == pytest.approx(0.0, abs=1e-12)


class TestSearch:
    def test_exact_mode_matches_sequential_scan(self, vafile, tiny_collection):
        rng = np.random.default_rng(1)
        for _ in range(10):
            query = rng.standard_normal(4) * 4
            got = vafile.search(query, k=5, refine_candidates=0)
            expected = exact_knn(tiny_collection, query, 5).tolist()
            assert got == expected

    def test_bounded_refinement_trades_quality(self, vafile, tiny_collection):
        query = tiny_collection.vectors[10].astype(float)
        exact = set(exact_knn(tiny_collection, query, 5).tolist())
        tiny_budget = set(vafile.search(query, k=5, refine_candidates=5))
        big_budget = set(vafile.search(query, k=5, refine_candidates=40))
        assert len(big_budget & exact) >= len(tiny_budget & exact)
        assert len(big_budget & exact) >= 4  # nearly exact with 40 refinements

    def test_budget_larger_than_collection(self, vafile, tiny_collection):
        query = tiny_collection.vectors[0].astype(float)
        got = vafile.search(query, k=3, refine_candidates=10_000)
        assert got == exact_knn(tiny_collection, query, 3).tolist()

    def test_k_capped(self, vafile, tiny_collection):
        got = vafile.search(np.zeros(4), k=1000)
        assert len(got) == len(tiny_collection)

    def test_validation(self, vafile):
        with pytest.raises(ValueError):
            vafile.search(np.zeros(4), k=0)
        with pytest.raises(ValueError):
            vafile.search(np.zeros(3), k=1)

    def test_coarse_signatures_still_exact_in_exact_mode(self, tiny_collection):
        """Even 1-bit signatures give valid lower bounds, so exact mode
        stays exact (just refines more)."""
        va = VAFile(tiny_collection, bits_per_dimension=1)
        query = tiny_collection.vectors[3].astype(float)
        assert va.search(query, k=4) == exact_knn(tiny_collection, query, 4).tolist()
