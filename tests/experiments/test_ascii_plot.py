"""Tests for ASCII figure rendering."""

import pytest

from repro.experiments.ascii_plot import SERIES_MARKERS, plot_figure
from repro.experiments.results import FigureResult


def figure(series=None, x=None):
    return FigureResult(
        experiment_id="figX",
        title="Demo",
        x_label="n",
        x_values=x if x is not None else [0, 1, 2, 3],
        series=series if series is not None else {"a": [1.0, 2.0, 3.0, 4.0]},
    )


class TestPlot:
    def test_basic_structure(self):
        text = plot_figure(figure(), width=20, height=6)
        lines = text.splitlines()
        assert lines[0] == "[figX] Demo"
        assert lines[-1].startswith("o=a")
        assert any("-" * 20 in line for line in lines)
        assert sum(1 for line in lines if line.startswith("|")) == 6

    def test_markers_appear_per_series(self):
        text = plot_figure(
            figure(series={"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]}),
            width=24,
            height=8,
        )
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_monotone_series_descends_on_grid(self):
        text = plot_figure(figure(), width=16, height=8)
        rows = [
            i for i, line in enumerate(text.splitlines()) if "o" in line and line.startswith("|")
        ]
        # Increasing values appear on higher (smaller index) rows first-to-last.
        assert rows == sorted(rows)

    def test_log_axes_skip_nonpositive(self):
        fig = figure(series={"a": [0.0, 1.0, 10.0, 100.0]})
        text = plot_figure(fig, width=20, height=6, log_y=True)
        assert "(log)" in text

    def test_all_filtered_raises(self):
        fig = figure(series={"a": [0.0, 0.0, 0.0, 0.0]})
        with pytest.raises(ValueError, match="nothing plottable"):
            plot_figure(fig, log_y=True)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [1, 2, 3, 4] for i in range(len(SERIES_MARKERS) + 1)}
        with pytest.raises(ValueError, match="too many series"):
            plot_figure(figure(series=series))

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            plot_figure(figure(), width=4, height=2)

    def test_constant_series_plots(self):
        text = plot_figure(figure(series={"a": [5, 5, 5, 5]}), width=12, height=5)
        assert "o" in text


class TestCliPlot:
    def test_plot_flag(self, capsys, experiment_data):
        from repro.cli import main

        assert main(["experiment", "fig1", "--scale", "test", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o=BAG/SMALL" in out
        assert "(log)" in out  # fig1 is log-y
