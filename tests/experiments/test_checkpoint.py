"""Tests for sweep checkpointing: atomic persistence and mid-run resume.

The headline test kills a fault sweep midway (the second point's
``FaultPlan.balanced`` raises), then resumes against the checkpoint and
proves the surviving point is read back instead of recomputed — with
series bit-identical to an uninterrupted run.
"""

import json

import pytest

from repro.experiments import chunk_size_sweep, faultsim
from repro.experiments.checkpoint import SweepCheckpoint

META = {"experiment": "unit-test", "seed": 7, "grid": (1, 2)}


class TestSweepCheckpoint:
    def test_round_trip_through_json(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "c.json", META)
        assert len(ckpt) == 0 and ckpt.resumed_points == 0
        assert ckpt.get("p") is None and "p" not in ckpt
        ckpt.put("p", {"x": 1.5, "grid": (3, 4)})
        assert "p" in ckpt and len(ckpt) == 1
        # Values live in the serialized domain from the moment of put:
        # tuples become lists, floats stay bit-identical.
        assert ckpt.get("p") == {"x": 1.5, "grid": [3, 4]}

    def test_reopen_resumes_stored_points(self, tmp_path):
        path = tmp_path / "c.json"
        first = SweepCheckpoint(path, META)
        first.put("a", 1.0)
        first.put("b", [2.0, 3.0])
        reopened = SweepCheckpoint(path, META)
        assert reopened.resumed_points == 2
        assert reopened.get("a") == 1.0
        assert reopened.get("b") == [2.0, 3.0]

    def test_meta_mismatch_starts_empty(self, tmp_path):
        path = tmp_path / "c.json"
        SweepCheckpoint(path, META).put("a", 1.0)
        other = SweepCheckpoint(path, {**META, "seed": 8})
        assert len(other) == 0 and other.resumed_points == 0
        # The first put replaces the stale file wholesale.
        other.put("b", 2.0)
        fresh = SweepCheckpoint(path, {**META, "seed": 8})
        assert fresh.get("a") is None
        assert fresh.get("b") == 2.0

    def test_unknown_format_is_ignored(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": "something-else", "points": {"a": 1}}))
        assert len(SweepCheckpoint(path, META)) == 0

    def test_file_is_plain_sorted_json(self, tmp_path):
        path = tmp_path / "c.json"
        SweepCheckpoint(path, META).put("a", {"v": 1})
        stored = json.loads(path.read_text())
        assert stored["format"] == "repro-sweep-checkpoint-v1"
        assert stored["meta"] == json.loads(json.dumps(META))
        assert stored["points"] == {"a": {"v": 1}}
        assert path.read_text() == json.dumps(stored, sort_keys=True, indent=2)


RATES = (0.0, 0.2)
SWEEP_ARGS = dict(family="SR", size_class="SMALL", workload_name="DQ", seed=7)


@pytest.fixture(scope="module")
def fresh_sweep(experiment_data):
    """An uninterrupted, checkpoint-free run — the ground truth."""
    return faultsim.sweep(experiment_data, rates=RATES, **SWEEP_ARGS)


class TestFaultsimKillMidway:
    def test_kill_resume_matches_uninterrupted_run(
        self, experiment_data, tmp_path, monkeypatch, fresh_sweep
    ):
        path = tmp_path / "faultsim.ckpt.json"
        real_plan = faultsim.FaultPlan

        class KillOnSecondPoint:
            calls = 0

            @classmethod
            def balanced(cls, rate, seed):
                cls.calls += 1
                if cls.calls == 2:
                    raise RuntimeError("simulated mid-sweep kill")
                return real_plan.balanced(rate, seed=seed)

        monkeypatch.setattr(faultsim, "FaultPlan", KillOnSecondPoint)
        with pytest.raises(RuntimeError, match="mid-sweep kill"):
            faultsim.sweep(
                experiment_data, rates=RATES, checkpoint_path=path, **SWEEP_ARGS
            )
        assert KillOnSecondPoint.calls == 2
        # The completed point was published atomically before the crash.
        assert len(json.loads(path.read_text())["points"]) == 1

        class CountingPlan:
            calls = 0

            @classmethod
            def balanced(cls, rate, seed):
                cls.calls += 1
                return real_plan.balanced(rate, seed=seed)

        monkeypatch.setattr(faultsim, "FaultPlan", CountingPlan)
        resumed = faultsim.sweep(
            experiment_data, rates=RATES, checkpoint_path=path, **SWEEP_ARGS
        )
        assert CountingPlan.calls == 1  # only the killed point is recomputed
        assert resumed.x_values == fresh_sweep.x_values
        assert resumed.series == fresh_sweep.series

        CountingPlan.calls = 0
        again = faultsim.sweep(
            experiment_data, rates=RATES, checkpoint_path=path, **SWEEP_ARGS
        )
        assert CountingPlan.calls == 0  # complete checkpoint: no work at all
        assert again.series == fresh_sweep.series


class TestChunkSizeSweepResume:
    def test_resume_never_recomputes_traces(
        self, experiment_data, tmp_path, monkeypatch
    ):
        path = tmp_path / "fig6.ckpt.json"
        fresh = chunk_size_sweep.run_fig6(experiment_data, checkpoint_path=path)

        def refuse(*args, **kwargs):
            raise AssertionError("sweep_traces must not run on resume")

        # Poisoning the trace sweep proves the checkpoint — not the
        # in-process trace cache — is what skips the recompute.
        monkeypatch.setattr(chunk_size_sweep, "sweep_traces", refuse)
        resumed = chunk_size_sweep.run_fig6(experiment_data, checkpoint_path=path)
        assert resumed.x_values == fresh.x_values
        assert resumed.series == fresh.series
