"""Tests for the fault-injection sweep experiment."""

import json

import pytest

from repro.cli import main
from repro.experiments import faultsim


class TestSweep:
    @pytest.fixture(scope="class")
    def figure(self, experiment_data):
        return faultsim.sweep(
            experiment_data,
            family="SR",
            size_class="SMALL",
            workload_name="DQ",
            rates=(0.0, 0.3),
            seed=7,
        )

    def test_zero_rate_point_is_clean(self, figure):
        assert figure.x_values[0] == 0.0
        assert figure.series["recall"][0] == pytest.approx(1.0)
        assert figure.series["coverage"][0] == pytest.approx(1.0)
        assert figure.series["degraded_fraction"][0] == 0.0
        assert figure.series["chunks_skipped"][0] == 0.0

    def test_faults_degrade_quality_and_cost_time(self, figure):
        assert figure.series["coverage"][1] < 1.0
        assert figure.series["degraded_fraction"][1] > 0.0
        assert figure.series["chunks_skipped"][1] > 0.0
        # Retries, backoff and spikes make degraded runs slower.
        assert figure.series["elapsed_ms"][1] > figure.series["elapsed_ms"][0]
        # Quality can only be lost relative to the clean run.
        assert figure.series["recall"][1] <= figure.series["recall"][0]

    def test_sweep_is_deterministic(self, experiment_data, figure):
        again = faultsim.sweep(
            experiment_data,
            family="SR",
            size_class="SMALL",
            workload_name="DQ",
            rates=(0.0, 0.3),
            seed=7,
        )
        assert again.series == figure.series

    def test_report_wraps_figure(self, experiment_data, figure):
        payload = faultsim.report(
            experiment_data,
            family="SR",
            size_class="SMALL",
            rates=(0.0, 0.3),
            seed=7,
            figure=figure,
        )
        assert payload["experiment"] == "faultsim"
        assert payload["fault_rates"] == [0.0, 0.3]
        assert payload["series"] == figure.series
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_empty_rates_rejected(self, experiment_data):
        with pytest.raises(ValueError, match="rate"):
            faultsim.sweep(experiment_data, rates=())

    def test_registered_as_experiment(self):
        from repro.cli import EXPERIMENT_RUNNERS

        assert EXPERIMENT_RUNNERS["faultsim"] is faultsim.run


class TestCli:
    def test_faultsim_json_reports_identical(
        self, tmp_path, capsys, experiment_data
    ):
        # experiment_data pre-warms the TEST-scale cache; two invocations
        # must produce byte-identical reports (the CI smoke contract).
        args = [
            "faultsim",
            "--scale",
            "test",
            "--seed",
            "7",
            "--rates",
            "0.0,0.2",
            "--size-class",
            "SMALL",
        ]
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(args + ["--json", a]) == 0
        assert main(args + ["--json", b]) == 0
        out = capsys.readouterr().out
        assert "fault_rate" in out
        assert open(a, "rb").read() == open(b, "rb").read()
        payload = json.loads(open(a).read())
        assert payload["seed"] == 7
        assert payload["fault_rates"] == [0.0, 0.2]

    def test_bad_rates_rejected(self, capsys):
        assert main(["faultsim", "--scale", "test", "--rates", "0.9"]) == 2
        assert "rate" in capsys.readouterr().err
