"""Tests for the experiment data-preparation pipeline itself."""

import numpy as np
import pytest

from repro.experiments.config import SIZE_CLASSES, TEST_SCALE
from repro.experiments.data import clear_cache, prepare


class TestPrepare:
    def test_cached_per_scale(self, experiment_data):
        assert prepare(TEST_SCALE) is experiment_data

    def test_collection_matches_scale(self, experiment_data):
        assert experiment_data.collection.dimensions == 24
        assert len(experiment_data.collection) > 1000

    def test_mpi_positive(self, experiment_data):
        assert experiment_data.mpi > 0

    def test_workload_sizes(self, experiment_data):
        for name in ("DQ", "SQ"):
            assert len(experiment_data.workloads[name]) == TEST_SCALE.n_queries

    def test_dq_queries_from_collection(self, experiment_data):
        workload = experiment_data.workloads["DQ"]
        for query, row in zip(workload.queries[:5], workload.source_rows[:5]):
            np.testing.assert_allclose(
                query,
                experiment_data.collection.vectors[row].astype(float),
            )

    def test_sr_leaf_matches_bag_average(self, experiment_data):
        """The paper's construction: SR chunk size ~ BAG average."""
        for size_class in SIZE_CLASSES:
            bag = experiment_data.built("BAG", size_class).chunking
            sr = experiment_data.built("SR", size_class).chunking
            leaf = sr.chunk_set.sizes().max()
            assert leaf == pytest.approx(bag.mean_chunk_size, abs=1.0)

    def test_bag_thresholds_strictly_ordered(self, experiment_data):
        counts = [
            experiment_data.built("BAG", size_class).index.n_chunks
            for size_class in SIZE_CLASSES
        ]
        assert counts[0] > counts[1] > counts[2]

    def test_ground_truth_ids_exist_in_retained(self, experiment_data):
        for size_class in SIZE_CLASSES:
            retained_ids = set(
                experiment_data.retained(size_class).ids.tolist()
            )
            truth = experiment_data.ground_truth(size_class, "DQ")
            for i in range(3):
                assert set(truth.get(i).tolist()) <= retained_ids

    def test_indexes_page_layouts_valid(self, experiment_data):
        for built in experiment_data.indexes.values():
            offset = 0
            for meta in built.index.metas:
                assert meta.page_offset == offset
                offset += meta.page_count


class TestCacheControl:
    def test_eviction_forces_deterministic_rebuild(self):
        # Use an isolated scale name and evict only that entry, so the
        # shared session fixture's cache survives this test.
        import dataclasses

        from repro.experiments import data as data_module

        scale = dataclasses.replace(TEST_SCALE, name="cache-control-test")
        try:
            first = prepare(scale)
            assert prepare(scale) is first
            data_module._CACHE.pop(scale.name)
            second = prepare(scale)
            assert second is not first
            # Determinism: the rebuilt data is identical.
            assert np.array_equal(
                first.collection.vectors, second.collection.vectors
            )
            bag_first = first.built("BAG", "SMALL").chunking
            bag_second = second.built("BAG", "SMALL").chunking
            assert bag_first.n_chunks == bag_second.n_chunks
            assert np.array_equal(
                bag_first.outlier_rows, bag_second.outlier_rows
            )
        finally:
            data_module._CACHE.pop(scale.name, None)

    def test_clear_cache_api_exists(self):
        # clear_cache is part of the public API; just ensure it is callable
        # on an empty selection without touching live entries we rely on.
        assert callable(clear_cache)
