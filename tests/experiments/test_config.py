"""Tests for experiment configuration."""

import dataclasses

import pytest

from repro.experiments.config import (
    DEFAULT_SCALE,
    PAPER_MEDIUM_CHUNK,
    SIZE_CLASSES,
    TEST_SCALE,
    ExperimentScale,
    get_scale,
    scaled_cost_model,
)


class TestRegistry:
    def test_lookup(self):
        assert get_scale("default") is DEFAULT_SCALE
        assert get_scale("test") is TEST_SCALE

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown scale"):
            get_scale("huge")

    def test_size_classes(self):
        assert SIZE_CLASSES == ("SMALL", "MEDIUM", "LARGE")


class TestScale:
    def test_paper_constants(self):
        assert DEFAULT_SCALE.k == 30  # the paper's precision@30
        assert PAPER_MEDIUM_CHUNK == 1719  # Table 1 MEDIUM

    def test_thresholds_descend(self):
        thresholds = DEFAULT_SCALE.bag_thresholds(10_000)
        assert thresholds[0] > thresholds[1] > thresholds[2]

    def test_thresholds_scale_with_collection(self):
        small = DEFAULT_SCALE.bag_thresholds(1_000)
        large = DEFAULT_SCALE.bag_thresholds(100_000)
        assert all(a < b for a, b in zip(small, large))

    def test_tiny_collection_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            DEFAULT_SCALE.bag_thresholds(20)

    def test_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TEST_SCALE, k=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TEST_SCALE, n_queries=0)
        with pytest.raises(ValueError):
            dataclasses.replace(
                TEST_SCALE, bag_threshold_fractions=(0.1, 0.2, 0.3)
            )
        with pytest.raises(ValueError):
            dataclasses.replace(TEST_SCALE, n_queries_sweep=10_000)
        with pytest.raises(ValueError):
            dataclasses.replace(TEST_SCALE, chunk_size_ladder=(4,))


class TestScaledCostModel:
    def test_preserves_medium_chunk_cpu(self):
        """The scaled model charges our MEDIUM chunk what the paper's
        hardware charged its MEDIUM chunk."""
        model = scaled_cost_model(expected_medium_chunk=100)
        ours = model.cpu.chunk_processing_time_s(100)
        from repro.simio.calibration import PAPER_2005_COST_MODEL

        papers = PAPER_2005_COST_MODEL.cpu.chunk_processing_time_s(
            PAPER_MEDIUM_CHUNK
        )
        assert ours == pytest.approx(papers, rel=1e-6)

    def test_disk_untouched(self):
        from repro.simio.calibration import PAPER_2005_COST_MODEL

        model = scaled_cost_model(50)
        assert model.disk == PAPER_2005_COST_MODEL.disk

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_cost_model(0)
