"""Tests for the sharded-serving sweep experiment."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.batch_search import BatchChunkSearcher
from repro.core.chunk import Chunk, ChunkSet
from repro.core.chunk_index import build_chunk_index
from repro.experiments import shardsim
from repro.service.sharding import (
    ShardServiceConfig,
    ShardedQueryService,
    estimate_chunk_costs,
    plan_placement,
)
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.workloads.synthetic import SyntheticImageConfig, generate_collection

SWEEP_ARGS = dict(
    family="BAG",
    size_class="SMALL",
    workload_name="DQ",
    placements=("greedy", "round_robin"),
    shard_counts=(4, 16),
    fault_rates=(0.0, 0.2),
    load_factor=8.0,
    seed=7,
)


class TestSweep:
    @pytest.fixture(scope="class")
    def grid(self, experiment_data):
        return shardsim.sweep(experiment_data, **SWEEP_ARGS)

    def test_one_row_per_cell_in_grid_order(self, grid):
        coords = [
            (row["placement"], row["n_shards"], row["fault_rate"])
            for row in grid.rows
        ]
        assert coords == [
            (placement, shards, fault)
            for placement in ("greedy", "round_robin")
            for shards in (4, 16)
            for fault in (0.0, 0.2)
        ]

    def test_calibration_meta_is_consistent(self, grid):
        meta = grid.meta
        assert meta["arrival_rate_qps"] == (
            meta["load_factor"] / meta["mean_service_s"]
        )
        assert meta["deadline_s"] == pytest.approx(
            4.0 * meta["mean_service_s"]
        )

    def test_parallelism_buys_the_tail_down(self, grid):
        """At 8x a single node's load, 4 single-worker shards are
        oversaturated and 16 are not: p99 must fall and the ok fraction
        must rise with the shard count."""
        by_cell = {
            (row["placement"], row["n_shards"], row["fault_rate"]): row
            for row in grid.rows
        }
        tight = by_cell[("greedy", 4, 0.0)]
        roomy = by_cell[("greedy", 16, 0.0)]
        assert roomy["p50_ms"] < tight["p50_ms"]
        assert roomy["ok_fraction"] > tight["ok_fraction"]
        assert roomy["deadline_fraction"] < tight["deadline_fraction"]
        assert roomy["mean_coverage"] > 0.95
        assert roomy["mean_recall"] == 1.0

    def test_faults_cost_coverage_honestly(self, grid):
        by_cell = {
            (row["placement"], row["n_shards"], row["fault_rate"]): row
            for row in grid.rows
        }
        clean = by_cell[("greedy", 16, 0.0)]
        faulty = by_cell[("greedy", 16, 0.2)]
        assert faulty["mean_coverage"] < clean["mean_coverage"]
        assert faulty["mean_recall"] < clean["mean_recall"]
        assert (
            faulty["lost_partitions"] > 0 or faulty["deadline_fraction"] > 0
        )
        assert faulty["failovers"] > 0
        # Breaker transition columns ride along in every row.
        for row in grid.rows:
            assert row["breaker_half_opens"] >= 0
            assert row["breaker_closes"] >= 0
            assert row["breaker_opens"] >= row["breaker_half_opens"]

    def test_sweep_is_deterministic(self, experiment_data, grid):
        again = shardsim.sweep(experiment_data, **SWEEP_ARGS)
        assert again.rows == grid.rows
        assert again.meta == grid.meta

    def test_report_is_json_serializable_and_renders(self, grid):
        payload = grid.to_report()
        assert payload["experiment"] == "shardsim"
        assert payload["rows"] == grid.rows
        json.dumps(payload)
        rendered = grid.render()
        assert "placement" in rendered and "calibration" in rendered

    def test_checkpoint_resume_reproduces_rows(
        self, experiment_data, tmp_path, grid
    ):
        path = tmp_path / "shardsim.ckpt.json"
        first = shardsim.sweep(
            experiment_data, checkpoint_path=path, **SWEEP_ARGS
        )
        resumed = shardsim.sweep(
            experiment_data, checkpoint_path=path, **SWEEP_ARGS
        )
        assert resumed.rows == first.rows == grid.rows

    def test_bad_grids_rejected(self, experiment_data):
        with pytest.raises(ValueError, match="at least one"):
            shardsim.sweep(experiment_data, placements=())
        with pytest.raises(ValueError, match="unknown placement"):
            shardsim.sweep(experiment_data, placements=("astrology",))
        with pytest.raises(ValueError, match="positive"):
            shardsim.sweep(experiment_data, shard_counts=(0,))
        with pytest.raises(ValueError, match="positive"):
            shardsim.sweep(experiment_data, load_factor=0.0)

    def test_registered_as_experiment(self):
        from repro.cli import EXPERIMENT_RUNNERS

        assert EXPERIMENT_RUNNERS["shardsim"] is shardsim.run


class TestPlacementBeatsRoundRobin:
    """The acceptance criterion: on a skewed chunking at 8x load, the
    cost-aware greedy placement beats round-robin on p99."""

    @pytest.fixture(scope="class")
    def skewed(self):
        collection = generate_collection(
            SyntheticImageConfig(
                n_images=128,
                mean_descriptors_per_image=96,
                n_patterns=40,
                patterns_per_image=4,
                seed=11,
            )
        )
        n = len(collection)
        quarter = n // 4
        small = np.linspace(2 * quarter, n, 13, dtype=int)
        groups = [range(0, quarter), range(quarter, 2 * quarter)] + [
            range(small[i], small[i + 1]) for i in range(12)
        ]
        chunk_set = ChunkSet(
            collection, [Chunk.from_rows(collection, g) for g in groups]
        )
        index = build_chunk_index(collection, chunk_set, name="skewed")
        queries = collection.vectors[::300][:20].astype(np.float64)
        mean_s = (
            BatchChunkSearcher(index, cost_model=PAPER_2005_COST_MODEL)
            .search_batch(queries, k=10)
            .mean_elapsed_s
        )
        return index, np.tile(queries, (3, 1)), mean_s

    def run_placement(self, skewed, strategy):
        index, queries, mean_s = skewed
        costs = estimate_chunk_costs(index, PAPER_2005_COST_MODEL)
        plan = plan_placement(
            costs, n_shards=4, n_replicas=2, strategy=strategy
        )
        config = ShardServiceConfig(
            workers_per_shard=2,
            deadline_s=4.0 * mean_s,
            arrival_rate_qps=8.0 / mean_s,
            seed=5,
            k=10,
            max_in_flight=256,
        )
        service = ShardedQueryService(
            index, plan, config, cost_model=PAPER_2005_COST_MODEL
        )
        try:
            return plan, service.run(queries)
        finally:
            service.close()

    def test_greedy_beats_round_robin_on_p99_at_8x_load(self, skewed):
        greedy_plan, greedy = self.run_placement(skewed, "greedy")
        naive_plan, naive = self.run_placement(skewed, "round_robin")
        assert greedy_plan.imbalance < naive_plan.imbalance
        assert greedy.stats.p99_s < naive.stats.p99_s
        assert greedy.stats.ok_fraction >= naive.stats.ok_fraction


class TestCli:
    def test_shardsim_json_reports_identical(
        self, tmp_path, capsys, experiment_data
    ):
        # experiment_data pre-warms the TEST-scale cache; two invocations
        # must produce byte-identical reports (the CI smoke contract).
        args = [
            "shardsim",
            "--scale",
            "test",
            "--seed",
            "7",
            "--placements",
            "greedy,round_robin",
            "--shards",
            "4",
            "--fault-rates",
            "0,0.2",
            "--size-class",
            "SMALL",
        ]
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(args + ["--json", a]) == 0
        assert main(args + ["--json", b]) == 0
        out = capsys.readouterr().out
        assert "placement" in out and "calibration" in out
        assert open(a, "rb").read() == open(b, "rb").read()
        payload = json.loads(open(a).read())
        assert payload["meta"]["seed"] == 7
        assert payload["meta"]["shard_counts"] == [4]
        assert len(payload["rows"]) == 4

    def test_bad_arguments_rejected(self, capsys):
        assert main(["shardsim", "--scale", "test", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["shardsim", "--scale", "test", "--load", "0"]) == 2
        assert "--load" in capsys.readouterr().err
        assert main(["shardsim", "--scale", "test", "--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err
        assert main(
            ["shardsim", "--scale", "test", "--placements", "astrology"]
        ) == 2
        assert "placement" in capsys.readouterr().err
