"""Tests for the service simulation sweep experiment."""

import json

import pytest

from repro.cli import main
from repro.experiments import servesim

SWEEP_ARGS = dict(
    family="SR",
    size_class="SMALL",
    workload_name="DQ",
    load_factors=(0.5, 4.0),
    fault_rates=(0.0, 0.3),
    seed=7,
)


class TestSweep:
    @pytest.fixture(scope="class")
    def grid(self, experiment_data):
        return servesim.sweep(experiment_data, **SWEEP_ARGS)

    def test_one_row_per_cell_in_grid_order(self, grid):
        coords = [(row["fault_rate"], row["load_factor"]) for row in grid.rows]
        assert coords == [
            (fault, load) for fault in (0.0, 0.3) for load in (0.5, 4.0)
        ]

    def test_calibration_meta_is_consistent(self, grid):
        meta = grid.meta
        mean = meta["mean_service_s"]
        assert meta["capacity_qps"] == meta["n_workers"] / mean
        assert meta["deadline_s"] == servesim.DEADLINE_FACTOR * mean
        assert meta["target_p99_s"] == servesim.TARGET_FACTOR * mean

    def test_overload_sheds_and_faults_cost_recall(self, grid):
        by_cell = {
            (row["fault_rate"], row["load_factor"]): row for row in grid.rows
        }
        clean_light, clean_heavy = by_cell[(0.0, 0.5)], by_cell[(0.0, 4.0)]
        assert clean_light["shed_fraction"] == 0.0
        assert clean_heavy["shed_fraction"] > clean_light["shed_fraction"]
        faulty_light = by_cell[(0.3, 0.5)]
        assert faulty_light["degraded_fraction"] > 0.0
        assert faulty_light["mean_recall"] < clean_light["mean_recall"]
        assert faulty_light["breaker_opens"] > 0
        assert clean_light["breaker_opens"] == 0

    def test_breaker_transitions_ride_along_in_every_row(self, grid):
        """The full state-machine tallies (open, half-open, close) are
        part of the JSON contract, not just the open count."""
        for row in grid.rows:
            assert row["breaker_half_opens"] >= 0
            assert row["breaker_closes"] >= 0
            assert row["breaker_opens"] >= row["breaker_half_opens"]
            assert row["breaker_half_opens"] >= row["breaker_closes"]
        clean = {
            (rate, load): row
            for (rate, load), row in (
                ((row["fault_rate"], row["load_factor"]), row)
                for row in grid.rows
            )
            if rate == 0.0
        }
        for row in clean.values():
            assert row["breaker_half_opens"] == row["breaker_closes"] == 0

    def test_sweep_is_deterministic(self, experiment_data, grid):
        again = servesim.sweep(experiment_data, **SWEEP_ARGS)
        assert again.rows == grid.rows
        assert again.meta == grid.meta

    def test_report_is_json_serializable_and_renders(self, grid):
        payload = grid.to_report()
        assert payload["experiment"] == "servesim"
        assert payload["rows"] == grid.rows
        json.dumps(payload)  # must be JSON-serializable as-is
        rendered = grid.render()
        assert "fault_rate" in rendered and "calibration" in rendered

    def test_checkpoint_resume_reproduces_rows(
        self, experiment_data, tmp_path, grid
    ):
        path = tmp_path / "servesim.ckpt.json"
        first = servesim.sweep(
            experiment_data, checkpoint_path=path, **SWEEP_ARGS
        )
        resumed = servesim.sweep(
            experiment_data, checkpoint_path=path, **SWEEP_ARGS
        )
        assert resumed.rows == first.rows == grid.rows

    def test_empty_grids_rejected(self, experiment_data):
        with pytest.raises(ValueError, match="at least one"):
            servesim.sweep(experiment_data, load_factors=())
        with pytest.raises(ValueError, match="at least one"):
            servesim.sweep(experiment_data, fault_rates=())
        with pytest.raises(ValueError, match="positive"):
            servesim.sweep(experiment_data, load_factors=(0.0,))

    def test_registered_as_experiment(self):
        from repro.cli import EXPERIMENT_RUNNERS

        assert EXPERIMENT_RUNNERS["servesim"] is servesim.run


class TestCli:
    def test_servesim_json_reports_identical(
        self, tmp_path, capsys, experiment_data
    ):
        # experiment_data pre-warms the TEST-scale cache; two invocations
        # must produce byte-identical reports (the CI smoke contract).
        args = [
            "servesim",
            "--scale",
            "test",
            "--seed",
            "7",
            "--loads",
            "0.5,2",
            "--fault-rates",
            "0",
            "--size-class",
            "SMALL",
        ]
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(args + ["--json", a]) == 0
        assert main(args + ["--json", b]) == 0
        out = capsys.readouterr().out
        assert "fault_rate" in out and "calibration" in out
        assert open(a, "rb").read() == open(b, "rb").read()
        payload = json.loads(open(a).read())
        assert payload["meta"]["seed"] == 7
        assert payload["meta"]["load_factors"] == [0.5, 2.0]
        assert len(payload["rows"]) == 2

    def test_bad_grids_rejected(self, capsys):
        assert main(["servesim", "--scale", "test", "--loads", "0"]) == 2
        assert "positive" in capsys.readouterr().err
        assert main(["servesim", "--scale", "test", "--fault-rates", "0.9"]) == 2
        assert "fault-rates" in capsys.readouterr().err
        assert main(["servesim", "--scale", "test", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
