"""Tests for the ablation drivers (TEST scale)."""

import pytest

from repro.experiments import ablations


class TestOverlapAblation:
    def test_serial_never_faster(self, experiment_data):
        result = ablations.run_overlap_ablation(experiment_data)
        assert result.experiment_id == "ablation_overlap"
        for row in result.rows:
            _, t_overlap, t_serial, c_overlap, c_serial = row
            assert t_serial >= t_overlap * 0.999
            assert c_serial >= c_overlap * 0.999


class TestRankingAblation:
    def test_runs_and_reports_both_rules(self, experiment_data):
        result = ablations.run_ranking_ablation(experiment_data)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[1] > 0 and row[2] > 0


class TestStopRuleAblation:
    def test_precisions_in_range(self, experiment_data):
        result = ablations.run_stop_rule_ablation(experiment_data)
        for row in result.rows:
            _, budget, p_chunks, t_budget, p_time = row
            assert 0.0 <= p_chunks <= 1.0
            assert 0.0 <= p_time <= 1.0
            assert t_budget > 0


class TestOutlierAblation:
    def test_schemes_comparable(self, experiment_data):
        """The paper: the two outlier schemes gave 'almost identical
        results'.  Assert both produce working indexes with quality in the
        same ballpark."""
        result = ablations.run_outlier_ablation(experiment_data)
        assert len(result.rows) == 2
        chunks_a, chunks_b = result.rows[0][2], result.rows[1][2]
        assert chunks_a > 0 and chunks_b > 0
        assert max(chunks_a, chunks_b) <= 5 * min(chunks_a, chunks_b)


class TestHybridAblation:
    def test_hybrid_runs_against_both_extremes(self, experiment_data):
        result = ablations.run_hybrid_ablation(experiment_data)
        labels = [row[0] for row in result.rows]
        assert labels == ["BAG/MEDIUM", "SR/MEDIUM", "HYB/MEDIUM"]
        completion = {row[0]: row[3] for row in result.rows}
        # The hybrid's whole point: completion at worst close to SR's.
        assert completion["HYB/MEDIUM"] <= completion["SR/MEDIUM"] * 1.5


class TestCacheAblation:
    def test_protocols(self, experiment_data):
        from repro.experiments.ablations import run_cache_ablation

        result = run_cache_ablation(experiment_data)
        rows = {row[0]: row for row in result.rows}
        assert rows["warm repeat"][1] < rows["cold (no cache)"][1]
        assert rows["round-robin (cleared)"][1] == pytest.approx(
            rows["cold (no cache)"][1], rel=0.02
        )


class TestChunkerZoo:
    def test_all_strategies_present(self, experiment_data):
        from repro.experiments.ablations import run_chunker_zoo

        result = run_chunker_zoo(experiment_data)
        names = [row[0] for row in result.rows]
        assert names == ["BAG", "SR", "TSVQ", "CF", "HYB", "RR", "RAND"]

    def test_locality_beats_strawmen(self, experiment_data):
        from repro.experiments.ablations import run_chunker_zoo

        rows = {row[0]: row for row in run_chunker_zoo(experiment_data).rows}
        for name in ("BAG", "SR", "TSVQ", "HYB"):
            assert rows[name][3] < rows["RAND"][3]


class TestRelatedWorkShootout:
    def test_recalls_valid(self, experiment_data):
        from repro.experiments.ablations import run_related_work_shootout

        result = run_related_work_shootout(experiment_data)
        assert len(result.rows) == 5
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0


class TestLessonsSummary:
    def test_guarantee_always_costs_more(self, experiment_data):
        from repro.experiments.ablations import run_lessons_summary

        result = run_lessons_summary(experiment_data)
        assert len(result.rows) == 12
        for row in result.rows:
            assert row[3] >= row[2]  # guarantee >= 90%-quality time
            assert row[4] >= 1.0
