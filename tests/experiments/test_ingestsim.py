"""Tests for the streaming-ingest watch-mode experiment."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ingestsim
from repro.experiments.config import get_scale


SMALL = ingestsim.IngestSimConfig(
    steps=3,
    batch_ops=16,
    n_queries=4,
    n_crashes=1,
    leaf_capacity=32,
)


@pytest.fixture(scope="module")
def scale():
    return get_scale("test")


class TestSimulate:
    def test_report_is_deterministic(self, scale, tmp_path):
        first = ingestsim.simulate(
            scale, str(tmp_path / "a"), seed=71, config=SMALL
        )
        second = ingestsim.simulate(
            scale, str(tmp_path / "b"), seed=71, config=SMALL
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seeds_differ(self, scale, tmp_path):
        first = ingestsim.simulate(
            scale, str(tmp_path / "a"), seed=71, config=SMALL
        )
        second = ingestsim.simulate(
            scale, str(tmp_path / "b"), seed=72, config=SMALL
        )
        assert json.dumps(first, sort_keys=True) != json.dumps(
            second, sort_keys=True
        )

    def test_growth_and_recovery_accounting(self, scale, tmp_path):
        report = ingestsim.simulate(
            scale, str(tmp_path / "run"), seed=71, config=SMALL
        )
        assert report["experiment"] == "ingestsim"
        assert report["final_verify_ok"] is True
        assert report["verifications_failed"] == 0
        assert report["crashes_injected"] == 1
        assert len(report["series"]) == SMALL.steps
        fractions = [row["fraction"] for row in report["series"]]
        assert fractions == sorted(fractions)
        assert report["series"][-1]["fraction"] == 1.0
        counts = [row["n_descriptors"] for row in report["series"]]
        assert counts == sorted(counts)  # deletes < inserts per step
        assert all(0.0 <= row["recall"] <= 1.0 for row in report["series"])
        assert report["total_ingest_io_s"] > 0.0
        # The report must be a pure function of (scale, seed, config):
        # no absolute paths or timestamps allowed.
        text = json.dumps(report)
        assert str(tmp_path) not in text

    def test_crash_free_run_has_no_recoveries(self, scale, tmp_path):
        quiet = ingestsim.IngestSimConfig(
            steps=2, batch_ops=16, n_queries=2, n_crashes=0, leaf_capacity=32
        )
        report = ingestsim.simulate(
            scale, str(tmp_path / "run"), seed=5, config=quiet
        )
        assert report["crashes_injected"] == 0
        assert report["unacked_batches_replayed"] == 0
        assert all(row["recoveries"] == 0 for row in report["series"])


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ingestsim.IngestSimConfig(steps=0)
        with pytest.raises(ValueError):
            ingestsim.IngestSimConfig(batch_ops=0)
        with pytest.raises(ValueError):
            ingestsim.IngestSimConfig(delete_fraction=1.5)
        with pytest.raises(ValueError):
            ingestsim.IngestSimConfig(n_crashes=-1)


class TestCrashMatrix:
    def test_selected_points_all_recover(self, scale, tmp_path):
        report = ingestsim.crash_matrix(
            scale, str(tmp_path / "matrix"), seed=11, n_points=4
        )
        assert report["all_ok"] is True
        assert len(report["results"]) == 4
        assert report["uncrashed_verify_ok"] is True
        for row in report["results"]:
            assert row["crashed"] is True
            assert row["verify_ok"] is True
            assert 0 < row["n_descriptors"] <= report["uncrashed_n_descriptors"]

    def test_matrix_is_deterministic(self, scale, tmp_path):
        first = ingestsim.crash_matrix(
            scale, str(tmp_path / "a"), seed=11, n_points=3
        )
        second = ingestsim.crash_matrix(
            scale, str(tmp_path / "b"), seed=11, n_points=3
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
