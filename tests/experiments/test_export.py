"""Tests for CSV/JSON result export."""

import csv
import io
import json

import pytest

from repro.experiments.export import to_csv, to_json, write_result
from repro.experiments.results import FigureResult, TableResult


@pytest.fixture()
def table():
    return TableResult(
        experiment_id="t", title="T", headers=["a", "b"], rows=[[1, 2.5], [3, 4.0]]
    )


@pytest.fixture()
def figure():
    return FigureResult(
        experiment_id="f", title="F", x_label="x", x_values=[0, 1],
        series={"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
    )


class TestCsv:
    def test_table(self, table):
        rows = list(csv.reader(io.StringIO(to_csv(table))))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_figure_long_form(self, figure):
        rows = list(csv.reader(io.StringIO(to_csv(figure))))
        assert rows[0] == ["x", "series", "value"]
        assert ["0", "s1", "1.0"] in rows
        assert ["1", "s2", "4.0"] in rows
        assert len(rows) == 5

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            to_csv(object())


class TestJson:
    def test_table(self, table):
        doc = json.loads(to_json(table))
        assert doc["kind"] == "table"
        assert doc["headers"] == ["a", "b"]
        assert doc["rows"] == [[1, 2.5], [3, 4.0]]

    def test_figure(self, figure):
        doc = json.loads(to_json(figure))
        assert doc["kind"] == "figure"
        assert doc["series"]["s1"] == [1.0, 2.0]
        assert doc["x_values"] == [0, 1]


class TestWrite:
    def test_write_both_formats(self, table, tmp_path):
        for fmt in ("csv", "json"):
            path = str(tmp_path / f"out.{fmt}")
            write_result(table, path, fmt=fmt)
            with open(path) as stream:
                assert stream.read()

    def test_unknown_format(self, table, tmp_path):
        with pytest.raises(ValueError, match="unknown export"):
            write_result(table, str(tmp_path / "x"), fmt="yaml")


class TestCliExport:
    def test_experiment_with_export(self, tmp_path, capsys, experiment_data):
        from repro.cli import main

        out_dir = str(tmp_path / "results")
        assert (
            main(
                [
                    "experiment", "table1", "--scale", "test",
                    "--export-dir", out_dir, "--format", "json",
                ]
            )
            == 0
        )
        import os

        doc = json.loads(open(os.path.join(out_dir, "table1.json")).read())
        assert doc["experiment_id"] == "table1"
