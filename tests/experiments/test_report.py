"""Tests for result rendering."""

import pytest

from repro.experiments.report import format_series_block, format_table
from repro.experiments.results import FigureResult, TableResult


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"], [["a", 1.234], ["bb", 10.5]], precision=1
        )
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.2" in lines[2]
        assert "10.5" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeriesBlock:
    def test_columns_per_series(self):
        text = format_series_block(
            "x", [1, 2], {"s1": [0.5, 0.6], "s2": [1.5, 1.6]}
        )
        assert "s1" in text and "s2" in text
        assert "0.500" in text


class TestFigureResult:
    def test_render(self):
        fig = FigureResult(
            experiment_id="figX",
            title="Demo",
            x_label="n",
            x_values=[0, 1],
            series={"a": [1.0, 2.0]},
        )
        text = fig.render()
        assert "[figX] Demo" in text
        assert "n" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            FigureResult(
                experiment_id="f",
                title="t",
                x_label="x",
                x_values=[0, 1],
                series={"a": [1.0]},
            )


class TestTableResult:
    def test_render(self):
        table = TableResult(
            experiment_id="tabX",
            title="Demo",
            headers=["a"],
            rows=[[1], [2]],
        )
        assert "[tabX] Demo" in table.render()
