"""End-to-end tests of the experiment drivers at TEST scale.

These assert the *shapes* the paper reports, not absolute values: who
wins, monotonicities, and orderings.  They share one session-scoped
`experiment_data` fixture, so the BAG run and all completion traces are
computed once.
"""

import numpy as np
import pytest

from repro.experiments import (
    SIZE_CLASSES,
    chunk_size_sweep,
    fig1,
    quality_figures,
    table1,
    table2,
)
from repro.experiments.data import FAMILIES


class TestPreparedData:
    def test_six_indexes(self, experiment_data):
        assert set(experiment_data.indexes) == {
            (family, size_class)
            for family in FAMILIES
            for size_class in SIZE_CLASSES
        }

    def test_retained_shared_between_families(self, experiment_data):
        for size_class in SIZE_CLASSES:
            bag = experiment_data.built("BAG", size_class).chunking
            sr = experiment_data.built("SR", size_class).chunking
            assert sr.retained is bag.retained

    def test_all_chunkings_valid(self, experiment_data):
        for built in experiment_data.indexes.values():
            built.chunking.validate()

    def test_ground_truth_for_all_classes(self, experiment_data):
        for size_class in SIZE_CLASSES:
            for workload in ("DQ", "SQ"):
                store = experiment_data.ground_truth(size_class, workload)
                assert len(store) == experiment_data.scale.n_queries

    def test_traces_cached(self, experiment_data):
        a = experiment_data.completion_traces("SR", "SMALL", "DQ")
        b = experiment_data.completion_traces("SR", "SMALL", "DQ")
        assert a is b


class TestTable1:
    def test_shape(self, experiment_data):
        result = table1.run(experiment_data)
        assert len(result.rows) == 3
        assert "table1" in result.render()

    def test_outlier_fraction_decreases_with_size(self, experiment_data):
        rows = table1.run(experiment_data).rows
        outlier_pcts = [row[3] for row in rows]
        assert outlier_pcts[0] >= outlier_pcts[1] >= outlier_pcts[2]

    def test_bag_and_sr_counts_close(self, experiment_data):
        for row in table1.run(experiment_data).rows:
            bag_chunks, sr_chunks = row[4], row[6]
            assert abs(bag_chunks - sr_chunks) <= 0.15 * bag_chunks

    def test_chunk_sizes_grow(self, experiment_data):
        rows = table1.run(experiment_data).rows
        bag_sizes = [row[5] for row in rows]
        assert bag_sizes[0] < bag_sizes[1] < bag_sizes[2]


class TestFig1:
    def test_bag_skew_vs_sr_uniformity(self, experiment_data):
        result = fig1.run(experiment_data)
        for size_class in SIZE_CLASSES:
            bag = np.asarray(result.series[f"BAG/{size_class}"])
            sr = np.asarray(result.series[f"SR/{size_class}"])
            sr_nonzero = sr[sr > 0]
            # SR chunks are uniform up to the single remainder chunk.
            assert np.sum(sr_nonzero != sr_nonzero.max()) <= 1
            # BAG's largest chunk dwarfs the SR leaf size.
            assert bag[0] > 5 * sr_nonzero.max()

    def test_descending(self, experiment_data):
        result = fig1.run(experiment_data)
        for values in result.series.values():
            arr = np.asarray(values)
            assert np.all(np.diff(arr) <= 0)


class TestQualityFigures:
    def test_fig2_bag_needs_fewer_chunks(self, experiment_data):
        result = quality_figures.run_fig2(experiment_data)
        k = experiment_data.scale.k
        for size_class in SIZE_CLASSES:
            bag = result.series[f"BAG/{size_class}"][k]
            sr = result.series[f"SR/{size_class}"][k]
            assert bag < sr

    def test_fig2_curves_monotone(self, experiment_data):
        result = quality_figures.run_fig2(experiment_data)
        for values in result.series.values():
            assert np.all(np.diff(np.asarray(values)) >= -1e-9)

    def test_fig4_sr_faster_early(self, experiment_data):
        """The paper's inversion: for the first neighbors SR is at least
        as fast as BAG on the LARGE class (the giant-chunk stall)."""
        result = quality_figures.run_fig4(experiment_data)
        early = 3
        assert (
            result.series["SR/LARGE"][early]
            <= result.series["BAG/LARGE"][early] * 1.05
        )

    def test_fig4_bag_catches_up(self, experiment_data):
        result = quality_figures.run_fig4(experiment_data)
        k = experiment_data.scale.k
        assert result.series["BAG/SMALL"][k] < result.series["SR/SMALL"][k]

    def test_fig4_starts_at_index_read_cost(self, experiment_data):
        result = quality_figures.run_fig4(experiment_data)
        for values in result.series.values():
            assert values[0] > 0.0  # the index read is never free

    def test_fig3_and_fig5_run(self, experiment_data):
        for runner in (quality_figures.run_fig3, quality_figures.run_fig5):
            result = runner(experiment_data)
            assert len(result.series) == 6


class TestTable2:
    def test_completion_ordering(self, experiment_data):
        rows = table2.run(experiment_data).rows
        # Columns: [class, BAG DQ, BAG SQ, SR DQ, SR SQ]
        for row in rows:
            assert row[1] < row[3]  # BAG completes before SR (DQ)
        # On SQ the paper also has BAG ahead everywhere; at our scale the
        # LARGE class flips (the giant chunk's huge radius forces its read
        # for far queries) — documented in EXPERIMENTS.md.  Assert the
        # paper's ordering where it reproduces and boundedness elsewhere.
        for row in rows[:2]:
            assert row[2] < row[4]
        assert rows[2][2] < rows[2][4] * 1.6
        # Larger chunks complete faster for both families.
        for col in range(1, 5):
            assert rows[0][col] > rows[2][col]


class TestChunkSizeSweep:
    def test_fig6_shape(self, experiment_data):
        result = chunk_size_sweep.run_fig6(experiment_data)
        assert result.x_values == list(
            s for s in experiment_data.scale.chunk_size_ladder
            if s <= len(experiment_data.retained("SMALL"))
        )
        # The "30 neighbors" series dominates the "1 neighbor" series.
        assert all(
            a >= b
            for a, b in zip(
                result.series["30 neighbors"], result.series["1 neighbor"]
            )
        )

    def test_fig7_runs(self, experiment_data):
        result = chunk_size_sweep.run_fig7(experiment_data)
        assert "30 neighbors" in result.series

    def test_extreme_sizes_not_optimal_for_completion(self, experiment_data):
        """The paper's valley: some interior chunk size beats (or ties)
        both ladder endpoints for finding all 30 neighbors."""
        result = chunk_size_sweep.run_fig6(experiment_data)
        series = result.series["30 neighbors"]
        interior_best = min(series[1:-1])
        assert interior_best <= min(series[0], series[-1]) + 1e-9
