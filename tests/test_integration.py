"""Cross-module integration tests.

These exercise the whole pipeline the way a user would: generate data,
form chunks with every strategy, build and persist indexes, search under
different stop rules, and measure quality — asserting the invariants that
hold regardless of strategy.
"""

import numpy as np
import pytest

from repro.chunking.bag import BagClusterer, estimate_mpi
from repro.chunking.hybrid import HybridChunker
from repro.chunking.random_chunker import RandomChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.chunk_index import ChunkIndex, build_chunk_index
from repro.core.ground_truth import GroundTruthStore, exact_knn
from repro.core.metrics import precision_at_k
from repro.core.search import ChunkSearcher
from repro.core.stop_rules import MaxChunks
from repro.workloads.queries import dataset_queries, space_queries


@pytest.fixture(scope="module")
def chunkers(small_synthetic):
    mpi = estimate_mpi(small_synthetic, sample_size=400)
    return {
        "SR": SRTreeChunker(leaf_capacity=48),
        "BAG": BagClusterer(mpi=mpi, target_clusters=120, max_passes=400),
        "RAND": RandomChunker(n_chunks=32, seed=0),
        "HYB": HybridChunker(target_chunk_size=48, seed=0),
    }


@pytest.fixture(scope="module")
def built_indexes(small_synthetic, chunkers):
    built = {}
    for name, chunker in chunkers.items():
        result = chunker.form_chunks(small_synthetic)
        result.validate()
        built[name] = (
            result,
            build_chunk_index(result.retained, result.chunk_set, name=name),
        )
    return built


class TestEveryStrategyIsSearchable:
    def test_completion_equals_sequential_scan(self, built_indexes):
        rng = np.random.default_rng(0)
        for name, (result, index) in built_indexes.items():
            searcher = ChunkSearcher(index)
            rows = rng.choice(len(result.retained), size=3, replace=False)
            for row in rows:
                query = result.retained.vectors[row].astype(float)
                got = searcher.search(query, k=8)
                assert got.completed, name
                np.testing.assert_array_equal(
                    got.neighbor_ids(),
                    exact_knn(result.retained, query, 8),
                    err_msg=name,
                )

    def test_approximate_precision_improves_with_chunks(self, built_indexes):
        """More chunks read never hurts average precision."""
        rng = np.random.default_rng(1)
        for name, (result, index) in built_indexes.items():
            searcher = ChunkSearcher(index)
            rows = rng.choice(len(result.retained), size=5, replace=False)
            precision_small, precision_large = [], []
            for row in rows:
                query = result.retained.vectors[row].astype(float)
                truth = exact_knn(result.retained, query, 10)
                few = searcher.search(query, k=10, stop_rule=MaxChunks(1))
                many = searcher.search(query, k=10, stop_rule=MaxChunks(8))
                precision_small.append(precision_at_k(few.neighbor_ids(), truth))
                precision_large.append(precision_at_k(many.neighbor_ids(), truth))
            assert np.mean(precision_large) >= np.mean(precision_small), name

    def test_locality_aware_beats_random_per_chunk(self, built_indexes):
        """SR and HYB must deliver better precision after one chunk than
        the random chunker — the premise of the whole paper."""
        rng = np.random.default_rng(2)

        def one_chunk_precision(name):
            result, index = built_indexes[name]
            searcher = ChunkSearcher(index)
            scores = []
            for row in rng.choice(len(result.retained), size=8, replace=False):
                query = result.retained.vectors[row].astype(float)
                truth = exact_knn(result.retained, query, 10)
                got = searcher.search(query, k=10, stop_rule=MaxChunks(1))
                scores.append(precision_at_k(got.neighbor_ids(), truth))
            return float(np.mean(scores))

        random_score = one_chunk_precision("RAND")
        assert one_chunk_precision("SR") > random_score
        assert one_chunk_precision("HYB") > random_score


class TestPersistenceRoundtrip:
    def test_save_search_load_search(self, built_indexes, tmp_path):
        result, index = built_indexes["SR"]
        query = result.retained.vectors[0].astype(float)
        before = ChunkSearcher(index).search(query, k=5).neighbor_ids()
        directory = str(tmp_path / "sr_index")
        index.save(directory)
        loaded = ChunkIndex.load(directory, dimensions=result.retained.dimensions)
        after = ChunkSearcher(loaded).search(query, k=5).neighbor_ids()
        np.testing.assert_array_equal(before, after)
        loaded.close()


class TestWorkloadPipeline:
    def test_dq_workload_end_to_end(self, small_synthetic, built_indexes):
        workload = dataset_queries(small_synthetic, 5, seed=3)
        result, index = built_indexes["SR"]
        truth = GroundTruthStore.compute(result.retained, workload.queries, 10)
        searcher = ChunkSearcher(index)
        for i, query in enumerate(workload.queries):
            got = searcher.search(query, k=10, true_neighbor_ids=truth.get(i))
            assert got.trace.events[-1].true_matches == 10

    def test_sq_workload_end_to_end(self, small_synthetic, built_indexes):
        workload = space_queries(small_synthetic, 5, seed=4)
        result, index = built_indexes["SR"]
        truth = GroundTruthStore.compute(result.retained, workload.queries, 10)
        searcher = ChunkSearcher(index)
        for i, query in enumerate(workload.queries):
            got = searcher.search(query, k=10, true_neighbor_ids=truth.get(i))
            assert got.completed
            assert got.trace.time_to_find(10) <= got.trace.final_elapsed_s
