"""Calibration tests: the simulated hardware must reproduce the paper's
reported timings within tolerance.  If these fail, every elapsed-time
figure drifts."""

import pytest

from repro.simio.calibration import PAPER_2005_COST_MODEL, verify_calibration


@pytest.fixture(scope="module")
def predictions():
    return verify_calibration(PAPER_2005_COST_MODEL)


class TestAnchors:
    def test_sr_chunk_read_and_process(self, predictions):
        """Paper: reading and processing an SR chunk takes ~10 ms."""
        assert predictions["sr_chunk_read_and_process_s"] == pytest.approx(
            0.010, rel=0.35
        )

    def test_giant_bag_chunk_cpu(self, predictions):
        """Paper: the largest BAG chunk took ~1.8 s to process."""
        assert predictions["giant_bag_chunk_cpu_s"] == pytest.approx(1.8, rel=0.05)

    def test_index_read(self, predictions):
        """Paper: reading the chunk index takes ~50 ms (we accept 2x)."""
        assert 0.01 <= predictions["index_read_s"] <= 0.1

    def test_table2_sr_column(self, predictions):
        """Paper Table 2, SR-tree DQ column: 45.0 / 31.3 / 25.2 s."""
        assert predictions["table2_sr_small_s"] == pytest.approx(45.0, rel=0.1)
        assert predictions["table2_sr_medium_s"] == pytest.approx(31.3, rel=0.1)
        assert predictions["table2_sr_large_s"] == pytest.approx(25.2, rel=0.1)

    def test_table2_ordering(self, predictions):
        """Larger chunks complete faster (fewer random accesses)."""
        assert (
            predictions["table2_sr_small_s"]
            > predictions["table2_sr_medium_s"]
            > predictions["table2_sr_large_s"]
        )

    def test_overlap_enabled_by_default(self):
        assert PAPER_2005_COST_MODEL.overlap_io_cpu
