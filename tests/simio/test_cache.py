"""Tests for the simulated buffer cache."""

import dataclasses

import numpy as np
import pytest

from repro.simio.cache import LruPageCache, cached_read_time_s
from repro.simio.disk_model import DiskModel
from repro.simio.pipeline import CostModel


class TestLruPageCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            LruPageCache(0)

    def test_hit_and_miss_accounting(self):
        cache = LruPageCache(4)
        assert not cache.touch(1)
        assert cache.touch(1)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = LruPageCache(2)
        cache.touch(1)
        cache.touch(2)
        cache.touch(1)  # 1 is now most recent
        cache.touch(3)  # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_clear(self):
        cache = LruPageCache(2)
        cache.touch(1)
        cache.clear()
        assert len(cache) == 0
        assert 1 not in cache


class TestCachedReads:
    @pytest.fixture()
    def disk(self):
        return DiskModel(
            seek_time_s=0.01,
            rotational_latency_s=0.0,
            transfer_rate_bytes_per_s=1e6,
            page_bytes=1000,
        )

    def test_cold_read_full_price(self, disk):
        cache = LruPageCache(100)
        seconds, missed = cached_read_time_s(disk, cache, 0, 5)
        assert missed == 5
        assert seconds == pytest.approx(0.01 + 0.005)

    def test_warm_read_free(self, disk):
        cache = LruPageCache(100)
        cached_read_time_s(disk, cache, 0, 5)
        seconds, missed = cached_read_time_s(disk, cache, 0, 5)
        assert missed == 0
        assert seconds == 0.0

    def test_partial_hit(self, disk):
        cache = LruPageCache(100)
        cached_read_time_s(disk, cache, 0, 3)  # pages 0-2 cached
        seconds, missed = cached_read_time_s(disk, cache, 0, 5)
        assert missed == 2
        assert seconds == pytest.approx(0.01 + 0.002)

    def test_validation(self, disk):
        with pytest.raises(ValueError):
            cached_read_time_s(disk, LruPageCache(4), 0, 0)


class TestCachedSearch:
    def test_repeated_query_faster_with_cache(self, tiny_collection):
        """Re-running the same query against a cached index is cheaper —
        the buffering effect the paper's round-robin protocol avoids."""
        from repro.chunking.srtree_chunker import SRTreeChunker
        from repro.core.chunk_index import build_chunk_index
        from repro.core.search import ChunkSearcher
        from repro.simio.calibration import PAPER_2005_COST_MODEL

        chunking = SRTreeChunker(leaf_capacity=8).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        cache = LruPageCache(capacity_pages=10_000)
        cached_model = dataclasses.replace(PAPER_2005_COST_MODEL, cache=cache)
        searcher = ChunkSearcher(index, cost_model=cached_model)
        query = tiny_collection.vectors[0].astype(float)

        cold = searcher.search(query, k=5)
        warm = searcher.search(query, k=5)
        assert warm.elapsed_s < cold.elapsed_s
        np.testing.assert_array_equal(cold.neighbor_ids(), warm.neighbor_ids())
        assert cache.hit_rate > 0.0

    def test_no_cache_is_deterministic(self, tiny_collection):
        from repro.chunking.srtree_chunker import SRTreeChunker
        from repro.core.chunk_index import build_chunk_index
        from repro.core.search import ChunkSearcher

        chunking = SRTreeChunker(leaf_capacity=8).form_chunks(tiny_collection)
        index = build_chunk_index(chunking.retained, chunking.chunk_set)
        searcher = ChunkSearcher(index)
        query = tiny_collection.vectors[0].astype(float)
        assert (
            searcher.search(query, k=5).elapsed_s
            == searcher.search(query, k=5).elapsed_s
        )
