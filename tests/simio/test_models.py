"""Tests for the disk and CPU cost models and the clocks."""

import pytest

from repro.simio.clock import SimulatedClock, WallClock
from repro.simio.cpu_model import CpuModel
from repro.simio.disk_model import DiskModel


class TestDiskModel:
    def test_positioning(self):
        disk = DiskModel(seek_time_s=0.003, rotational_latency_s=0.004)
        assert disk.positioning_time_s == pytest.approx(0.007)

    def test_transfer_linear(self):
        disk = DiskModel(transfer_rate_bytes_per_s=1e6)
        assert disk.transfer_time_s(1_000_000) == pytest.approx(1.0)
        assert disk.transfer_time_s(0) == 0.0

    def test_random_read(self):
        disk = DiskModel(
            seek_time_s=0.01,
            rotational_latency_s=0.0,
            transfer_rate_bytes_per_s=1e6,
            page_bytes=1000,
        )
        assert disk.random_read_time_s(5) == pytest.approx(0.01 + 0.005)

    def test_sequential_read(self):
        disk = DiskModel(
            seek_time_s=0.01, rotational_latency_s=0.0,
            transfer_rate_bytes_per_s=1e6,
        )
        assert disk.sequential_read_time_s(2_000_000) == pytest.approx(2.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(seek_time_s=-1.0)
        with pytest.raises(ValueError):
            DiskModel(transfer_rate_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            DiskModel().random_read_time_s(0)
        with pytest.raises(ValueError):
            DiskModel().transfer_time_s(-5)

    def test_larger_reads_cost_more(self):
        disk = DiskModel()
        assert disk.random_read_time_s(10) > disk.random_read_time_s(1)


class TestCpuModel:
    def test_linear_in_descriptors(self):
        cpu = CpuModel(distance_time_s=1e-6, chunk_overhead_s=1e-4)
        assert cpu.chunk_processing_time_s(0) == pytest.approx(1e-4)
        assert cpu.chunk_processing_time_s(1000) == pytest.approx(1.1e-3)

    def test_ranking_linear_in_chunks(self):
        cpu = CpuModel(ranking_time_per_chunk_s=2e-6)
        assert cpu.ranking_time_s(500) == pytest.approx(1e-3)
        assert cpu.ranking_time_s(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel(distance_time_s=-1.0)
        with pytest.raises(ValueError):
            CpuModel().chunk_processing_time_s(-1)
        with pytest.raises(ValueError):
            CpuModel().ranking_time_s(-1)


class TestClocks:
    def test_simulated_clock_advances(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_simulated_clock_advance_to(self):
        clock = SimulatedClock(start=1.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0
        with pytest.raises(ValueError):
            clock.advance_to(2.0)

    def test_simulated_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)

    def test_wall_clock_moves_forward(self):
        clock = WallClock()
        a = clock.now()
        clock.advance(100.0)  # no-op for wall clocks
        b = clock.now()
        assert b >= a
        assert b < 1.0  # advancing simulated work did not jump wall time
