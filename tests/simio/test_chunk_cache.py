"""Tests for the simulated cross-query chunk cache."""

import dataclasses

import pytest

from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.simio.cache import LruPageCache
from repro.simio.chunk_cache import (
    DEFAULT_MEMCPY_BYTES_PER_S,
    LruChunkCache,
    chunk_read_time_s,
)
from repro.simio.disk_model import DiskModel
from repro.simio.pipeline import CostModel

DISK = DiskModel()
PAGE = DISK.page_bytes


class TestLruSemantics:
    def test_miss_then_hit(self):
        cache = LruChunkCache(capacity_bytes=10 * PAGE)
        assert cache.touch(0, PAGE) is False
        assert cache.touch(0, PAGE) is True
        assert (cache.hits, cache.misses) == (1, 1)
        assert 0 in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = LruChunkCache(capacity_bytes=2 * PAGE)
        cache.touch(0, PAGE)
        cache.touch(8, PAGE)
        cache.touch(0, PAGE)  # refresh 0: now 8 is the LRU victim
        cache.touch(16, PAGE)  # evicts 8
        assert 0 in cache and 16 in cache and 8 not in cache
        assert cache.evictions == 1
        assert cache.used_bytes == 2 * PAGE

    def test_oversized_chunk_not_retained(self):
        cache = LruChunkCache(capacity_bytes=PAGE)
        cache.touch(0, PAGE)
        assert cache.touch(8, 3 * PAGE) is False
        # The oversized chunk is charged as a miss but never resident;
        # prior residents it displaced stay gone.
        assert 8 not in cache
        assert cache.used_bytes <= cache.capacity_bytes

    def test_hit_rate_and_stats(self):
        cache = LruChunkCache(capacity_bytes=10 * PAGE, seed=7)
        assert cache.hit_rate == 0.0
        cache.touch(0, PAGE)
        cache.touch(0, PAGE)
        cache.touch(8, PAGE)
        assert cache.hit_rate == pytest.approx(1.0 / 3.0)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["resident_chunks"] == 2
        assert stats["seed"] == 7

    def test_clear(self):
        cache = LruChunkCache(capacity_bytes=10 * PAGE)
        cache.touch(0, PAGE)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0
        # Counters survive a clear: they describe the workload, not the
        # resident set.
        assert cache.misses == 1

    def test_determinism(self):
        touches = [(0, PAGE), (8, 2 * PAGE), (0, PAGE), (24, PAGE), (8, 2 * PAGE)]
        runs = []
        for _ in range(2):
            cache = LruChunkCache(capacity_bytes=3 * PAGE)
            outcomes = [cache.touch(k, n) for k, n in touches]
            runs.append((outcomes, cache.hits, cache.misses, cache.evictions))
        assert runs[0] == runs[1]


class TestPayloads:
    def test_attach_requires_residency(self):
        cache = LruChunkCache(capacity_bytes=2 * PAGE)
        assert cache.attach(0, "payload") is False  # never touched
        cache.touch(0, PAGE)
        assert cache.attach(0, "payload") is True
        assert cache.peek_payload(0) == "payload"

    def test_peek_does_not_touch_lru_state(self):
        cache = LruChunkCache(capacity_bytes=2 * PAGE)
        cache.touch(0, PAGE)
        cache.touch(8, PAGE)
        hits = cache.hits
        cache.peek_payload(0)  # must NOT refresh 0
        assert cache.hits == hits
        cache.touch(16, PAGE)  # evicts 0, the true LRU entry
        assert 0 not in cache

    def test_payload_dies_with_eviction(self):
        cache = LruChunkCache(capacity_bytes=PAGE)
        cache.touch(0, PAGE)
        cache.attach(0, "payload")
        cache.touch(8, PAGE)  # evicts 0
        assert cache.peek_payload(0) is None


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LruChunkCache(capacity_bytes=0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LruChunkCache(capacity_bytes=PAGE, memcpy_bytes_per_s=0.0)

    def test_rejects_negative_chunk_size(self):
        cache = LruChunkCache(capacity_bytes=PAGE)
        with pytest.raises(ValueError, match="negative"):
            cache.touch(0, -1)

    def test_cost_model_rejects_both_caches(self):
        with pytest.raises(ValueError, match="not both"):
            dataclasses.replace(
                PAPER_2005_COST_MODEL,
                cache=LruPageCache(capacity_pages=8),
                chunk_cache=LruChunkCache(capacity_bytes=PAGE),
            )

    def test_cost_model_accepts_chunk_cache_alone(self):
        model = dataclasses.replace(
            PAPER_2005_COST_MODEL,
            chunk_cache=LruChunkCache(capacity_bytes=PAGE),
        )
        assert isinstance(model, CostModel)


class TestReadCharges:
    def test_cold_read_pays_disk_price(self):
        cache = LruChunkCache(capacity_bytes=100 * PAGE)
        seconds, hit = chunk_read_time_s(DISK, cache, 0, 3)
        assert not hit
        assert seconds == DISK.random_read_time_s(3)

    def test_warm_read_pays_memcpy_price(self):
        cache = LruChunkCache(capacity_bytes=100 * PAGE)
        chunk_read_time_s(DISK, cache, 0, 3)
        seconds, hit = chunk_read_time_s(DISK, cache, 0, 3)
        assert hit
        assert seconds == 3 * PAGE / DEFAULT_MEMCPY_BYTES_PER_S
        # Warm is cheap but never free: timings must stay ordered.
        assert 0.0 < seconds < DISK.random_read_time_s(3)

    def test_rejects_empty_read(self):
        cache = LruChunkCache(capacity_bytes=PAGE)
        with pytest.raises(ValueError, match="at least one page"):
            chunk_read_time_s(DISK, cache, 0, 0)
