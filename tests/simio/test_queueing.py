"""Tests for the multi-server queueing timeline (WorkerPool)."""

import pytest

from repro.simio.queueing import WorkerPool


class TestAssignment:
    def test_earliest_free_worker_wins(self):
        pool = WorkerPool(2)
        w0, s0, f0 = pool.assign(0.0, 2.0)
        w1, s1, f1 = pool.assign(0.0, 1.0)
        assert (w0, s0, f0) == (0, 0.0, 2.0)
        assert (w1, s1, f1) == (1, 0.0, 1.0)
        # Worker 1 frees first (t=1.0), so it takes the next assignment.
        w2, s2, f2 = pool.assign(0.5, 1.0)
        assert (w2, s2, f2) == (1, 1.0, 2.0)

    def test_tie_breaks_by_worker_id(self):
        pool = WorkerPool(3)
        assert pool.assign(0.0, 1.0)[0] == 0
        assert pool.assign(0.0, 1.0)[0] == 1
        assert pool.assign(0.0, 1.0)[0] == 2
        # All free at t=1.0: the smallest id wins again.
        assert pool.assign(1.0, 1.0)[0] == 0

    def test_idle_worker_starts_immediately(self):
        pool = WorkerPool(1)
        pool.assign(0.0, 1.0)
        worker, start, finish = pool.assign(5.0, 2.0)
        assert (worker, start, finish) == (0, 5.0, 7.0)

    def test_wait_accounting(self):
        pool = WorkerPool(1)
        pool.assign(0.0, 3.0)
        _, start, _ = pool.assign(1.0, 1.0)  # waits 3.0 - 1.0 = 2.0
        assert start == 3.0
        assert pool.total_wait_s == 2.0
        assert pool.busy_s == 4.0
        assert pool.n_assigned == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            WorkerPool(1).assign(0.0, -0.1)

    def test_determinism(self):
        def schedule():
            pool = WorkerPool(3)
            jobs = [(i * 0.3, 0.5 + 0.1 * (i % 4)) for i in range(20)]
            return [pool.assign(now, dur) for now, dur in jobs]

        assert schedule() == schedule()


class TestIntrospection:
    def test_idle_workers(self):
        pool = WorkerPool(2)
        assert pool.idle_workers(0.0) == 2
        pool.assign(0.0, 2.0)
        assert pool.idle_workers(0.0) == 1
        assert pool.idle_workers(1.9) == 1
        assert pool.idle_workers(2.0) == 2

    def test_free_times_sorted(self):
        pool = WorkerPool(3)
        pool.assign(0.0, 3.0)
        pool.assign(0.0, 1.0)
        assert pool.free_times() == [0.0, 1.0, 3.0]

    def test_earliest_start(self):
        pool = WorkerPool(1)
        pool.assign(0.0, 2.0)
        assert pool.earliest_start(1.0) == 2.0
        assert pool.earliest_start(5.0) == 5.0

    def test_utilization(self):
        pool = WorkerPool(2)
        pool.assign(0.0, 1.0)
        pool.assign(0.0, 3.0)
        assert pool.utilization(4.0) == 4.0 / 8.0
        with pytest.raises(ValueError, match="horizon"):
            pool.utilization(0.0)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError, match="worker"):
            WorkerPool(0)


class TestTruncate:
    def test_reclaims_the_unconsumed_tail(self):
        pool = WorkerPool(1)
        worker, _, finish = pool.assign(0.0, 4.0)
        assert pool.busy_s == 4.0
        freed = pool.truncate(worker, 1.5, expected_free_s=finish)
        assert freed == 2.5
        assert pool.busy_s == 1.5
        assert pool.free_times() == [1.5]

    def test_freed_capacity_is_reusable(self):
        pool = WorkerPool(1)
        worker, _, finish = pool.assign(0.0, 4.0)
        pool.truncate(worker, 1.0, expected_free_s=finish)
        _, start, _ = pool.assign(0.5, 1.0)
        assert start == 1.0

    def test_declines_when_worker_moved_on(self):
        """A cancelled assignment whose worker already accepted later
        work must not be rewritten — the free time no longer matches."""
        pool = WorkerPool(1)
        worker, _, first_finish = pool.assign(0.0, 2.0)
        pool.assign(0.0, 3.0)  # queued behind; free time now 5.0
        assert pool.truncate(worker, 1.0, expected_free_s=first_finish) == 0.0
        assert pool.busy_s == 5.0

    def test_declines_when_cut_is_past_the_finish(self):
        pool = WorkerPool(2)
        worker, _, finish = pool.assign(0.0, 1.0)
        assert pool.truncate(worker, 1.0, expected_free_s=finish) == 0.0
        assert pool.truncate(worker, 2.0, expected_free_s=finish) == 0.0
        assert pool.busy_s == 1.0

    def test_unknown_worker_rejected(self):
        pool = WorkerPool(1)
        pool.assign(0.0, 1.0)
        with pytest.raises(ValueError, match="unknown worker"):
            pool.truncate(7, 0.5, expected_free_s=1.0)

    def test_negative_cut_rejected(self):
        pool = WorkerPool(1)
        worker, _, finish = pool.assign(0.0, 1.0)
        with pytest.raises(ValueError):
            pool.truncate(worker, -0.1, expected_free_s=finish)
