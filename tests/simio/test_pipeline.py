"""Tests for the I/O-CPU overlap pipeline simulation."""

import dataclasses

import pytest

from repro.simio.cpu_model import CpuModel
from repro.simio.disk_model import DiskModel
from repro.simio.pipeline import CostModel, PipelineSimulator


def make_model(io_per_page=0.010, cpu_per_desc=0.001, overlap=True):
    """A model with easily hand-computable costs: positioning folded into
    the per-page transfer, zero chunk overhead."""
    return CostModel(
        disk=DiskModel(
            seek_time_s=0.0,
            rotational_latency_s=0.0,
            transfer_rate_bytes_per_s=1000 / io_per_page,  # 1000-byte pages
            page_bytes=1000,
        ),
        cpu=CpuModel(
            distance_time_s=cpu_per_desc,
            chunk_overhead_s=0.0,
            ranking_time_per_chunk_s=0.0,
        ),
        overlap_io_cpu=overlap,
    )


class TestSerialTimeline:
    def test_sum_of_io_and_cpu(self):
        sim = make_model(overlap=False).simulator()
        start = sim.start_query(n_chunks=2, index_bytes=0)
        assert start == 0.0
        t1 = sim.process_chunk(page_count=1, n_descriptors=10)
        assert t1 == pytest.approx(0.010 + 0.010)
        t2 = sim.process_chunk(page_count=2, n_descriptors=5)
        assert t2 == pytest.approx(t1 + 0.020 + 0.005)


class TestOverlappedTimeline:
    def test_io_bound_pipeline(self):
        """When io > cpu per chunk, steady state is io-bound: chunk i
        completes at (i+1)*io + cpu."""
        sim = make_model(io_per_page=0.010, cpu_per_desc=0.001).simulator()
        sim.start_query(n_chunks=4, index_bytes=0)
        times = [sim.process_chunk(1, 2) for _ in range(4)]
        for i, t in enumerate(times):
            assert t == pytest.approx((i + 1) * 0.010 + 0.002)

    def test_cpu_bound_pipeline(self):
        """When cpu > io, steady state is cpu-bound: chunk i completes at
        io + (i+1)*cpu."""
        sim = make_model(io_per_page=0.001, cpu_per_desc=0.010).simulator()
        sim.start_query(n_chunks=3, index_bytes=0)
        times = [sim.process_chunk(1, 1) for _ in range(3)]
        for i, t in enumerate(times):
            assert t == pytest.approx(0.001 + (i + 1) * 0.010)

    def test_overlap_never_slower_than_serial(self):
        overlap = make_model(overlap=True).simulator()
        serial = make_model(overlap=False).simulator()
        for sim in (overlap, serial):
            sim.start_query(n_chunks=5, index_bytes=1000)
        chunks = [(1, 10), (3, 2), (2, 8), (1, 1), (4, 20)]
        for pages, descs in chunks:
            t_overlap = overlap.process_chunk(pages, descs)
            t_serial = serial.process_chunk(pages, descs)
        assert t_overlap <= t_serial

    def test_giant_chunk_stalls_pipeline(self):
        """A single huge chunk delays every later result — the paper's
        explanation for BAG's slow early quality (section 5.5)."""
        model = make_model(io_per_page=0.010, cpu_per_desc=0.001)
        uniform = model.simulator()
        uniform.start_query(2, 0)
        uniform.process_chunk(1, 10)
        t_uniform = uniform.process_chunk(1, 10)

        skewed = model.simulator()
        skewed.start_query(2, 0)
        skewed.process_chunk(1, 1000)  # giant first chunk: 1 s of CPU
        t_skewed = skewed.process_chunk(1, 10)
        assert t_skewed > t_uniform + 0.9

    def test_double_buffering_limits_prefetch(self):
        """The read of chunk i+1 cannot start before chunk i-1 finished
        processing (only two buffers)."""
        sim = make_model(io_per_page=0.001, cpu_per_desc=0.010).simulator()
        sim.start_query(3, 0)
        sim.process_chunk(1, 10)  # C0 = 0.001 + 0.1
        sim.process_chunk(1, 10)  # R1 = 0.002, C1 = 0.201
        t3 = sim.process_chunk(1, 10)
        # R2 = max(R1, C0) + io = 0.101 + 0.001; C2 = max(R2, C1) + 0.1.
        assert t3 == pytest.approx(0.301)


class TestDegradedTimeline:
    def test_extra_io_extends_the_read(self):
        """Fault latency (retries, backoff, spikes) rides on the read
        stage: the chunk completes exactly extra_io_s later."""
        model = make_model(io_per_page=0.010, cpu_per_desc=0.001)
        clean = model.simulator()
        clean.start_query(1, 0)
        t_clean = clean.process_chunk(1, 10)

        faulted = model.simulator()
        faulted.start_query(1, 0)
        t_faulted = faulted.process_chunk(1, 10, extra_io_s=0.25)
        assert t_faulted == pytest.approx(t_clean + 0.25)

    def test_zero_extra_io_is_bit_identical(self):
        model = make_model()
        a, b = model.simulator(), model.simulator()
        for sim in (a, b):
            sim.start_query(3, 500)
        for pages, descs in [(1, 10), (2, 4), (1, 7)]:
            t_a = a.process_chunk(pages, descs)
            t_b = b.process_chunk(pages, descs, extra_io_s=0.0)
            assert t_a == t_b  # exactly, not approximately

    def test_skip_charges_pure_io(self):
        """A skipped chunk pays its failed-attempt I/O but no CPU."""
        sim = make_model(io_per_page=0.010, cpu_per_desc=0.001,
                         overlap=False).simulator()
        sim.start_query(2, 0)
        t1 = sim.skip_chunk(0.030)
        assert t1 == pytest.approx(0.030)
        t2 = sim.process_chunk(1, 10)
        assert t2 == pytest.approx(0.030 + 0.010 + 0.010)
        assert sim.chunks_processed == 2

    def test_skip_in_overlap_mode_occupies_read_stage(self):
        """Under overlap, the failed reads serialize with other reads but
        the processing stage stays free."""
        sim = make_model(io_per_page=0.010, cpu_per_desc=0.001).simulator()
        sim.start_query(3, 0)
        sim.process_chunk(1, 10)          # R0 = 0.010, C0 = 0.020
        t_skip = sim.skip_chunk(0.040)    # R1 = 0.050, no CPU
        assert t_skip == pytest.approx(0.050)
        t2 = sim.process_chunk(1, 10)
        # R2 = max(R1, C0) + 0.010 = 0.060; C2 = max(R2, C1) + 0.010.
        assert t2 == pytest.approx(0.070)

    def test_skip_validation(self):
        sim = make_model().simulator()
        with pytest.raises(RuntimeError):
            sim.skip_chunk(0.01)
        sim.start_query(1, 0)
        with pytest.raises(ValueError):
            sim.skip_chunk(-0.01)
        with pytest.raises(ValueError):
            sim.process_chunk(1, 1, extra_io_s=-0.5)


class TestProtocol:
    def test_start_query_charges_index_read(self):
        model = make_model()
        sim = model.simulator()
        t = sim.start_query(n_chunks=10, index_bytes=5000)
        assert t == pytest.approx(model.disk.sequential_read_time_s(5000))

    def test_start_query_only_once(self):
        sim = make_model().simulator()
        sim.start_query(1, 0)
        with pytest.raises(RuntimeError):
            sim.start_query(1, 0)

    def test_chunk_before_start_rejected(self):
        with pytest.raises(RuntimeError):
            make_model().simulator().process_chunk(1, 1)

    def test_elapsed_tracks_latest(self):
        sim = make_model().simulator()
        assert sim.elapsed == 0.0
        sim.start_query(1, 1000)
        assert sim.elapsed > 0.0
        before = sim.elapsed
        sim.process_chunk(1, 5)
        assert sim.elapsed > before
        assert sim.chunks_processed == 1
