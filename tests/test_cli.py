"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_RUNNERS, main


class TestListAndDemo:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out.split()
        assert "table1" in out and "fig7" in out
        assert sorted(out) == sorted(EXPERIMENT_RUNNERS)

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "exact search" in out
        assert "precision@10" in out

    def test_collection_stats(self, capsys):
        assert main(["collection", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "descriptors" in out
        assert "dimensions:      24" in out


class TestExperimentCommand:
    def test_single_experiment(self, capsys, experiment_data):
        # experiment_data fixture pre-warms the TEST scale cache, so this
        # only renders.
        assert main(["experiment", "table1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "[table1]" in out
        assert "SMALL" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "bogus", "--scale", "test"])

    def test_unknown_scale_rejected(self, capsys):
        assert main(["experiment", "table1", "--scale", "galactic"]) == 2
        assert "unknown scale" in capsys.readouterr().err


class TestFileWorkflow:
    def test_generate_build_query_image_query(self, tmp_path, capsys):
        from repro.cli import main

        coll = str(tmp_path / "coll.dat")
        sysdir = str(tmp_path / "sys")
        assert main(["generate", coll, "--scale", "test"]) == 0
        assert main(["build", coll, sysdir, "--chunker", "sr"]) == 0
        assert main(["query", sysdir, coll, "--row", "3", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out
        assert main(["image-query", sysdir, coll, "--image", "1", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "query image 1" in out

    def test_query_row_out_of_range(self, tmp_path, capsys):
        from repro.cli import main

        coll = str(tmp_path / "c.dat")
        sysdir = str(tmp_path / "s")
        main(["generate", coll, "--scale", "test"])
        main(["build", coll, sysdir])
        assert main(["query", sysdir, coll, "--row", "99999999"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_build_with_each_chunker(self, tmp_path):
        from repro.cli import main

        coll = str(tmp_path / "c2.dat")
        main(["generate", coll, "--scale", "test"])
        for chunker in ("hybrid", "tsvq"):
            sysdir = str(tmp_path / f"sys-{chunker}")
            assert main(
                ["build", coll, sysdir, "--chunker", chunker, "--chunk-size", "64"]
            ) == 0


class TestIngestSimCommand:
    def test_watch_mode_with_json(self, tmp_path, capsys):
        import json

        report_path = str(tmp_path / "out.json")
        assert (
            main(
                [
                    "ingestsim",
                    "--scale",
                    "test",
                    "--steps",
                    "2",
                    "--json",
                    report_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "final verify ok: True" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["experiment"] == "ingestsim"
        assert len(report["series"]) == 2

    def test_crash_matrix_mode(self, capsys):
        assert main(["ingestsim", "--scale", "test", "--crash-matrix", "3"]) == 0
        out = capsys.readouterr().out
        assert "all recoveries consistent: True" in out

    def test_bad_config_rejected(self, capsys):
        assert main(["ingestsim", "--scale", "test", "--steps", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestVerifyIndexCommand:
    def test_verify_after_ingest(self, tmp_path, capsys):
        workdir = str(tmp_path / "stream")
        assert (
            main(
                [
                    "ingestsim",
                    "--scale",
                    "test",
                    "--steps",
                    "2",
                    "--workdir",
                    workdir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["verify-index", workdir]) == 0
        out = capsys.readouterr().out
        assert "index ok" in out

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["verify-index", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "verification failed" in err
