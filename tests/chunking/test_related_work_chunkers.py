"""Tests for the related-work chunkers: TSVQ and CF (Clindex)."""

import numpy as np
import pytest

from repro.chunking.clindex import ClindexChunker
from repro.chunking.random_chunker import RandomChunker
from repro.chunking.tsvq import TsvqChunker
from repro.core.dataset import DescriptorCollection


class TestTsvq:
    def test_validation(self):
        with pytest.raises(ValueError):
            TsvqChunker(max_chunk_size=0)
        with pytest.raises(ValueError):
            TsvqChunker(max_chunk_size=10, lloyd_iterations=0)

    def test_size_bound_respected(self, small_synthetic):
        result = TsvqChunker(max_chunk_size=100, seed=1).form_chunks(
            small_synthetic
        )
        result.validate()
        assert result.chunk_set.sizes().max() <= 100

    def test_partition(self, tiny_collection):
        result = TsvqChunker(max_chunk_size=15).form_chunks(tiny_collection)
        assert result.chunk_set.is_partition()

    def test_finds_natural_clusters(self, tiny_collection):
        """Three well-separated 20-point clusters with a bound of 25
        should come out as exactly the three clusters."""
        result = TsvqChunker(max_chunk_size=25, seed=0).form_chunks(
            tiny_collection
        )
        assert result.n_chunks == 3
        for chunk in result.chunk_set:
            clusters = set(int(r) // 20 for r in chunk.member_rows)
            assert len(clusters) == 1

    def test_duplicate_points_split(self):
        """Degenerate data (all identical) must still terminate via the
        median fallback split."""
        col = DescriptorCollection.from_vectors(np.ones((40, 3)))
        result = TsvqChunker(max_chunk_size=8, seed=0).form_chunks(col)
        result.validate()
        assert result.chunk_set.sizes().max() <= 8

    def test_locality_beats_random(self, small_synthetic):
        tsvq = TsvqChunker(max_chunk_size=64, seed=0).form_chunks(small_synthetic)
        rand = RandomChunker(n_chunks=tsvq.n_chunks, seed=0).form_chunks(
            small_synthetic
        )
        assert tsvq.chunk_set.radii().mean() < rand.chunk_set.radii().mean()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TsvqChunker(max_chunk_size=4).form_chunks(
                DescriptorCollection.empty(2)
            )


class TestClindex:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClindexChunker(max_chunk_size=0)

    def test_partition(self, tiny_collection):
        result = ClindexChunker(max_chunk_size=30).form_chunks(tiny_collection)
        result.validate()
        assert result.chunk_set.is_partition()

    def test_size_cap_soft(self, small_synthetic):
        """CF stops absorbing once the cap is reached mid-cell, so a chunk
        may overshoot by at most one cell's population."""
        cap = 120
        result = ClindexChunker(max_chunk_size=cap).form_chunks(small_synthetic)
        build = result.build_info
        assert build["occupied_cells"] >= result.n_chunks

    def test_dense_cells_processed_first(self, tiny_collection):
        """The largest chunk contains the densest cell's descriptors."""
        result = ClindexChunker(max_chunk_size=25).form_chunks(tiny_collection)
        sizes = result.chunk_set.sizes()
        assert sizes.max() >= sizes.mean()

    def test_chunks_are_connected_cell_unions(self, small_synthetic):
        """The structural fact behind the paper's critique: every CF chunk
        is a union of grid cells connected under flip-one-dimension
        adjacency — an arbitrary shape, not a sphere."""
        chunker = ClindexChunker(max_chunk_size=150)
        signatures = chunker._cell_signatures(small_synthetic)
        result = chunker.form_chunks(small_synthetic)
        for chunk in result.chunk_set:
            cells = {tuple(signatures[int(r)]) for r in chunk.member_rows}
            if len(cells) == 1:
                continue
            # BFS over Hamming-1 adjacency must reach every cell.
            cells = set(cells)
            start = next(iter(cells))
            seen = {start}
            frontier = [start]
            while frontier:
                cell = frontier.pop()
                for dim in range(len(cell)):
                    flipped = list(cell)
                    flipped[dim] ^= 1
                    flipped = tuple(flipped)
                    if flipped in cells and flipped not in seen:
                        seen.add(flipped)
                        frontier.append(flipped)
            assert seen == cells

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClindexChunker(max_chunk_size=4).form_chunks(
                DescriptorCollection.empty(2)
            )

    def test_searchable(self, tiny_collection):
        from repro.core.chunk_index import build_chunk_index
        from repro.core.ground_truth import exact_knn
        from repro.core.search import ChunkSearcher

        result = ClindexChunker(max_chunk_size=20).form_chunks(tiny_collection)
        index = build_chunk_index(result.retained, result.chunk_set)
        query = tiny_collection.vectors[4].astype(float)
        got = ChunkSearcher(index).search(query, k=6)
        np.testing.assert_array_equal(
            got.neighbor_ids(), exact_knn(tiny_collection, query, 6)
        )
