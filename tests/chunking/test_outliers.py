"""Tests for the standalone outlier filters."""

import numpy as np
import pytest

from repro.chunking.outliers import (
    apply_outlier_rows,
    norm_fraction_outliers,
    norm_threshold_outliers,
)
from repro.core.dataset import DescriptorCollection


@pytest.fixture()
def norm_ladder():
    """Five descriptors with norms 1..5."""
    vectors = np.diag([1.0, 2.0, 3.0, 4.0, 5.0]).astype(np.float32)
    return DescriptorCollection.from_vectors(vectors)


class TestNormThreshold:
    def test_removes_above_constant(self, norm_ladder):
        rows = norm_threshold_outliers(norm_ladder, max_norm=3.5)
        assert list(rows) == [3, 4]

    def test_no_outliers(self, norm_ladder):
        assert norm_threshold_outliers(norm_ladder, max_norm=100.0).size == 0

    def test_invalid_threshold(self, norm_ladder):
        with pytest.raises(ValueError):
            norm_threshold_outliers(norm_ladder, max_norm=0.0)


class TestNormFraction:
    def test_removes_target_fraction(self, norm_ladder):
        rows = norm_fraction_outliers(norm_ladder, fraction=0.4)
        assert list(rows) == [3, 4]

    def test_zero_fraction(self, norm_ladder):
        assert norm_fraction_outliers(norm_ladder, fraction=0.0).size == 0

    def test_rounding(self, norm_ladder):
        rows = norm_fraction_outliers(norm_ladder, fraction=0.5)  # 2.5 -> 2
        assert rows.size == 2

    def test_invalid_fraction(self, norm_ladder):
        with pytest.raises(ValueError):
            norm_fraction_outliers(norm_ladder, fraction=1.0)

    def test_equivalence_with_threshold(self, small_synthetic):
        """Removing the top fraction equals removing above the implied
        norm constant — the calibration property."""
        frac_rows = norm_fraction_outliers(small_synthetic, fraction=0.1)
        norms = small_synthetic.norms()
        implied_constant = norms[frac_rows].min()
        thr_rows = norm_threshold_outliers(
            small_synthetic, max_norm=implied_constant - 1e-12
        )
        # Threshold form may include norm ties; fraction rows are a subset.
        assert set(frac_rows.tolist()) <= set(thr_rows.tolist())


class TestApply:
    def test_apply_removes_rows(self, norm_ladder):
        retained = apply_outlier_rows(norm_ladder, np.array([0, 4]))
        assert len(retained) == 3
        assert list(retained.ids) == [1, 2, 3]

    def test_apply_empty(self, norm_ladder):
        retained = apply_outlier_rows(norm_ladder, np.empty(0, dtype=np.intp))
        assert len(retained) == 5
