"""Tests for the SR-tree, round-robin, random and hybrid chunkers."""

import numpy as np
import pytest

from repro.chunking.hybrid import HybridChunker
from repro.chunking.random_chunker import RandomChunker
from repro.chunking.round_robin import RoundRobinChunker
from repro.chunking.srtree_chunker import SRTreeChunker
from repro.core.dataset import DescriptorCollection


class TestSRTreeChunker:
    def test_uniform_sizes(self, tiny_collection):
        result = SRTreeChunker(leaf_capacity=16).form_chunks(tiny_collection)
        result.validate()
        sizes = result.chunk_set.sizes()
        assert sizes.max() <= 16
        assert (sizes != 16).sum() <= 1  # one remainder chunk at most

    def test_no_outliers(self, tiny_collection):
        result = SRTreeChunker(leaf_capacity=10).form_chunks(tiny_collection)
        assert result.n_outliers == 0
        assert result.retained is tiny_collection

    def test_partition(self, tiny_collection):
        result = SRTreeChunker(leaf_capacity=7).form_chunks(tiny_collection)
        assert result.chunk_set.is_partition()

    def test_spatial_locality_beats_round_robin(self, tiny_collection):
        """SR chunks should have much smaller radii than round-robin
        chunks of the same size — the whole point of the strategy."""
        sr = SRTreeChunker(leaf_capacity=20).form_chunks(tiny_collection)
        rr = RoundRobinChunker(n_chunks=3).form_chunks(tiny_collection)
        assert sr.chunk_set.radii().mean() < 0.5 * rr.chunk_set.radii().mean()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SRTreeChunker(leaf_capacity=0)

    def test_empty_collection(self):
        with pytest.raises(ValueError):
            SRTreeChunker(leaf_capacity=4).form_chunks(
                DescriptorCollection.empty(3)
            )

    def test_build_info_recorded(self, tiny_collection):
        result = SRTreeChunker(leaf_capacity=8).form_chunks(tiny_collection)
        assert "build_seconds" in result.build_info
        assert result.build_info["leaf_capacity"] == 8.0


class TestRoundRobin:
    def test_uniform_assignment(self, tiny_collection):
        result = RoundRobinChunker(n_chunks=6).form_chunks(tiny_collection)
        result.validate()
        sizes = result.chunk_set.sizes()
        assert sizes.max() - sizes.min() <= 1
        assert len(result.chunk_set) == 6

    def test_descriptor_i_in_chunk_i_mod_n(self, tiny_collection):
        result = RoundRobinChunker(n_chunks=4).form_chunks(tiny_collection)
        for c, chunk in enumerate(result.chunk_set):
            assert all(int(r) % 4 == c for r in chunk.member_rows)

    def test_more_chunks_than_descriptors(self):
        col = DescriptorCollection.from_vectors(np.ones((3, 2)))
        result = RoundRobinChunker(n_chunks=10).form_chunks(col)
        assert len(result.chunk_set) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            RoundRobinChunker(n_chunks=0)


class TestRandomChunker:
    def test_partition_and_balance(self, tiny_collection):
        result = RandomChunker(n_chunks=5, seed=1).form_chunks(tiny_collection)
        result.validate()
        sizes = result.chunk_set.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_seed_determinism(self, tiny_collection):
        a = RandomChunker(n_chunks=5, seed=1).form_chunks(tiny_collection)
        b = RandomChunker(n_chunks=5, seed=1).form_chunks(tiny_collection)
        for ca, cb in zip(a.chunk_set, b.chunk_set):
            assert np.array_equal(ca.member_rows, cb.member_rows)

    def test_different_seeds_differ(self, tiny_collection):
        a = RandomChunker(n_chunks=5, seed=1).form_chunks(tiny_collection)
        b = RandomChunker(n_chunks=5, seed=2).form_chunks(tiny_collection)
        assert any(
            not np.array_equal(ca.member_rows, cb.member_rows)
            for ca, cb in zip(a.chunk_set, b.chunk_set)
        )


class TestHybridChunker:
    def test_size_cap_enforced(self, small_synthetic):
        chunker = HybridChunker(target_chunk_size=100, max_size_factor=1.25)
        result = chunker.form_chunks(small_synthetic)
        result.validate()
        cap = int(np.ceil(100 * 1.25))
        assert result.chunk_set.sizes().max() <= cap

    def test_partition(self, small_synthetic):
        result = HybridChunker(target_chunk_size=150).form_chunks(small_synthetic)
        assert result.chunk_set.is_partition()

    def test_locality_beats_random(self, small_synthetic):
        hyb = HybridChunker(target_chunk_size=100).form_chunks(small_synthetic)
        rnd = RandomChunker(n_chunks=hyb.n_chunks, seed=0).form_chunks(
            small_synthetic
        )
        assert hyb.chunk_set.radii().mean() < rnd.chunk_set.radii().mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridChunker(target_chunk_size=0)
        with pytest.raises(ValueError):
            HybridChunker(target_chunk_size=10, max_size_factor=0.5)

    def test_tiny_collection(self, tiny_collection):
        result = HybridChunker(target_chunk_size=25, seed=3).form_chunks(
            tiny_collection
        )
        result.validate()
        assert result.chunk_set.total_descriptors() == len(tiny_collection)
