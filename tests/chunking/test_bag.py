"""Tests for the BAG clustering algorithm."""

import numpy as np
import pytest

from repro.chunking.bag import BagClusterer, estimate_mpi
from repro.core.dataset import DescriptorCollection


@pytest.fixture()
def three_blob_collection():
    """Three well-separated tight blobs plus two far outlier points."""
    rng = np.random.default_rng(2)
    blobs = [
        np.array([0.0, 0.0]) + 0.05 * rng.standard_normal((30, 2)),
        np.array([10.0, 0.0]) + 0.05 * rng.standard_normal((30, 2)),
        np.array([0.0, 10.0]) + 0.05 * rng.standard_normal((30, 2)),
    ]
    outliers = np.array([[50.0, 50.0], [-50.0, 40.0]])
    vectors = np.vstack(blobs + [outliers]).astype(np.float32)
    return DescriptorCollection.from_vectors(vectors)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            BagClusterer(mpi=0.0, target_clusters=5)
        with pytest.raises(ValueError):
            BagClusterer(mpi=1.0, target_clusters=0)
        with pytest.raises(ValueError):
            BagClusterer(mpi=1.0, target_clusters=5, destroy_fraction=1.0)
        with pytest.raises(ValueError):
            BagClusterer(mpi=1.0, target_clusters=5, candidate_checks=0)
        with pytest.raises(ValueError):
            BagClusterer(mpi=1.0, target_clusters=5, partner_ranking="nope")

    def test_estimate_mpi_positive(self, three_blob_collection):
        mpi = estimate_mpi(three_blob_collection, sample_size=50)
        assert mpi > 0

    def test_estimate_mpi_scales_with_data(self, three_blob_collection):
        scaled = DescriptorCollection.from_vectors(
            three_blob_collection.vectors * 10.0
        )
        a = estimate_mpi(three_blob_collection, sample_size=50)
        b = estimate_mpi(scaled, sample_size=50)
        assert b == pytest.approx(10 * a, rel=0.05)

    def test_estimate_mpi_needs_two_points(self):
        with pytest.raises(ValueError):
            estimate_mpi(DescriptorCollection.from_vectors(np.ones((1, 2))))


class TestClustering:
    def test_finds_natural_blobs(self, three_blob_collection):
        mpi = 0.05
        bag = BagClusterer(mpi=mpi, target_clusters=5, max_passes=400)
        result = bag.form_chunks(three_blob_collection)
        result.validate()
        # The three 30-point blobs survive as chunks; the two far points
        # become outliers (each is a tiny cluster below 20% of the mean).
        assert result.n_chunks == 3
        assert result.n_outliers == 2
        sizes = sorted(len(c) for c in result.chunk_set)
        assert sizes == [30, 30, 30]

    def test_chunks_have_minimal_radii(self, three_blob_collection):
        bag = BagClusterer(mpi=0.05, target_clusters=5, max_passes=400)
        result = bag.form_chunks(three_blob_collection)
        # Finalize recomputes exact bounding radii: small for tight blobs.
        for chunk in result.chunk_set:
            assert chunk.radius < 1.0

    def test_snapshots_in_succession(self, three_blob_collection):
        bag = BagClusterer(mpi=0.05, target_clusters=3, max_passes=400)
        snaps = bag.run_with_snapshots(three_blob_collection, [20, 10, 5])
        assert [s.threshold for s in snaps] == [20, 10, 5]
        counts = [len(s.rows_per_cluster) for s in snaps]
        assert counts[0] <= 20 and counts[1] <= 10 and counts[2] <= 5
        # Later snapshots never have more clusters.
        assert counts == sorted(counts, reverse=True)

    def test_snapshots_partition_collection(self, three_blob_collection):
        bag = BagClusterer(mpi=0.05, target_clusters=5, max_passes=400)
        snaps = bag.run_with_snapshots(three_blob_collection, [10])
        rows = np.concatenate(snaps[0].rows_per_cluster)
        assert sorted(rows.tolist()) == list(range(len(three_blob_collection)))

    def test_max_passes_guard(self, three_blob_collection):
        bag = BagClusterer(mpi=1e-6, target_clusters=2, max_passes=2)
        with pytest.raises(RuntimeError, match="did not reach"):
            bag.form_chunks(three_blob_collection)

    def test_empty_collection_rejected(self):
        bag = BagClusterer(mpi=1.0, target_clusters=1)
        with pytest.raises(ValueError):
            bag.form_chunks(DescriptorCollection.empty(2))

    def test_deterministic(self, three_blob_collection):
        bag = BagClusterer(mpi=0.05, target_clusters=5, max_passes=400)
        a = bag.form_chunks(three_blob_collection)
        b = bag.form_chunks(three_blob_collection)
        assert a.n_chunks == b.n_chunks
        assert np.array_equal(a.outlier_rows, b.outlier_rows)

    def test_merge_rule_respected_in_finalized_chunks(self, small_synthetic):
        """Merged chunks carry exact minimum bounding radii: every member
        is inside the radius (ChunkSet.validate checks this)."""
        mpi = estimate_mpi(small_synthetic, sample_size=300)
        bag = BagClusterer(mpi=mpi, target_clusters=200, max_passes=400)
        result = bag.form_chunks(small_synthetic)
        result.validate()
        assert result.n_chunks > 1

    def test_surface_ranking_variant_runs(self, three_blob_collection):
        bag = BagClusterer(
            mpi=0.05, target_clusters=5, max_passes=400,
            partner_ranking="surface",
        )
        result = bag.form_chunks(three_blob_collection)
        result.validate()


class TestOutlierRule:
    def test_outlier_fraction_rule(self):
        """One big blob plus isolated singletons: the singletons fall below
        20% of the mean population and are discarded."""
        rng = np.random.default_rng(4)
        blob = 0.05 * rng.standard_normal((60, 2))
        isolated = np.array([[30.0, 0.0], [0.0, 30.0], [-30.0, 0.0]])
        col = DescriptorCollection.from_vectors(
            np.vstack([blob, isolated]).astype(np.float32)
        )
        bag = BagClusterer(mpi=0.05, target_clusters=6, max_passes=400)
        result = bag.form_chunks(col)
        assert result.n_outliers == 3
        assert set(result.outlier_rows.tolist()) == {60, 61, 62}

    def test_no_outliers_when_everything_merges(self):
        rng = np.random.default_rng(5)
        blob = 0.01 * rng.standard_normal((40, 2))
        col = DescriptorCollection.from_vectors(blob.astype(np.float32))
        bag = BagClusterer(mpi=0.05, target_clusters=2, max_passes=400)
        result = bag.form_chunks(col)
        assert result.n_outliers == 0
        assert result.n_retained == 40
