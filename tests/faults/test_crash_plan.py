"""Tests for seeded crash-point plans."""

from __future__ import annotations

import pytest

from repro.faults.crash_plan import (
    CrashAtStep,
    CrashPlan,
    InjectedCrash,
    RecordingCrashPlan,
    seeded_crash_steps,
)


class TestPlans:
    def test_null_plan_counts_without_crashing(self):
        plan = CrashPlan()
        for _ in range(5):
            plan.reached("wal.batch.synced")
        assert plan.steps_seen == 5

    def test_recording_plan_keeps_site_order(self):
        plan = RecordingCrashPlan()
        sites = ["wal.batch.frames", "wal.batch.commit", "compact.manifest"]
        for site in sites:
            plan.reached(site)
        assert plan.sites == sites
        assert plan.steps_seen == 3

    def test_crash_at_step_fires_exactly_once(self):
        plan = CrashAtStep(2)
        plan.reached("a")
        plan.reached("b")
        with pytest.raises(InjectedCrash) as info:
            plan.reached("c")
        assert info.value.site == "c"
        assert info.value.step == 2
        assert plan.steps_seen == 3

    def test_crash_step_past_run_never_fires(self):
        plan = CrashAtStep(10)
        for site in "abc":
            plan.reached(site)
        assert plan.steps_seen == 3

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashAtStep(-1)


class TestSeededSteps:
    def test_deterministic(self):
        first = seeded_crash_steps(42, 30, 6)
        second = seeded_crash_steps(42, 30, 6)
        assert first == second
        assert len(first) == 6

    def test_sorted_unique_in_range(self):
        steps = seeded_crash_steps(7, 50, 12)
        assert list(steps) == sorted(set(steps))
        assert all(0 <= s < 50 for s in steps)

    def test_different_seeds_differ(self):
        assert seeded_crash_steps(1, 100, 10) != seeded_crash_steps(2, 100, 10)

    def test_full_matrix_when_points_cover_steps(self):
        assert seeded_crash_steps(5, 4, 4) == (0, 1, 2, 3)
        assert seeded_crash_steps(5, 4, 99) == (0, 1, 2, 3)

    def test_degenerate_inputs(self):
        assert seeded_crash_steps(5, 0, 3) == ()
        assert seeded_crash_steps(5, 10, 0) == ()
