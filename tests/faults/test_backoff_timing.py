"""Exact simulated-time charges of degraded execution.

Every fault kind has a precise price in simulated seconds — failed read
attempts at the chunk's uncached random-read cost, exponential backoff
between attempts, spike latency on slow successes — and these tests pin
that price *exactly* (float equality, accumulating in the same order as
the implementation), per fault kind and retry count, both at the plan
level and end-to-end through the pipeline simulator.
"""

import numpy as np
import pytest

from repro.chunking.round_robin import RoundRobinChunker
from repro.core.chunk_index import build_chunk_index
from repro.core.search import ChunkSearcher
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_CORRUPT,
    FAULT_READ_ERROR,
    FAULT_SPIKE,
    FAULT_TRUNCATE,
    FaultPlan,
)
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.simio.pipeline import CostModel

IO_S = 0.010  # attempt cost used by the plan-level tests


def skip_charge(plan, attempt_io_s):
    """The exact price of an exhausted-retry skip, accumulated in the
    implementation's order: each failed attempt pays the read, then the
    backoff when a retry follows."""
    budget = plan.max_retries + 1
    extra = 0.0
    for attempt in range(budget):
        extra += attempt_io_s
        if attempt < budget - 1:
            extra += plan.backoff_delay_s(attempt)
    return extra


class TestBackoffLadder:
    def test_backoff_is_exactly_geometric(self):
        plan = FaultPlan(seed=1, backoff_s=0.01, backoff_multiplier=2.0)
        assert plan.backoff_delay_s(0) == 0.01
        assert plan.backoff_delay_s(1) == 0.02
        assert plan.backoff_delay_s(2) == 0.04
        assert plan.backoff_delay_s(5) == 0.01 * 2.0**5
        with pytest.raises(ValueError):
            plan.backoff_delay_s(-1)


class TestSkipCharges:
    @pytest.mark.parametrize(
        "kind, rates",
        [
            (FAULT_READ_ERROR, dict(read_error_rate=1.0)),
            (FAULT_CORRUPT, dict(corrupt_rate=1.0)),
            (FAULT_TRUNCATE, dict(truncate_rate=1.0)),
        ],
    )
    @pytest.mark.parametrize("max_retries", [0, 1, 2, 4])
    def test_exhausted_retries_charge_every_attempt(
        self, kind, rates, max_retries
    ):
        plan = FaultPlan(seed=3, max_retries=max_retries, **rates)
        outcome = plan.chunk_outcome(0, 0, IO_S)
        assert not outcome.ok
        assert outcome.kind == kind
        assert outcome.attempts == max_retries + 1
        assert outcome.retries == max_retries
        assert not outcome.spiked
        assert outcome.extra_io_s == skip_charge(plan, IO_S)

    @pytest.mark.parametrize("max_retries", [0, 2])
    def test_unreadable_chunk_charges_the_full_ladder(self, max_retries):
        # A real storage failure (readable=False) is persistent damage:
        # budget * io, then the backoffs, in the implementation's order.
        plan = FaultPlan(seed=3, max_retries=max_retries)
        outcome = plan.chunk_outcome(0, 0, IO_S, readable=False)
        budget = max_retries + 1
        expected = budget * IO_S
        for retry in range(budget - 1):
            expected += plan.backoff_delay_s(retry)
        assert not outcome.ok
        assert outcome.kind == FAULT_CORRUPT
        assert outcome.attempts == budget
        assert outcome.extra_io_s == expected


class TestSuccessCharges:
    def test_spike_charges_exactly_spike_seconds(self):
        plan = FaultPlan(seed=3, spike_rate=1.0, spike_s=0.123)
        outcome = plan.chunk_outcome(0, 0, IO_S)
        assert outcome.ok and outcome.spiked
        assert outcome.kind == FAULT_SPIKE
        assert outcome.attempts == 1 and outcome.retries == 0
        assert outcome.extra_io_s == 0.123

    def find_key_with_failure_prefix(self, plan, rate, n_failures):
        """First (query=0, chunk) whose draws fail exactly ``n_failures``
        times and then succeed cleanly — deterministic, so the test is."""
        budget = plan.max_retries + 1
        assert n_failures < budget
        for chunk in range(10_000):
            us = plan.uniforms(0, 0, chunk, budget)  # stream 0 = chunk stream
            prefix_fails = all(us[i] < rate for i in range(n_failures))
            then_clean = us[n_failures] >= rate
            if prefix_fails and then_clean:
                return chunk
        raise AssertionError("no suitable key found")

    @pytest.mark.parametrize("n_failures", [1, 2])
    def test_transient_success_pays_failed_attempts_plus_backoff(
        self, n_failures
    ):
        rate = 0.4
        plan = FaultPlan(seed=11, read_error_rate=rate, max_retries=3)
        chunk = self.find_key_with_failure_prefix(plan, rate, n_failures)
        outcome = plan.chunk_outcome(0, chunk, IO_S)
        expected = 0.0
        for attempt in range(n_failures):
            expected += IO_S
            expected += plan.backoff_delay_s(attempt)
        assert outcome.ok
        assert outcome.kind == FAULT_READ_ERROR
        assert outcome.attempts == n_failures + 1
        assert outcome.retries == n_failures
        assert outcome.extra_io_s == expected


class TestEndToEndTiming:
    """The charges must land on the simulated clock unchanged: with a
    sequential (non-overlapped) pipeline, a fully-degraded search's
    elapsed time is exactly the query-start cost plus every skip charge,
    accumulated chunk by chunk."""

    @pytest.fixture()
    def index(self, tiny_collection):
        result = RoundRobinChunker(n_chunks=5).form_chunks(tiny_collection)
        return build_chunk_index(result.retained, result.chunk_set)

    def test_all_skip_run_charges_exact_ladder_per_chunk(self, index):
        model = CostModel(
            disk=PAPER_2005_COST_MODEL.disk,
            cpu=PAPER_2005_COST_MODEL.cpu,
            overlap_io_cpu=False,
        )
        plan = FaultPlan(seed=5, read_error_rate=1.0, max_retries=2)
        injector = FaultInjector.from_cost_model(plan, model)
        searcher = ChunkSearcher(index, cost_model=model)
        result = searcher.search(
            np.zeros(index.dimensions), k=3, faults=injector, query_index=0
        )
        assert result.chunks_skipped == index.n_chunks
        expected = result.trace.start_elapsed_s
        for event in result.trace.events:
            attempt_io = injector.attempt_io_s(
                int(searcher._pages[event.chunk_id])
            )
            assert event.skipped and event.fault == FAULT_READ_ERROR
            assert event.retries == plan.max_retries
            expected += skip_charge(plan, attempt_io)
            assert event.elapsed_s == expected
        assert result.elapsed_s == expected
