"""Tests for the deterministic fault plan."""

import dataclasses

import pytest

from repro.faults.plan import (
    FAILURE_KINDS,
    FAULT_CORRUPT,
    FAULT_NONE,
    FAULT_READ_ERROR,
    FAULT_SPIKE,
    FAULT_TRUNCATE,
    OK_OUTCOME,
    FaultPlan,
)


class TestValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)

    @pytest.mark.parametrize("field", ["read_error_rate", "corrupt_rate",
                                       "truncate_rate", "spike_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5, float("nan")])
    def test_bad_rates_rejected(self, field, value):
        with pytest.raises(ValueError, match="rates"):
            FaultPlan(**{field: value})

    def test_rates_must_fit_in_unit_interval(self):
        with pytest.raises(ValueError, match="exceed 1"):
            FaultPlan(read_error_rate=0.5, corrupt_rate=0.4, spike_rate=0.3)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            FaultPlan(max_retries=-1)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError, match="delays"):
            FaultPlan(spike_s=-0.1)
        with pytest.raises(ValueError, match="delays"):
            FaultPlan(backoff_s=-0.1)

    def test_sub_unit_backoff_multiplier_rejected(self):
        with pytest.raises(ValueError, match="multiplier"):
            FaultPlan(backoff_multiplier=0.5)

    def test_balanced_rate_bounds(self):
        with pytest.raises(ValueError, match="0.5"):
            FaultPlan.balanced(0.6, seed=1)
        with pytest.raises(ValueError, match="0.5"):
            FaultPlan.balanced(-0.01, seed=1)

    def test_balanced_splits_rate(self):
        plan = FaultPlan.balanced(0.3, seed=7)
        assert plan.failure_rate == pytest.approx(0.3)
        assert plan.spike_rate == pytest.approx(0.3)
        assert plan.read_error_rate == plan.corrupt_rate == plan.truncate_rate


class TestNullPlan:
    def test_zero_rates_are_null(self):
        assert FaultPlan(seed=3).is_null
        assert FaultPlan.balanced(0.0, seed=3).is_null
        assert not FaultPlan.balanced(0.1, seed=3).is_null

    def test_null_plan_returns_shared_ok_outcome(self):
        plan = FaultPlan(seed=9)
        outcome = plan.chunk_outcome(4, 17, attempt_io_s=0.01)
        assert outcome is OK_OUTCOME
        assert outcome.ok and outcome.kind == FAULT_NONE
        assert outcome.attempts == 1 and outcome.extra_io_s == 0.0


class TestDeterminism:
    def test_outcomes_independent_of_call_order(self):
        plan = FaultPlan.balanced(0.3, seed=42)
        keys = [(q, c) for q in range(20) for c in range(20)]
        forward = {k: plan.chunk_outcome(*k, attempt_io_s=0.02) for k in keys}
        backward = {
            k: plan.chunk_outcome(*k, attempt_io_s=0.02)
            for k in reversed(keys)
        }
        assert forward == backward

    def test_different_seeds_differ(self):
        keys = [(q, c) for q in range(15) for c in range(15)]
        a = FaultPlan.balanced(0.3, seed=1)
        b = FaultPlan.balanced(0.3, seed=2)
        assert [a.chunk_outcome(*k, attempt_io_s=0.02) for k in keys] != [
            b.chunk_outcome(*k, attempt_io_s=0.02) for k in keys
        ]

    def test_all_kinds_occur_at_plausible_frequency(self):
        plan = FaultPlan.balanced(0.3, seed=5)
        kinds = [
            plan.chunk_outcome(q, c, attempt_io_s=0.02).kind
            for q in range(40)
            for c in range(25)
        ]
        for kind in (FAULT_NONE, FAULT_SPIKE) + FAILURE_KINDS:
            assert kinds.count(kind) > 0, kind
        # Clean reads must dominate at rate 0.3.
        assert kinds.count(FAULT_NONE) > len(kinds) * 0.3

    def test_page_faults_deterministic(self):
        plan = FaultPlan.balanced(0.4, seed=6)
        draws = [plan.page_fault(p) for p in range(200)]
        assert draws == [plan.page_fault(p) for p in range(200)]
        assert any(kind != FAULT_NONE for kind, _ in draws)


class TestOutcomeAccounting:
    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_s=0.01, backoff_multiplier=2.0)
        assert plan.backoff_delay_s(0) == pytest.approx(0.01)
        assert plan.backoff_delay_s(1) == pytest.approx(0.02)
        assert plan.backoff_delay_s(2) == pytest.approx(0.04)
        with pytest.raises(ValueError):
            plan.backoff_delay_s(-1)

    def test_unreadable_chunk_charges_all_attempts(self):
        plan = FaultPlan(seed=1, max_retries=2, backoff_s=0.01,
                         backoff_multiplier=2.0)
        outcome = plan.chunk_outcome(0, 0, attempt_io_s=0.1, readable=False)
        assert not outcome.ok
        assert outcome.kind == FAULT_CORRUPT
        assert outcome.attempts == 3
        assert outcome.retries == 2
        # 3 failed reads + backoffs before retries 0 and 1.
        assert outcome.extra_io_s == pytest.approx(0.3 + 0.01 + 0.02)

    def test_persistent_fault_exhausts_retries(self):
        # With corrupt_rate=1 every attempt fails and the first drawn
        # kind persists.
        plan = FaultPlan(seed=2, corrupt_rate=1.0, max_retries=2,
                         backoff_s=0.01, backoff_multiplier=2.0)
        outcome = plan.chunk_outcome(3, 4, attempt_io_s=0.1)
        assert not outcome.ok
        assert outcome.kind == FAULT_CORRUPT
        assert outcome.attempts == 3
        assert outcome.extra_io_s == pytest.approx(0.3 + 0.01 + 0.02)

    def test_truncate_is_persistent_too(self):
        plan = FaultPlan(seed=2, truncate_rate=1.0, max_retries=1)
        outcome = plan.chunk_outcome(0, 0, attempt_io_s=0.05)
        assert not outcome.ok and outcome.kind == FAULT_TRUNCATE
        assert outcome.attempts == 2

    def test_spike_charges_spike_latency_only(self):
        plan = FaultPlan(seed=4, spike_rate=1.0, spike_s=0.07)
        outcome = plan.chunk_outcome(1, 2, attempt_io_s=0.1)
        assert outcome.ok and outcome.spiked
        assert outcome.kind == FAULT_SPIKE
        assert outcome.attempts == 1
        assert outcome.extra_io_s == pytest.approx(0.07)

    def test_read_error_can_succeed_on_retry(self):
        # read_error_rate=0.5: over many keys some outcomes must be
        # successful retries (ok, attempts > 1) charging the failed
        # attempt plus backoff.
        plan = FaultPlan(seed=8, read_error_rate=0.5, max_retries=2,
                         backoff_s=0.01, backoff_multiplier=2.0)
        retried = [
            o
            for q in range(30)
            for c in range(30)
            if (o := plan.chunk_outcome(q, c, attempt_io_s=0.1)).ok
            and o.attempts > 1
        ]
        assert retried
        for o in retried:
            assert o.kind == FAULT_READ_ERROR
            failed = o.attempts - 1
            want = failed * 0.1 + sum(
                plan.backoff_delay_s(r) for r in range(failed)
            )
            # A spike cannot occur here (spike_rate=0).
            assert o.extra_io_s == pytest.approx(want)

    def test_negative_attempt_cost_rejected(self):
        with pytest.raises(ValueError, match="attempt cost"):
            FaultPlan(seed=1).chunk_outcome(0, 0, attempt_io_s=-0.1)

    def test_plan_is_frozen(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 2
