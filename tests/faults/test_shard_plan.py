"""Tests for the seeded shard-level fault plan."""

import pytest

from repro.faults import SHARD_OK, ShardFaultPlan, ShardSubFault


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="rate"):
            ShardFaultPlan(error_rate=-0.1)
        with pytest.raises(ValueError, match="rate"):
            ShardFaultPlan(straggler_rate=1.5)

    def test_combined_rate_cannot_exceed_one(self):
        with pytest.raises(ValueError, match="exceed"):
            ShardFaultPlan(error_rate=0.6, straggler_rate=0.6)

    def test_straggler_factor_at_least_one(self):
        with pytest.raises(ValueError, match="factor"):
            ShardFaultPlan(straggler_factor=0.5)

    def test_outage_needs_duration_and_horizon(self):
        with pytest.raises(ValueError, match="outage"):
            ShardFaultPlan(outage_rate=0.2)

    def test_null_plan(self):
        assert ShardFaultPlan().is_null
        assert not ShardFaultPlan(error_rate=0.1).is_null

    def test_balanced_splits_rate(self):
        plan = ShardFaultPlan.balanced(0.2, seed=3, horizon_s=10.0)
        assert plan.error_rate == plan.straggler_rate == plan.outage_rate == 0.2
        assert plan.outage_duration_s > 0.0
        with pytest.raises(ValueError, match="rate"):
            ShardFaultPlan.balanced(0.6, seed=3, horizon_s=10.0)


class TestDraws:
    def test_sub_request_is_deterministic(self):
        plan = ShardFaultPlan(seed=9, error_rate=0.3, straggler_rate=0.3)
        draws = [plan.sub_request(q, p, s, a)
                 for q in range(4) for p in range(3)
                 for s in range(3) for a in range(2)]
        again = [plan.sub_request(q, p, s, a)
                 for q in range(4) for p in range(3)
                 for s in range(3) for a in range(2)]
        assert draws == again

    def test_attempts_draw_independently(self):
        """A retry (same query/partition/shard, next attempt) must get a
        fresh draw — otherwise failover would be deterministic doom."""
        plan = ShardFaultPlan(seed=9, error_rate=0.5)
        outcomes = {plan.sub_request(0, 0, 0, attempt).failed
                    for attempt in range(32)}
        assert outcomes == {True, False}

    def test_rates_are_respected_in_the_aggregate(self):
        plan = ShardFaultPlan(seed=5, error_rate=0.25, straggler_rate=0.25)
        draws = [plan.sub_request(q, p, s, 0)
                 for q in range(50) for p in range(4) for s in range(4)]
        failed = sum(d.failed for d in draws) / len(draws)
        slow = sum(d.straggler for d in draws) / len(draws)
        assert failed == pytest.approx(0.25, abs=0.05)
        assert slow == pytest.approx(0.25, abs=0.05)

    def test_null_plan_is_always_clean(self):
        plan = ShardFaultPlan()
        assert plan.sub_request(1, 2, 3, 0) == SHARD_OK
        assert SHARD_OK.clean

    def test_outage_window_lies_in_horizon(self):
        plan = ShardFaultPlan(
            seed=4, outage_rate=1.0, outage_duration_s=2.0, horizon_s=10.0
        )
        window = plan.outage_window(0)
        assert window is not None
        start, end = window
        assert 0.0 <= start < end <= 10.0
        assert end - start == pytest.approx(2.0)
        assert plan.shard_down(0, (start + end) / 2.0)
        assert not plan.shard_down(0, end)

    def test_zero_outage_rate_has_no_window(self):
        plan = ShardFaultPlan(seed=4)
        assert plan.outage_window(0) is None
        assert not plan.shard_down(0, 1.0)

    def test_clean_property(self):
        assert not ShardSubFault(True, False, 0.01).clean
        assert not ShardSubFault(False, True, 0.0).clean
