"""Tests for the injection surfaces: FaultInjector and FaultyFile."""

import io

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, FaultyFile, InjectedFaultError
from repro.faults.plan import FAULT_NONE, FaultPlan
from repro.simio.calibration import PAPER_2005_COST_MODEL
from repro.storage.chunk_file import ChunkFileReader, ChunkFileWriter
from repro.storage.errors import ChecksumError, CorruptFileError
from repro.storage.pages import PageGeometry


class TestFaultInjector:
    def test_from_cost_model_binds_disk(self):
        plan = FaultPlan.balanced(0.2, seed=1)
        injector = FaultInjector.from_cost_model(plan, PAPER_2005_COST_MODEL)
        assert injector.disk is PAPER_2005_COST_MODEL.disk
        assert not injector.is_null
        assert FaultInjector.from_cost_model(
            FaultPlan(seed=1), PAPER_2005_COST_MODEL
        ).is_null

    def test_attempt_cost_is_uncached_random_read(self):
        injector = FaultInjector.from_cost_model(
            FaultPlan.balanced(0.2, seed=1), PAPER_2005_COST_MODEL
        )
        for pages in (1, 3, 8):
            want = PAPER_2005_COST_MODEL.disk.random_read_time_s(pages)
            assert injector.attempt_io_s(pages) == want
            # Memoised: same value the second time.
            assert injector.attempt_io_s(pages) == want

    def test_outcome_delegates_to_plan(self):
        plan = FaultPlan.balanced(0.3, seed=11)
        injector = FaultInjector.from_cost_model(plan, PAPER_2005_COST_MODEL)
        io_s = injector.attempt_io_s(2)
        for q in range(10):
            for c in range(10):
                assert injector.outcome(q, c, 2) == plan.chunk_outcome(
                    q, c, io_s
                )

    def test_unreadable_outcome_always_skips(self):
        injector = FaultInjector.from_cost_model(
            FaultPlan(seed=1), PAPER_2005_COST_MODEL
        )
        outcome = injector.outcome(0, 0, 1, readable=False)
        assert not outcome.ok
        assert outcome.attempts == injector.plan.max_retries + 1


def write_chunk_file(path, dims=4, n=20, page_bytes=256):
    geometry = PageGeometry(page_bytes)
    ids = np.arange(n)
    vectors = np.arange(n * dims, dtype=np.float32).reshape(n, dims)
    with ChunkFileWriter(path, dimensions=dims, geometry=geometry) as writer:
        extent = writer.write_chunk(ids, vectors)
    return extent, geometry, ids, vectors


class TestFaultyFile:
    def test_clean_plan_passes_bytes_through(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        extent, geometry, ids, vectors = write_chunk_file(path)
        wrapped = FaultyFile(
            open(path, "rb"), FaultPlan(seed=1), page_bytes=geometry.page_bytes
        )
        with ChunkFileReader(wrapped, dimensions=4, geometry=geometry) as r:
            out_ids, out_vecs = r.read_chunk(extent)
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(out_vecs, vectors)

    def test_bit_flips_surface_as_checksum_errors(self, tmp_path):
        """End-to-end: silent byte damage must become a typed error, not
        silently wrong neighbors."""
        path = str(tmp_path / "chunks.dat")
        extent, geometry, _, _ = write_chunk_file(path, n=40)
        plan = FaultPlan(seed=3, corrupt_rate=1.0)
        raw = open(path, "rb")
        # Header and CRC table are read unwrapped (they are metadata, the
        # drill targets payload pages), so open the reader first, then
        # swap in the faulty wrapper for the data read.
        reader = ChunkFileReader(raw, dimensions=4, geometry=geometry)
        reader._file = FaultyFile(raw, plan, page_bytes=geometry.page_bytes)
        with pytest.raises(ChecksumError, match="CRC32"):
            reader.read_chunk(extent)
        raw.close()

    def test_injected_read_errors_raise(self, tmp_path):
        path = str(tmp_path / "chunks.dat")
        write_chunk_file(path)
        plan = FaultPlan(seed=3, read_error_rate=1.0)
        with FaultyFile(open(path, "rb"), plan, page_bytes=256) as wrapped:
            with pytest.raises(InjectedFaultError, match="injected read error"):
                wrapped.read(64)
        assert issubclass(InjectedFaultError, CorruptFileError)

    def test_truncation_cuts_reads_short(self):
        plan = FaultPlan(seed=3, truncate_rate=1.0)
        data = bytes(range(256)) * 4
        wrapped = FaultyFile(io.BytesIO(data), plan, page_bytes=256)
        assert len(wrapped.read()) < len(data)

    def test_damage_is_deterministic(self):
        plan = FaultPlan.balanced(0.45, seed=7)
        data = bytes(range(256)) * 16

        def damaged():
            wrapped = FaultyFile(io.BytesIO(data), plan, page_bytes=128)
            try:
                return wrapped.read()
            except InjectedFaultError as exc:
                return repr(exc)

        assert damaged() == damaged()

    def test_positive_page_size_required(self):
        with pytest.raises(ValueError, match="page size"):
            FaultyFile(io.BytesIO(b""), FaultPlan(seed=1), page_bytes=0)
