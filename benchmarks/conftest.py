"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures (or an
ablation) at the scale selected by ``REPRO_BENCH_SCALE`` (``default``
unless overridden; set ``REPRO_BENCH_SCALE=test`` for a fast smoke run).
The expensive data preparation — synthetic collection, the BAG run, the
six chunk indexes, ground truths, and run-to-completion traces — is shared
across every benchmark in the session.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_scale
from repro.experiments.data import prepare


@pytest.fixture(scope="session")
def data():
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "default")
    return prepare(get_scale(scale_name))


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark and
    print its rendered rows (the numbers the paper's artefact reports)."""

    def runner(fn, *args):
        result = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return runner
