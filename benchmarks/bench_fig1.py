"""Figure 1 — sizes of the 30 largest chunks (log scale in the paper).

Paper shape: BAG's largest chunks hold 0.5-1M descriptors (2-3 orders of
magnitude above the 947-2,486 average); SR curves are flat at the uniform
leaf size.
"""

from repro.experiments import fig1


def bench_fig1(run_once, data):
    result = run_once(fig1.run, data)
    for size_class in ("SMALL", "MEDIUM", "LARGE"):
        assert result.series[f"BAG/{size_class}"][0] > 5 * max(
            result.series[f"SR/{size_class}"]
        )
