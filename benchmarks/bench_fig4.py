"""Figure 4 — elapsed time to find N nearest neighbors (DQ workload).

Paper shape: the inversion — early neighbors take much *longer* with BAG
(its giant chunks cost ~1.8 s of CPU before any result surfaces; each SR
chunk costs ~10 ms), then BAG catches up near completion.
"""

from repro.experiments.quality_figures import run_fig4


def bench_fig4(run_once, data):
    result = run_once(run_fig4, data)
    k = data.scale.k
    # Early: SR/LARGE is at least as fast as BAG/LARGE.
    assert result.series["SR/LARGE"][3] <= result.series["BAG/LARGE"][3] * 1.05
    # Late: BAG has caught up on the SMALL class.
    assert result.series["BAG/SMALL"][k] < result.series["SR/SMALL"][k]
