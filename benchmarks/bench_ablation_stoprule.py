"""Ablation — stop rule: fixed chunk count vs matched time budget.

The paper's second lesson (section 5.7): elapsed time is the more natural
stop rule, because variably sized chunks make a chunk count a poor proxy
for time.  The time budget is set to the chunk rule's mean spend, so the
comparison is effort-matched.
"""

from repro.experiments.ablations import run_stop_rule_ablation


def bench_ablation_stoprule(run_once, data):
    result = run_once(run_stop_rule_ablation, data)
    for row in result.rows:
        assert 0.0 <= row[2] <= 1.0 and 0.0 <= row[4] <= 1.0
