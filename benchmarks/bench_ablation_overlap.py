"""Ablation — I/O-CPU overlap on vs off (DESIGN.md section 5).

The paper's uniform-chunks argument rests on overlapping I/O with CPU;
this re-times the MEDIUM indexes with a strictly serial execution model.
Expected: serial is never faster; the penalty is largest where chunk CPU
and I/O are balanced (SR), shrinking where one side dominates.
"""

from repro.experiments.ablations import run_overlap_ablation


def bench_ablation_overlap(run_once, data):
    result = run_once(run_overlap_ablation, data)
    for row in result.rows:
        assert row[2] >= row[1] * 0.999  # serial >= overlapped (t 25nn)
        assert row[4] >= row[3] * 0.999  # and for completion
