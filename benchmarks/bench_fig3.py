"""Figure 3 — chunks required to find N nearest neighbors (SQ workload).

Paper shape: the BAG advantage shrinks and SR becomes slightly better,
because BAG reads several small chunks where SR reads a few uniform ones.
At our reproduction scale the *sign* does not flip — synthetic 24-d space
queries are uniformly remote, where BAG's tight radii keep pruning better
— recorded as the one sign deviation in EXPERIMENTS.md.
"""

from repro.experiments.quality_figures import run_fig3


def bench_fig3(run_once, data):
    result = run_once(run_fig3, data)
    mid = 20
    # Both families produce monotone, finite curves; BAG remains ahead at
    # our scale (the documented deviation from the paper's slight SR win).
    assert result.series["BAG/MEDIUM"][mid] <= result.series["SR/MEDIUM"][mid]
    for series in result.series.values():
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
