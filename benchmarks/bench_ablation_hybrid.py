"""Ablation — the paper's concluding proposal: uniform chunk size first,
intra-chunk dissimilarity second (balanced k-means), vs both extremes.

Expected: the hybrid needs BAG-like few chunks for mid quality while
keeping SR-like smooth time delivery.
"""

from repro.experiments.ablations import run_hybrid_ablation


def bench_ablation_hybrid(run_once, data):
    result = run_once(run_hybrid_ablation, data)
    rows = {row[0]: row for row in result.rows}
    assert rows["HYB/MEDIUM"][3] <= rows["SR/MEDIUM"][3] * 1.5
