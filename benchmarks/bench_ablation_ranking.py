"""Ablation — chunk ranking rule: centroid distance (paper) vs the lower
bound d(centroid) - radius.

Observed trade-off (both scales): centroid ranking reaches mid quality in
fewer chunks (it visits dense nearby chunks first), while lower-bound
ranking *completes* in fewer chunks — the ranking then agrees with the
completion proof, so the proof fires sooner.  The paper's choice of
centroid ranking optimizes early quality, which is the approximate-search
regime it cares about.
"""

from repro.experiments.ablations import run_ranking_ablation


def bench_ablation_ranking(run_once, data):
    result = run_once(run_ranking_ablation, data)
    for row in result.rows:
        family, q_centroid, q_bound, done_centroid, done_bound = row
        assert q_centroid <= q_bound * 1.1   # centroid: better early quality
        assert done_bound <= done_centroid * 1.1  # bound: earlier completion
