"""Figure 6 — effect of chunk size, DQ workload (the paper's Experiment 2).

16 SR-tree chunk indexes spanning decades of chunk size; time to find
{1,10,20,25,28,30} of the 30 NN vs chunk size (log x in the paper).

Paper shape: a wide flat valley — chunk sizes of 1,000-10,000 all perform
alike; the '30 neighbors' series sits far above '1 neighbor'.
"""

from repro.experiments.chunk_size_sweep import run_fig6


def bench_fig6(run_once, data):
    result = run_once(run_fig6, data)
    thirty, one = result.series["30 neighbors"], result.series["1 neighbor"]
    assert all(a >= b for a, b in zip(thirty, one))
    interior_best = min(thirty[1:-1])
    assert interior_best <= min(thirty[0], thirty[-1]) + 1e-9
