"""Ablation — error-bounded stop rules (AC-NN epsilon, PAC-NN) against
fixed-effort rules, on the BAG/MEDIUM index.

Expected: every epsilon/PAC rule keeps precision at or near 1.0 while
reading no more chunks than the exact run; fixed chunk budgets trade
precision directly.
"""

from repro.experiments.ablations import run_approx_rules_ablation


def bench_ablation_approx_rules(run_once, data):
    result = run_once(run_approx_rules_ablation, data)
    rows = {row[0]: row for row in result.rows}
    exact = rows["exact"]
    assert exact[3] == 1.0
    for name in ("epsilon=0.1", "epsilon=0.5", "PAC(0.2,0.05)", "PAC(0.2,0.25)"):
        assert rows[name][1] <= exact[1] + 1e-9   # never more chunks
        assert rows[name][3] >= 0.85              # bounded quality loss
