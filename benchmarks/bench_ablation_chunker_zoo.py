"""Ablation — every chunk-forming strategy on one playing field.

BAG and SR (the paper's contenders), TSVQ and CF/Clindex (the related
work), the hybrid proposal, and the round-robin/random strawmen, all over
the MEDIUM retained collection.  Expected: locality-aware strategies beat
the strawmen on chunks-to-quality; CF's tiny arbitrary cells make its
completion dramatically slower (the paper's reason for not using it).
"""

from repro.experiments.ablations import run_chunker_zoo


def bench_ablation_chunker_zoo(run_once, data):
    result = run_once(run_chunker_zoo, data)
    rows = {row[0]: row for row in result.rows}
    for locality_aware in ("BAG", "SR", "TSVQ", "HYB"):
        assert rows[locality_aware][3] < rows["RAND"][3]
    assert rows["CF"][5] > rows["SR"][5]  # the CF critique
