"""Table 2 — time to completion (seconds).

Paper values (s):        BAG DQ  BAG SQ  SR DQ  SR SQ
    SMALL                  39.5    44.6   45.0   45.0
    MEDIUM                 23.4    26.7   31.3   31.2
    LARGE                  16.7    20.3   25.2   25.5

Expected reproduced shape: BAG completes before SR (DQ column); both
families complete faster with larger chunks.
"""

from repro.experiments import table2


def bench_table2(run_once, data):
    result = run_once(table2.run, data)
    for row in result.rows:
        assert row[1] < row[3]  # BAG DQ < SR DQ
    for col in range(1, 5):
        assert result.rows[0][col] > result.rows[2][col]
