"""Ablation — buffer-cache effects and the paper's round-robin protocol.

The paper ran each query "once to each chunk-index in a round-robin
fashion (to eliminate buffering effects)".  This quantifies the effect:
warm repeated queries look dramatically faster through a page cache;
clearing the cache between queries (the round-robin's effect) restores
cold-measurement numbers.
"""

from repro.experiments.ablations import run_cache_ablation


def bench_ablation_cache(run_once, data):
    result = run_once(run_cache_ablation, data)
    rows = {row[0]: row for row in result.rows}
    cold = rows["cold (no cache)"][1]
    warm = rows["warm repeat"][1]
    rr = rows["round-robin (cleared)"][1]
    assert warm < cold  # buffering bias is real
    assert abs(rr - cold) <= 0.02 * cold  # the protocol eliminates it
