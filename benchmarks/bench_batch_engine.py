"""Batch engine throughput: coalesced batch execution vs the sequential
per-query loop.

The batch engine amortizes chunk ranking, chunk reads, and the float64
promotion of chunk contents across a query batch; on the seed synthetic
workload it must deliver at least 3x the sequential throughput at batch
size 64 (the acceptance bar for the batched-query-engine change).

Also runnable standalone for CI, writing a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py --quick \
        --output batch_engine_bench.json
"""

from __future__ import annotations

import time

from repro.core.batch_search import BatchChunkSearcher
from repro.core.search import ChunkSearcher

BATCH_SIZE = 64
REPEATS = 3


def _best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs (insulates from scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_speedup(index, queries, k, cost_model):
    """(sequential_s, batch_s, speedup) for one batch of queries."""
    sequential = ChunkSearcher(index, cost_model=cost_model)
    batch = BatchChunkSearcher(index, cost_model=cost_model)

    def run_sequential():
        for query in queries:
            sequential.search(query, k=k)

    def run_batch():
        batch.search_batch(queries, k=k)

    # Warm both paths once (page cache, BLAS thread pools) before timing.
    run_batch()
    run_sequential()
    sequential_s = _best_of(run_sequential)
    batch_s = _best_of(run_batch)
    return sequential_s, batch_s, sequential_s / batch_s


def bench_batch_engine(benchmark, data):
    built = data.built("SR", "SMALL")
    queries = data.workloads["DQ"].queries[:BATCH_SIZE]
    k = data.scale.k
    model = data.scale.cost_model

    sequential_s, batch_s, speedup = measure_speedup(
        built.index, queries, k, model
    )
    benchmark.pedantic(
        lambda: BatchChunkSearcher(built.index, cost_model=model).search_batch(
            queries, k=k
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"batch size {len(queries)}: sequential {sequential_s * 1e3:.1f} ms, "
        f"batch {batch_s * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batch engine speedup {speedup:.2f}x below the 3x acceptance bar"
    )


def main(argv=None):
    import argparse
    import json
    import os
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the test scale (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output", default=None, help="write results to this JSON file"
    )
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.data import prepare

    scale = get_scale("test" if args.quick else "default")
    data = prepare(scale)
    built = data.built("SR", "SMALL")
    queries = data.workloads["DQ"].queries
    batch_size = min(BATCH_SIZE, queries.shape[0])
    sequential_s, batch_s, speedup = measure_speedup(
        built.index, queries[:batch_size], data.scale.k, data.scale.cost_model
    )
    report = {
        "scale": scale.name,
        "batch_size": batch_size,
        "k": data.scale.k,
        "sequential_s": sequential_s,
        "batch_s": batch_s,
        "speedup": speedup,
    }
    print(json.dumps(report, indent=2))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {os.path.abspath(args.output)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
