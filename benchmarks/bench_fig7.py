"""Figure 7 — effect of chunk size, SQ workload.

Same sweep as Figure 6 under space queries; the paper's valley persists
with higher absolute times (no perfect match exists for SQ queries).
"""

from repro.experiments.chunk_size_sweep import run_fig6, run_fig7


def bench_fig7(run_once, data):
    result = run_once(run_fig7, data)
    thirty = result.series["30 neighbors"]
    interior_best = min(thirty[1:-1])
    assert interior_best <= min(thirty[0], thirty[-1]) + 1e-9
    # SQ completion-quality times are at least DQ's at the valley.
    dq = run_fig6(data)
    mid = len(thirty) // 2
    assert thirty[mid] >= 0.8 * dq.series["30 neighbors"][mid]
