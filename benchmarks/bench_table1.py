"""Table 1 — properties of the BAG and SR-tree chunk indexes.

Paper values (5M descriptors):

    SMALL : 4,471,532 retained, 12.2% outliers, 4,720/4,747 chunks, 947/942 per chunk
    MEDIUM: 4,595,312 retained,  9.2% outliers, 2,685/2,672 chunks, 1,711/1,719
    LARGE : 4,652,022 retained,  8.0% outliers, 1,871/1,863 chunks, 2,486/2,497

Expected reproduced shape: outlier %% falls SMALL->LARGE; BAG and SR chunk
counts nearly equal per class; per-chunk sizes rise ~1 : 2 : 3.
"""

from repro.experiments import table1


def bench_table1(run_once, data):
    result = run_once(table1.run, data)
    outlier_pcts = [row[3] for row in result.rows]
    assert outlier_pcts[0] >= outlier_pcts[1] >= outlier_pcts[2]
