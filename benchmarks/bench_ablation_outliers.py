"""Ablation — BAG outlier removal vs the norm-threshold scheme.

Paper section 5.2: the simpler scheme ("removing all descriptors with
total length greater than a constant") gave "almost identical results".
Both variants build an SR index at the SMALL chunk size and run DQ.
"""

from repro.experiments.ablations import run_outlier_ablation


def bench_ablation_outliers(run_once, data):
    result = run_once(run_outlier_ablation, data)
    chunks = [row[2] for row in result.rows]
    assert max(chunks) <= 5 * min(chunks)
