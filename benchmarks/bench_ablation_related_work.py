"""Ablation — related-work shootout (paper section 6).

Chunk search, Medrank, approximate VA-file, P-Sphere trees, and DBIN on
one collection/workload, reporting recall@10 vs descriptors scanned.
Expected: the distance-free Medrank trails in recall; VA-file and DBIN
reach high recall at the cost of broader scans; P-Sphere and the chunk
search occupy the low-work middle ground.
"""

from repro.experiments.ablations import run_related_work_shootout


def bench_ablation_related_work(run_once, data):
    result = run_once(run_related_work_shootout, data)
    rows = {row[0]: row for row in result.rows}
    for scheme, row in rows.items():
        assert 0.0 <= row[1] <= 1.0, scheme
    # Distance-based schemes beat the projection-only Medrank.
    assert rows["chunk-search(5)"][1] > rows["medrank"][1]
    assert rows["va-file"][1] > rows["medrank"][1]
