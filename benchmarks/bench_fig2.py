"""Figure 2 — chunks required to find N nearest neighbors (DQ workload).

Paper shape: BAG needs far fewer chunks than SR for the same N (5 chunks
=> 25-28 neighbors for BAG vs 16-20 for SR); chunk size has a small effect.
"""

from repro.experiments.quality_figures import run_fig2


def bench_fig2(run_once, data):
    result = run_once(run_fig2, data)
    k = data.scale.k
    for size_class in ("SMALL", "MEDIUM", "LARGE"):
        assert result.series[f"BAG/{size_class}"][k] < result.series[f"SR/{size_class}"][k]
