"""Section 5.7, lesson 1 — the headline of the paper, quantified.

Paper: "most of the 30 nearest neighbors were found in the first 1-2
seconds, while guaranteeing a correct result took between 16 and 45
seconds" — a 10-30x gap between near-complete quality and the exactness
guarantee.  Expected: every index shows a multi-x ratio between t(90%
quality) and t(guarantee).
"""

from repro.experiments.ablations import run_lessons_summary


def bench_lessons_summary(run_once, data):
    result = run_once(run_lessons_summary, data)
    for row in result.rows:
        label, workload, t_near, t_done, ratio = row
        assert t_done >= t_near
    # The paper's multi-x gap holds on the DQ workload for every index.
    dq_ratios = [row[4] for row in result.rows if row[1] == "DQ"]
    assert min(dq_ratios) >= 1.5
    assert len(result.rows) == 12
