"""Pruned scan path: metric chunk pruning vs the PR-1 batch engine.

The pruner skips the host-side work (chunk read + distance scan) of every
chunk whose triangle-inequality lower bound proves it cannot improve the
current top-k, while charging identical *simulated* time and emitting
identical traces.  Two operating points of the same engine are measured,
both running every query to completion at the default benchmark scale:

``single``
    Queries issued one at a time — how the PR-4 query service drives the
    engine.  Each pruned chunk skips its own read and kernel call, so this
    latency-critical path carries the acceptance bar: at least 30% of
    chunk scans pruned and at least a 2x end-to-end speedup over the
    unpruned engine.

``batched``
    The whole query set in one ``search_batch`` call.  The chunk-major
    cohort kernel already amortizes each chunk's read and scan across
    every query in the batch, so pruning saves only per-event bookkeeping
    here — reported to document that the two optimizations compose rather
    than to clear a bar.

Pruning must not move a single simulated timestamp in either mode (and
batch composition must not change per-query outcomes); both invariants
are re-asserted at benchmark scale.

Also runnable standalone for CI, writing a JSON artifact::

    PYTHONPATH=src python benchmarks/bench_pruned_scan.py --quick \
        --output pruned_scan_bench.json \
        --deterministic-output pruned_scan_det.json

The ``--deterministic-output`` file contains only quantities that are
pure functions of the experiment seed (pruned fractions and simulated
times, no wall-clock measurements); CI runs the benchmark twice and
asserts the two files are byte-identical.
"""

from __future__ import annotations

import time

from repro.core.batch_search import BatchChunkSearcher

N_QUERIES = 64
REPEATS = 3

#: Acceptance bars (default scale, run-to-completion queries, single mode).
MIN_SPEEDUP = 2.0
MIN_PRUNED_FRACTION = 0.30


def _best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs (insulates from scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(index, queries, k, cost_model):
    """Run the unpruned and pruned engines to completion in both modes.

    Returns ``(deterministic, timing)`` dicts: the first holds only
    seed-determined quantities (identical across reruns), the second the
    wall-clock measurements.
    """
    unpruned = BatchChunkSearcher(index, cost_model=cost_model, prune=False)
    pruned = BatchChunkSearcher(index, cost_model=cost_model, prune=True)

    def run_single(searcher):
        results = []
        for query in queries:
            results.extend(searcher.search_batch(query, k=k).results)
        return results

    def run_batched(searcher):
        return searcher.search_batch(queries, k=k).results

    # Warm both paths (page cache, BLAS thread pools) before timing, and
    # keep the results for the simulated-side report and the invariants.
    baseline = run_single(unpruned)
    result = run_single(pruned)
    batched = run_batched(pruned)

    events_total = sum(len(r.trace) for r in result)
    pruned_total = sum(r.chunks_pruned for r in result)
    assert sum(r.chunks_pruned for r in baseline) == 0
    # The contracts the test suite checks per-query, re-asserted at
    # benchmark scale: pruning must not move a single simulated timestamp,
    # and batch composition must not change per-query outcomes.
    assert [r.elapsed_s for r in result] == [r.elapsed_s for r in baseline]
    assert [r.elapsed_s for r in batched] == [r.elapsed_s for r in baseline]

    single_unpruned_s = _best_of(lambda: run_single(unpruned))
    single_pruned_s = _best_of(lambda: run_single(pruned))
    batched_unpruned_s = _best_of(lambda: run_batched(unpruned))
    batched_pruned_s = _best_of(lambda: run_batched(pruned))
    deterministic = {
        "n_queries": int(len(queries)),
        "k": int(k),
        "n_chunks": int(index.n_chunks),
        "chunk_events_total": int(events_total),
        "chunks_pruned_total": int(pruned_total),
        "pruned_fraction": pruned_total / events_total if events_total else 0.0,
        "mean_simulated_elapsed_s": (
            sum(r.elapsed_s for r in result) / len(result) if result else 0.0
        ),
    }
    timing = {
        "single_unpruned_s": single_unpruned_s,
        "single_pruned_s": single_pruned_s,
        "single_speedup": single_unpruned_s / single_pruned_s,
        "batched_unpruned_s": batched_unpruned_s,
        "batched_pruned_s": batched_pruned_s,
        "batched_speedup": batched_unpruned_s / batched_pruned_s,
    }
    return deterministic, timing


def bench_pruned_scan(benchmark, data):
    built = data.built("SR", "SMALL")
    queries = data.workloads["DQ"].queries[:N_QUERIES]
    k = data.scale.k
    model = data.scale.cost_model

    deterministic, timing = measure(built.index, queries, k, model)
    benchmark.pedantic(
        lambda: BatchChunkSearcher(built.index, cost_model=model).search_batch(
            queries, k=k
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"{deterministic['n_queries']} queries: "
        f"single {timing['single_unpruned_s'] * 1e3:.1f} -> "
        f"{timing['single_pruned_s'] * 1e3:.1f} ms "
        f"({timing['single_speedup']:.1f}x), "
        f"batched {timing['batched_unpruned_s'] * 1e3:.1f} -> "
        f"{timing['batched_pruned_s'] * 1e3:.1f} ms "
        f"({timing['batched_speedup']:.1f}x), "
        f"pruned fraction {deterministic['pruned_fraction']:.1%}"
    )
    assert deterministic["pruned_fraction"] >= MIN_PRUNED_FRACTION, (
        f"pruned fraction {deterministic['pruned_fraction']:.1%} below the "
        f"{MIN_PRUNED_FRACTION:.0%} acceptance bar"
    )
    assert timing["single_speedup"] >= MIN_SPEEDUP, (
        f"pruned scan speedup {timing['single_speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.0f}x acceptance bar"
    )


def main(argv=None):
    import argparse
    import json
    import os
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the test scale (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output", default=None, help="write the full report to this JSON file"
    )
    parser.add_argument(
        "--deterministic-output",
        default=None,
        help="write only the seed-determined section (CI compares two "
        "runs of this file byte for byte)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.config import get_scale
    from repro.experiments.data import prepare

    scale = get_scale("test" if args.quick else "default")
    data = prepare(scale)
    built = data.built("SR", "SMALL")
    queries = data.workloads["DQ"].queries
    n_queries = min(N_QUERIES, queries.shape[0])
    deterministic, timing = measure(
        built.index, queries[:n_queries], data.scale.k, data.scale.cost_model
    )
    deterministic = {"scale": scale.name, **deterministic}
    report = {"deterministic": deterministic, "timing": timing}
    print(json.dumps(report, indent=2))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {os.path.abspath(args.output)}", file=sys.stderr)
    if args.deterministic_output:
        with open(args.deterministic_output, "w", encoding="utf-8") as f:
            json.dump(deterministic, f, indent=2, sort_keys=True)
        print(
            f"wrote {os.path.abspath(args.deterministic_output)}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
