"""Figure 5 — elapsed time to find N nearest neighbors (SQ workload).

Paper shape: all six indexes perform very similarly (for space queries the
BAG indexes avoid their giant chunks); the ~index-read offset is visible
at N=0.
"""

from repro.experiments.quality_figures import run_fig5


def bench_fig5(run_once, data):
    result = run_once(run_fig5, data)
    # Early times are similar across all six indexes (within 3x).
    early = [series[3] for series in result.series.values()]
    assert max(early) < 3 * min(early)
    for series in result.series.values():
        assert series[0] > 0  # index-read offset
