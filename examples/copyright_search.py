"""Copyright-protection image search (the paper's motivating application).

Paper section 4.1: the local descriptors "are particularly well suited to
enforce robust content-based image searches for copyright protection" —
find the original image even when the query is a distorted copy.

This example simulates that pipeline end to end:

1. index a collection of images via their local descriptors;
2. take one image, distort its descriptors (noise + dropping half of them,
   simulating re-encoding and cropping);
3. run the multi-descriptor voting search with an aggressive stop rule;
4. check the original is identified, and how much search effort it took.

Run with: ``python examples/copyright_search.py``
"""

import numpy as np

from repro import (
    MaxChunks,
    SRTreeChunker,
    SyntheticImageConfig,
    build_chunk_index,
    generate_collection,
)
from repro.extensions.multi_descriptor import MultiDescriptorSearcher


def distort_image_descriptors(
    descriptors: np.ndarray, keep_fraction: float, noise_std: float, seed: int
) -> np.ndarray:
    """Simulate a pirated copy: crop (drop descriptors) and re-encode
    (perturb the surviving descriptors)."""
    rng = np.random.default_rng(seed)
    n_keep = max(1, int(len(descriptors) * keep_fraction))
    rows = rng.choice(len(descriptors), size=n_keep, replace=False)
    kept = descriptors[rows].astype(np.float64)
    return kept + noise_std * rng.standard_normal(kept.shape)


def main() -> None:
    collection = generate_collection(
        SyntheticImageConfig(n_images=150, mean_descriptors_per_image=60, seed=5)
    )
    chunking = SRTreeChunker(leaf_capacity=128).form_chunks(collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)
    searcher = MultiDescriptorSearcher(index, chunking.retained)
    print(
        f"indexed {len(collection)} descriptors from "
        f"{len(set(collection.image_ids.tolist()))} images "
        f"({index.n_chunks} chunks)"
    )

    rng = np.random.default_rng(0)
    hits = 0
    trials = 10
    for trial in range(trials):
        original = int(rng.integers(150))
        rows = np.flatnonzero(collection.image_ids == original)
        pirate = distort_image_descriptors(
            collection.vectors[rows], keep_fraction=0.5, noise_std=0.01,
            seed=trial,
        )
        matches = searcher.search_image(
            pirate,
            k_per_descriptor=5,
            top_images=3,
            stop_rule=MaxChunks(4),  # aggressive approximation
        )
        best = matches[0].image_id if matches else -1
        ok = best == original
        hits += ok
        print(
            f"trial {trial}: original=image#{original:3d}  "
            f"best match=image#{best:3d}  votes={matches[0].votes:3d}  "
            f"{'OK' if ok else 'MISS'}"
        )
    print(f"\nidentified {hits}/{trials} distorted copies "
          f"(4 chunks per descriptor search)")


if __name__ == "__main__":
    main()
