"""Tuning the approximation policy: every stop rule on one dial.

The paper's stop rules (chunk count, time budget, exact completion) bound
*effort*; the related-work rules implemented in
:mod:`repro.core.approx_rules` bound *error*:

* ``EpsilonApproximation`` (AC-NN): guarantee the k-th neighbor within a
  (1 + epsilon) factor of the truth;
* ``PacApproximation`` (PAC-NN): the same, probably — with confidence
  1 - delta estimated from a sampled distance distribution.

This example sweeps all of them over one DQ workload and prints the
resulting (time, precision@30) frontier, so a user can pick a policy by
looking at the actual trade-off curve rather than guessing.

Run with: ``python examples/stop_policy_tuning.py``
"""

import numpy as np

from repro import (
    ChunkSearcher,
    EpsilonApproximation,
    ExactCompletion,
    MaxChunks,
    PacApproximation,
    SRTreeChunker,
    SyntheticImageConfig,
    TimeBudget,
    build_chunk_index,
    generate_collection,
    precision_at_k,
)
from repro.core.ground_truth import GroundTruthStore
from repro.workloads.queries import dataset_queries

K = 30
N_QUERIES = 25


def main() -> None:
    collection = generate_collection(
        SyntheticImageConfig(
            n_images=120,
            mean_descriptors_per_image=50,
            pattern_std=0.05,
            pattern_scale_range=(-1.1, 0.0),
            seed=11,
        )
    )
    chunking = SRTreeChunker(leaf_capacity=96).form_chunks(collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)
    searcher = ChunkSearcher(index)
    workload = dataset_queries(collection, N_QUERIES, seed=2)
    truth = GroundTruthStore.compute(collection, workload.queries, K)
    print(f"{len(collection)} descriptors, {index.n_chunks} chunks\n")

    policies = {
        "exact completion": ExactCompletion(),
        "max 2 chunks": MaxChunks(2),
        "max 8 chunks": MaxChunks(8),
        "time budget 40 ms": TimeBudget(0.040),
        "time budget 120 ms": TimeBudget(0.120),
        "epsilon 0.05": EpsilonApproximation(0.05, K),
        "epsilon 0.20": EpsilonApproximation(0.20, K),
        "epsilon 0.50": EpsilonApproximation(0.50, K),
        "PAC(0.2, 0.05)": PacApproximation.for_index(
            index, collection, epsilon=0.2, delta=0.05
        ),
        "PAC(0.2, 0.20)": PacApproximation.for_index(
            index, collection, epsilon=0.2, delta=0.20
        ),
    }

    header = f"{'policy':20} {'mean chunks':>12} {'mean time ms':>13} {'precision@30':>13}"
    print(header)
    print("-" * len(header))
    for name, policy in policies.items():
        chunks, times, precisions = [], [], []
        for i, query in enumerate(workload.queries):
            result = searcher.search(query, k=K, stop_rule=policy)
            chunks.append(result.chunks_read)
            times.append(result.elapsed_s)
            precisions.append(precision_at_k(result.neighbor_ids(), truth.get(i)))
        print(
            f"{name:20} {np.mean(chunks):>12.1f} "
            f"{np.mean(times) * 1000:>13.1f} {np.mean(precisions):>13.3f}"
        )

    print(
        "\nFixed-effort rules (chunks/time) trade precision directly for"
        "\nspeed.  The error-bounded rules keep their guarantee: epsilon"
        "\nsaves little here because uniform SR chunks have wide radii"
        "\n(loose lower bounds), while PAC trims the completion tail by"
        "\naccepting a small probability of a miss."
    )


if __name__ == "__main__":
    main()
