"""A growing collection: incremental maintenance instead of rebuilds.

The paper's future work targets a 220-million-descriptor collection — at
which scale the 12-day BAG rebuild (or even the 3-hour SR-tree rebuild) is
not an option for a live system.  This example runs a day-in-the-life
simulation against :class:`repro.core.maintenance.ChunkIndexMaintainer`:

1. build a chunk index over an initial collection;
2. stream in new images (inserts) and retire old ones (deletes), letting
   the maintainer split/merge/relocate chunks;
3. after every batch, verify searches stay exact against a sequential scan
   of the *current* logical collection and report storage health.

Run with: ``python examples/growing_collection.py``
"""

import numpy as np

from repro import (
    ChunkIndexMaintainer,
    ChunkSearcher,
    SRTreeChunker,
    SyntheticImageConfig,
    build_chunk_index,
    exact_knn,
    generate_collection,
)
from repro.core.dataset import DescriptorCollection


def main() -> None:
    initial = generate_collection(
        SyntheticImageConfig(n_images=80, mean_descriptors_per_image=40, seed=3)
    )
    chunking = SRTreeChunker(leaf_capacity=64).form_chunks(initial)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)
    maintainer = ChunkIndexMaintainer(index)
    print(
        f"initial: {len(initial)} descriptors, {index.n_chunks} chunks, "
        f"target size {maintainer.target_chunk_size}"
    )

    # Logical state mirrored on the side for verification.
    live_ids = {int(i): initial.vectors[row] for row, i in enumerate(initial.ids)}
    next_id = int(initial.ids.max()) + 1

    rng = np.random.default_rng(7)
    arrivals = generate_collection(
        SyntheticImageConfig(n_images=40, mean_descriptors_per_image=40, seed=99)
    )
    arrival_cursor = 0

    for day in range(1, 6):
        # ~300 new descriptors arrive, ~150 old ones are retired.
        n_in = min(300, len(arrivals) - arrival_cursor)
        for _ in range(n_in):
            vector = arrivals.vectors[arrival_cursor]
            maintainer.insert(next_id, vector)
            live_ids[next_id] = vector
            next_id += 1
            arrival_cursor += 1
        for victim in rng.choice(sorted(live_ids), size=150, replace=False):
            maintainer.delete(int(victim))
            del live_ids[int(victim)]

        # Verify: fresh searcher over the maintained index is still exact.
        current = maintainer.to_index(name=f"day-{day}")
        searcher = ChunkSearcher(current)
        ids = sorted(live_ids)
        logical = DescriptorCollection(
            vectors=np.vstack([live_ids[i] for i in ids]),
            ids=np.asarray(ids, dtype=np.int64),
            image_ids=np.zeros(len(ids), dtype=np.int64),
        )
        checks = rng.choice(len(logical), size=5, replace=False)
        for row in checks:
            query = logical.vectors[row].astype(float)
            got = searcher.search(query, k=10)
            assert list(got.neighbor_ids()) == list(exact_knn(logical, query, 10))

        stats = maintainer.stats
        print(
            f"day {day}: {len(maintainer):5d} live descriptors, "
            f"{maintainer.n_chunks:3d} chunks | "
            f"splits={stats.splits} merges={stats.merges} "
            f"relocations={stats.relocations} "
            f"fragmentation={maintainer.fragmentation:.1%} | searches exact"
        )

    print("\nSearches remained provably exact through every batch; the")
    print("fragmentation column is the signal for scheduling a compaction.")


if __name__ == "__main__":
    main()
