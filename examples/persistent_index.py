"""On-disk chunk index: the paper's two-file architecture, for real.

The other examples keep chunk contents in memory (their I/O cost comes
from the simulated disk).  This example writes the real files —
``chunks.dat`` (descriptors grouped by chunk, padded to 8 KiB pages) and
``chunks.idx`` (centroid + radius + location per chunk) — reopens them,
and verifies searches against ground truth, also comparing the simulated
timing to a wall-clock measurement of the same scan.

Run with: ``python examples/persistent_index.py``
"""

import os
import tempfile
import time

import numpy as np

from repro import (
    ChunkSearcher,
    SRTreeChunker,
    SyntheticImageConfig,
    build_chunk_index,
    exact_knn,
    generate_collection,
)
from repro.core.chunk_index import ChunkIndex


def main() -> None:
    collection = generate_collection(
        SyntheticImageConfig(n_images=80, mean_descriptors_per_image=50, seed=2)
    )
    chunking = SRTreeChunker(leaf_capacity=96).form_chunks(collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set)

    with tempfile.TemporaryDirectory() as workdir:
        directory = os.path.join(workdir, "descriptor_index")
        index.save(directory)
        chunk_file = os.path.join(directory, "chunks.dat")
        index_file = os.path.join(directory, "chunks.idx")
        print(f"chunk file: {os.path.getsize(chunk_file):>9} bytes "
              f"({index.n_chunks} chunks, 8 KiB pages)")
        print(f"index file: {os.path.getsize(index_file):>9} bytes")

        loaded = ChunkIndex.load(directory, dimensions=collection.dimensions)
        searcher = ChunkSearcher(loaded)

        rng = np.random.default_rng(1)
        rows = rng.choice(len(collection), size=10, replace=False)
        wall_start = time.perf_counter()
        simulated = 0.0
        for row in rows:
            query = collection.vectors[row].astype(np.float64)
            result = searcher.search(query, k=10)
            assert result.completed
            assert list(result.neighbor_ids()) == list(
                exact_knn(collection, query, 10)
            )
            simulated += result.elapsed_s
        wall = time.perf_counter() - wall_start
        loaded.close()

    print(f"\n10 exact queries against the on-disk index: all correct")
    print(f"simulated 2005-hardware time: {simulated * 1000:8.1f} ms")
    print(f"actual wall-clock time:       {wall * 1000:8.1f} ms")
    print("\n(The simulated clock models the paper's disk; the wall clock"
          "\nmeasures this machine reading the same pages from files.)")


if __name__ == "__main__":
    main()
