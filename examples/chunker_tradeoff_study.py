"""A miniature of the paper's Experiment 1: quality vs time per chunker.

Forms chunks over the same collection with four strategies — BAG
(intra-chunk similarity first), SR-tree (uniform size first), balanced
k-means (the paper's proposed hybrid) and random (the strawman) — then
measures, over a DQ workload run to completion:

* chunks read and simulated time until N of the true 30 NN are found, and
* time to completion.

Run with: ``python examples/chunker_tradeoff_study.py``
"""

import numpy as np

from repro import (
    BagClusterer,
    ChunkSearcher,
    HybridChunker,
    RandomChunker,
    SRTreeChunker,
    SyntheticImageConfig,
    build_chunk_index,
    estimate_mpi,
    generate_collection,
)
from repro.core.ground_truth import GroundTruthStore
from repro.core.metrics import completion_stats, curves_from_traces
from repro.workloads.queries import dataset_queries

K = 30
N_QUERIES = 20


def main() -> None:
    collection = generate_collection(
        SyntheticImageConfig(
            n_images=100,
            mean_descriptors_per_image=50,
            n_patterns=100,
            pattern_std=0.05,
            pattern_scale_range=(-1.1, 0.0),
            seed=9,
        )
    )
    print(f"collection: {len(collection)} descriptors\n")

    mpi = estimate_mpi(collection)
    chunkers = {
        "BAG": BagClusterer(mpi=mpi, target_clusters=400, max_passes=400),
        "SR": SRTreeChunker(leaf_capacity=64),
        "HYB": HybridChunker(target_chunk_size=64, seed=1),
        "RAND": RandomChunker(n_chunks=80, seed=1),
    }

    workload = dataset_queries(collection, N_QUERIES, seed=3)
    header = (
        f"{'chunker':8} {'chunks':>7} {'avg size':>9} "
        f"{'chunks(20nn)':>13} {'t(20nn) ms':>11} {'completion ms':>14}"
    )
    print(header)
    print("-" * len(header))
    for name, chunker in chunkers.items():
        result = chunker.form_chunks(collection)
        index = build_chunk_index(result.retained, result.chunk_set, name=name)
        truth = GroundTruthStore.compute(result.retained, workload.queries, K)
        searcher = ChunkSearcher(index)
        traces = [
            searcher.search(
                workload.queries[i], k=K, true_neighbor_ids=truth.get(i)
            ).trace
            for i in range(len(workload))
        ]
        curves = curves_from_traces(traces, K)
        stats = completion_stats(traces)
        print(
            f"{name:8} {index.n_chunks:>7} {result.mean_chunk_size:>9.0f} "
            f"{curves.chunks_read[20]:>13.1f} "
            f"{curves.elapsed_s[20] * 1000:>11.1f} "
            f"{stats.mean_elapsed_s * 1000:>14.1f}"
        )

    print(
        "\nThe paper's lesson in miniature: locality-aware chunkers need"
        "\nfar fewer chunks than random; uniform sizes (SR/HYB) deliver"
        "\nearly neighbors faster than skewed BAG clusters."
    )


if __name__ == "__main__":
    main()
