"""Quickstart: build a chunk index and run approximate searches.

Walks the full public API surface in ~40 lines:

1. generate a synthetic local-descriptor collection,
2. form uniform chunks with the SR-tree chunker,
3. build the two-file chunk index,
4. search it — run-to-completion (exact) and under approximate stop rules,
5. measure the quality/time trade-off of each stop rule.

Run with: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    ChunkSearcher,
    ExactCompletion,
    MaxChunks,
    SRTreeChunker,
    SyntheticImageConfig,
    TimeBudget,
    build_chunk_index,
    exact_knn,
    generate_collection,
    precision_at_k,
)


def main() -> None:
    # 1. A small image-descriptor collection: 120 synthetic images, 24-d.
    collection = generate_collection(
        SyntheticImageConfig(n_images=120, mean_descriptors_per_image=50, seed=1)
    )
    print(f"collection: {len(collection)} descriptors, {collection.dimensions}-d")

    # 2-3. Uniform chunks from SR-tree leaves, then the chunk index.
    chunking = SRTreeChunker(leaf_capacity=128).form_chunks(collection)
    index = build_chunk_index(chunking.retained, chunking.chunk_set, name="quick")
    print(f"index: {index.n_chunks} chunks of ~{chunking.mean_chunk_size:.0f}")

    # 4. One query descriptor, searched under three stop rules.
    searcher = ChunkSearcher(index)
    query = collection.vectors[17].astype(np.float64)
    truth = exact_knn(collection, query, 30)

    for stop_rule in (ExactCompletion(), MaxChunks(3), TimeBudget(0.02)):
        result = searcher.search(query, k=30, stop_rule=stop_rule)
        precision = precision_at_k(result.neighbor_ids(), truth)
        print(
            f"{stop_rule!r:24} -> chunks={result.chunks_read:3d}  "
            f"time={result.elapsed_s * 1000:7.1f} ms (simulated)  "
            f"precision@30={precision:.2f}  "
            f"exact={result.completed}"
        )

    # 5. The headline trade-off: a few chunks already give most of the
    # quality; the exactness guarantee costs the rest of the scan.


if __name__ == "__main__":
    main()
