"""Near-duplicate keyframe detection with the full retrieval system.

The paper's collection came mostly from television broadcasts, where the
same footage recurs across programmes (reruns, ads, news clips) — finding
those near-duplicates is a canonical application of local-descriptor
search.  This example drives :class:`repro.system.ImageRetrievalSystem`
end to end:

1. index a "broadcast archive" of keyframes;
2. ingest a day of new keyframes *live* (incremental adds), some of which
   are re-aired variants of archived footage;
3. flag every new keyframe whose best match exceeds a vote threshold;
4. persist the grown system and verify it reopens intact.

Run with: ``python examples/video_keyframe_dedup.py``
"""

import os
import tempfile

import numpy as np

from repro import ImageRetrievalSystem, SyntheticImageConfig, generate_collection


def rebroadcast(descriptors: np.ndarray, seed: int) -> np.ndarray:
    """A re-aired variant: re-encoded (noise), slightly trimmed."""
    rng = np.random.default_rng(seed)
    keep = rng.random(len(descriptors)) < 0.8
    kept = descriptors[keep].astype(np.float64)
    return kept + 0.008 * rng.standard_normal(kept.shape)


def main() -> None:
    archive = generate_collection(
        SyntheticImageConfig(n_images=200, mean_descriptors_per_image=40, seed=21)
    )
    system = ImageRetrievalSystem(default_stop_chunks=4)
    system.index_images(archive)
    print(
        f"archive: {system.n_images} keyframes, "
        f"{system.n_descriptors} descriptors"
    )

    rng = np.random.default_rng(0)

    # A day of ingest: 12 genuinely new keyframes + 8 re-aired ones.  Each
    # new keyframe is generated with its own visual vocabulary (separate
    # seed) so "new" really means unrelated to everything else.
    day = []
    for image in range(12):
        single = generate_collection(
            SyntheticImageConfig(
                n_images=1, mean_descriptors_per_image=40, seed=500 + image
            )
        )
        day.append((f"new-{image}", single.vectors, None))
    for i in range(8):
        source = int(rng.integers(200))
        rows = np.flatnonzero(archive.image_ids == source)
        day.append(
            (f"rerun-of-{source}", rebroadcast(archive.vectors[rows], i), source)
        )
    rng.shuffle(day)

    # Verified voting: a descriptor match only counts within this
    # distance (calibrated to the re-encoding noise, far below typical
    # inter-pattern distances).
    match_distance = 0.08
    vote_threshold = 0.4  # fraction of query descriptors that must agree
    next_image_id = 1000
    correct = 0
    for label, descriptors, source in day:
        matches = system.find_similar_images(
            descriptors, top_images=1, max_match_distance=match_distance
        )
        is_dup = bool(
            matches and matches[0].votes >= vote_threshold * len(descriptors)
        )
        verdict_ok = is_dup == (source is not None) and (
            not is_dup or matches[0].image_id == source
        )
        correct += verdict_ok
        flag = "DUPLICATE of %4s" % (matches[0].image_id,) if is_dup else "new footage     "
        print(f"  {label:14} -> {flag}  {'OK' if verdict_ok else 'WRONG'}")
        # New footage enters the archive immediately (live maintenance).
        if not is_dup:
            system.add_image(next_image_id, descriptors)
            next_image_id += 1

    print(f"\n{correct}/{len(day)} verdicts correct; archive grew to "
          f"{system.n_images} keyframes")

    with tempfile.TemporaryDirectory() as workdir:
        target = os.path.join(workdir, "archive")
        system.save(target)
        reopened = ImageRetrievalSystem.load(target)
        assert reopened.n_images == system.n_images
        print(f"persisted and reopened: {reopened.n_descriptors} descriptors intact")


if __name__ == "__main__":
    main()
