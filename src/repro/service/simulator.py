"""The resilient query service: a deterministic discrete-event simulation.

This module wires the four mechanisms — deadline propagation
(:mod:`.deadline`), admission control (:mod:`.admission`), circuit
breakers (:mod:`.breaker`) and adaptive degradation (:mod:`.controller`)
— around one :class:`~repro.core.batch_search.BatchChunkSearcher` worker
pool, fed by a seeded open-loop Poisson arrival stream.  Everything runs
on the *simulated* clock: service durations come from the cost model
(the paper's calibrated 2004 hardware), waits from the worker pool's
queueing timeline, faults from the pure fault plan.  A run is therefore
a pure function of ``(index, workload, config, fault plan)`` — replaying
it with the same seeds reproduces every timestamp, shed decision,
breaker trip and budget adjustment bit for bit.

Event loop
----------
A binary heap of ``(time, priority, seq)`` events; completions sort
before arrivals at equal timestamps (a freed worker is visible to work
arriving "at the same instant"), and a monotone sequence number makes
ordering total.  Two event kinds:

* **arrival** — the admission controller decides shed-or-admit from the
  queue length and the pool's next-free times; admitted requests enter
  the FIFO queue and dispatch immediately if a worker is idle.
* **completion** — the finished search's trace feeds the breaker board
  and the admission EWMA, its latency feeds the degradation controller,
  the record is written, and the freed worker pulls the next queued
  request.

Dispatch happens only at event instants, and a dispatched request always
starts *now* (an idle worker's ``free_time <= now``), which is what lets
the service compute the search's stop rule — a function of the remaining
deadline and the controller's current budget — at dispatch time.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batch_search import BatchChunkSearcher
from ..core.metrics import (
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_SHED,
    SloStats,
    precision_at_k,
    slo_stats,
)
from ..core.search import SearchResult
from ..faults.injector import FaultInjector
from ..workloads.arrivals import poisson_arrival_times
from ..simio.queueing import WorkerPool
from .admission import AdmissionController
from .breaker import BREAKER_OPEN, BreakerBoard, BreakerGuardedInjector
from .controller import AdaptiveBudgetController
from .deadline import propagated_stop_rule
from .request import QueryRequest, RequestRecord, ServiceConfig

__all__ = ["QueryService", "ServiceRunResult"]

# Completion events sort before arrivals at the same timestamp.
_EVT_COMPLETION = 0
_EVT_ARRIVAL = 1


@dataclasses.dataclass(frozen=True)
class ServiceRunResult:
    """Everything one simulated-traffic run produced.

    ``records`` is ordered by request index (= workload order), not by
    completion time.  ``stats`` aggregates outcomes/latencies/recall via
    :func:`~repro.core.metrics.slo_stats`.  ``budget_history`` is the
    controller's ``(completion_count, budget)`` timeline (0 = unbounded);
    ``breaker_state_counts`` is the final closed/open/half-open census.
    """

    config: ServiceConfig
    records: List[RequestRecord]
    stats: SloStats
    budget_history: List[Tuple[int, int]]
    final_budget: int
    n_shrinks: int
    n_grows: int
    n_shed_full: int
    n_shed_late: int
    service_estimate_s: float
    breaker_opens: int
    breaker_state_counts: Dict[str, int]
    breaker_transitions: Dict[str, int]
    breaker_skipped_chunks: int
    makespan_s: float
    utilization: float

    def to_report(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (no per-request records)."""
        stats = dataclasses.asdict(self.stats)
        return {
            "config": dataclasses.asdict(self.config),
            "slo": stats,
            "controller": {
                "budget_history": [list(point) for point in self.budget_history],
                "final_budget": self.final_budget,
                "n_shrinks": self.n_shrinks,
                "n_grows": self.n_grows,
            },
            "admission": {
                "n_shed_full": self.n_shed_full,
                "n_shed_late": self.n_shed_late,
                "service_estimate_s": self.service_estimate_s,
            },
            "breakers": {
                "opens": self.breaker_opens,
                "state_counts": dict(sorted(self.breaker_state_counts.items())),
                "transitions": dict(sorted(self.breaker_transitions.items())),
                "skipped_chunks": self.breaker_skipped_chunks,
            },
            "makespan_s": self.makespan_s,
            "utilization": self.utilization,
        }


class QueryService:
    """Simulated resilient query service over one chunk index.

    Parameters
    ----------
    searcher:
        The (batched) search engine; each simulated worker runs one
        request at a time through it.  The searcher is used one query
        per call with the request's stable workload index as its fault
        key, so fault draws match a whole-workload batch run.
    config:
        All service tunables; see :class:`~repro.service.request.ServiceConfig`.
    faults:
        Optional fault injector (PR 3); breaker decisions wrap it per
        request via :class:`~repro.service.breaker.BreakerGuardedInjector`.
    true_neighbor_ids:
        Optional per-query ground-truth id lists; when given, a served
        request's ``recall`` is true precision-at-k, otherwise the
        descriptor-coverage proxy.
    """

    def __init__(
        self,
        searcher: BatchChunkSearcher,
        config: ServiceConfig,
        faults: Optional[FaultInjector] = None,
        true_neighbor_ids: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ):
        self.searcher = searcher
        self.config = config
        self.faults = faults
        self.truth = true_neighbor_ids
        self.n_chunks = searcher.index.n_chunks
        self._total_descriptors = int(
            np.asarray(searcher.index.descriptor_counts()).sum()
        )

    # -- per-request execution ----------------------------------------------

    def _recall_of(self, request: QueryRequest, result: SearchResult) -> float:
        """Per-request quality: true recall when ground truth is known,
        else the fraction of the index's descriptors actually scanned
        (1.0 for provably-exact answers: exactness needs no scanning
        beyond the proof)."""
        truth_ids = None if self.truth is None else self.truth[request.index]
        if truth_ids is not None:
            return precision_at_k(result.neighbor_ids().tolist(), truth_ids)
        if result.completed:
            return 1.0
        if self._total_descriptors == 0:
            return math.nan
        return min(1.0, result.trace.descriptors_scanned / self._total_descriptors)

    def _classify(self, stop_reason: str, result: SearchResult) -> str:
        """Map a finished search onto the request-outcome vocabulary.

        The deadline firing dominates (it is the SLO event), then
        provable exactness, then everything quality-reduced (budget
        trims, fault skips, breaker skips).
        """
        if stop_reason.startswith("deadline("):
            return OUTCOME_DEADLINE
        if result.completed:
            return OUTCOME_OK
        return OUTCOME_DEGRADED

    def _run_request(
        self, request: QueryRequest, start_s: float, board: BreakerBoard,
        chunk_budget: int,
    ) -> SearchResult:
        """Execute one request's search as of ``start_s`` (simulated)."""
        rule = propagated_stop_rule(
            request.remaining_s(start_s), chunk_budget, self.n_chunks
        )
        guarded = BreakerGuardedInjector(
            self.faults, board, board.blocked_regions(start_s)
        )
        truth_entry = None
        if self.truth is not None:
            truth_entry = self.truth[request.index]
        batch = self.searcher.search_batch(
            request.query,
            k=self.config.k,
            stop_rule=rule,
            true_neighbor_ids=None if truth_entry is None else [truth_entry],
            faults=None if guarded.is_null else guarded,  # type: ignore[arg-type]
            query_indices=[request.index],
        )
        return batch[0]

    # -- the event loop ------------------------------------------------------

    def run(self, queries: np.ndarray) -> ServiceRunResult:
        """Simulate the whole open-loop run over ``queries``.

        ``queries`` is the ``(n, d)`` workload matrix; request ``i``
        carries query ``i`` and arrives at the seeded Poisson schedule's
        ``times_s[i]``.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[0] == 0:
            raise ValueError(
                f"queries must be a non-empty (n, d) matrix, got {queries.shape}"
            )
        if self.truth is not None and len(self.truth) != queries.shape[0]:
            raise ValueError(
                f"got {len(self.truth)} ground-truth lists "
                f"for {queries.shape[0]} queries"
            )
        config = self.config
        schedule = poisson_arrival_times(
            queries.shape[0], config.arrival_rate_qps, config.seed
        )
        pool = WorkerPool(config.n_workers)
        admission = AdmissionController(
            queue_capacity=config.queue_capacity,
            initial_service_estimate_s=(
                config.initial_service_estimate_s or config.deadline_s
            ),
            alpha=config.service_time_alpha,
            shed_slack=config.shed_slack,
        )
        board = BreakerBoard(
            n_chunks=self.n_chunks,
            region_size=config.region_size,
            window=config.breaker_window,
            failure_threshold=config.breaker_failure_threshold,
            cooldown_s=config.breaker_cooldown_s,
            probe_successes=config.breaker_probe_successes,
        )
        controller = AdaptiveBudgetController(
            initial_budget=config.initial_chunk_budget,
            n_chunks=self.n_chunks,
            min_budget=config.min_chunk_budget,
            target_p99_s=config.target_p99_s,
            adjust_every=config.adjust_every,
            latency_window=config.latency_window,
            shrink_factor=config.shrink_factor,
            grow_step=config.grow_step,
            headroom=config.headroom,
        )

        # (time, priority, seq) heap; payloads keyed by seq.  Completions
        # (priority 0) beat arrivals (priority 1) at equal times.
        events: List[Tuple[float, int, int]] = []
        payloads: Dict[int, Any] = {}
        seq = 0
        queue: List[QueryRequest] = []  # FIFO via pop(0); bounded, so cheap
        records: List[Optional[RequestRecord]] = [None] * queries.shape[0]
        breaker_skipped_chunks = 0
        makespan = 0.0

        for i in range(queries.shape[0]):
            arrival = float(schedule.times_s[i])
            request = QueryRequest(
                index=i,
                query=queries[i],
                arrival_s=arrival,
                deadline_s=arrival + config.deadline_s,
            )
            heapq.heappush(events, (arrival, _EVT_ARRIVAL, seq))
            payloads[seq] = request
            seq += 1

        def dispatch(now: float) -> None:
            nonlocal seq, breaker_skipped_chunks
            while queue and pool.idle_workers(now) > 0:
                request = queue.pop(0)
                chunk_budget = controller.budget
                result = self._run_request(request, now, board, chunk_budget)
                duration = result.elapsed_s
                worker, start, finish = pool.assign(now, duration)
                heapq.heappush(events, (finish, _EVT_COMPLETION, seq))
                payloads[seq] = (request, result, start, worker, chunk_budget)
                seq += 1

        while events:
            now, priority, evt_seq = heapq.heappop(events)
            payload = payloads.pop(evt_seq)
            if priority == _EVT_ARRIVAL:
                request = payload
                admit, shed_reason = admission.decide(
                    request, now, pool.free_times(), len(queue)
                )
                if not admit:
                    records[request.index] = RequestRecord(
                        index=request.index,
                        outcome=OUTCOME_SHED,
                        stop_reason=shed_reason,
                        arrival_s=request.arrival_s,
                        start_s=math.nan,
                        finish_s=math.nan,
                        latency_s=math.nan,
                        wait_s=math.nan,
                        chunk_budget=0,
                        chunks_read=0,
                        chunks_skipped=0,
                        breaker_skips=0,
                        recall=math.nan,
                    )
                    continue
                queue.append(request)
                dispatch(now)
            else:
                request, result, start, worker, chunk_budget = payload
                makespan = max(makespan, now)
                duration = now - start
                board.observe_trace(result.trace.events, now)
                admission.observe_service_time(duration)
                latency = now - request.arrival_s
                controller.observe(latency)
                breaker_skips = sum(
                    1 for e in result.trace.events if e.fault == BREAKER_OPEN
                )
                breaker_skipped_chunks += breaker_skips
                records[request.index] = RequestRecord(
                    index=request.index,
                    outcome=self._classify(result.stop_reason, result),
                    stop_reason=result.stop_reason,
                    arrival_s=request.arrival_s,
                    start_s=start,
                    finish_s=now,
                    latency_s=latency,
                    wait_s=start - request.arrival_s,
                    chunk_budget=chunk_budget,
                    chunks_read=result.chunks_read,
                    chunks_skipped=result.chunks_skipped,
                    breaker_skips=breaker_skips,
                    recall=self._recall_of(request, result),
                    worker=worker,
                )
                dispatch(now)

        done = [record for record in records if record is not None]
        assert len(done) == queries.shape[0], "every request must be recorded"
        stats = slo_stats(
            [record.outcome for record in done],
            [record.latency_s for record in done],
            [record.recall for record in done],
        )
        horizon = makespan if makespan > 0.0 else schedule.span_s
        return ServiceRunResult(
            config=config,
            records=done,
            stats=stats,
            budget_history=list(controller.history),
            final_budget=controller.budget,
            n_shrinks=controller.n_shrinks,
            n_grows=controller.n_grows,
            n_shed_full=admission.n_shed_full,
            n_shed_late=admission.n_shed_late,
            service_estimate_s=admission.service_estimate_s,
            breaker_opens=board.total_opens,
            breaker_state_counts=board.state_counts(),
            breaker_transitions=board.transition_counts(),
            breaker_skipped_chunks=breaker_skipped_chunks,
            makespan_s=horizon,
            utilization=pool.utilization(horizon) if horizon > 0.0 else 0.0,
        )
