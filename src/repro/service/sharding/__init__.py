"""Sharded serving: replicated placement plus hedged scatter-gather.

The single-node :class:`~repro.service.simulator.QueryService` bounds
tail latency by degrading quality; this package bounds it by *dividing
work*: a placement optimizer partitions the index's chunks across shard
nodes with replication, and a scatter-gather coordinator fans each query
out under its propagated deadline, failing over across replicas, hedging
stragglers, and merging per-shard top-k results exactly.  With no faults
and hedging disabled the merged answer is bit-identical to the
single-node searcher's; under faults it degrades monotonically with an
honest per-query coverage fraction.

* :mod:`~repro.service.sharding.placement` — chunk cost estimation,
  greedy/split/round-robin/random placement, replica rings, partition
  sub-index construction;
* :mod:`~repro.service.sharding.nodes` — per-shard worker pools and
  searchers;
* :mod:`~repro.service.sharding.coordinator` — the deterministic
  scatter-gather event loop with breakers, failover and hedging.
"""

from .config import (
    SHED_IN_FLIGHT,
    STOP_COMPLETED,
    STOP_EXHAUSTED,
    ShardRequestRecord,
    ShardServiceConfig,
)
from .coordinator import ShardedQueryService, ShardRunResult
from .nodes import ShardNode, SubAssignment
from .placement import (
    PLACEMENT_GREEDY,
    PLACEMENT_RANDOM,
    PLACEMENT_ROUND_ROBIN,
    PLACEMENT_SPLIT,
    PLACEMENT_STRATEGIES,
    Partition,
    PlacementPlan,
    build_partition_index,
    estimate_chunk_costs,
    plan_placement,
)

__all__ = [
    "PLACEMENT_GREEDY",
    "PLACEMENT_SPLIT",
    "PLACEMENT_ROUND_ROBIN",
    "PLACEMENT_RANDOM",
    "PLACEMENT_STRATEGIES",
    "Partition",
    "PlacementPlan",
    "estimate_chunk_costs",
    "plan_placement",
    "build_partition_index",
    "ShardNode",
    "SubAssignment",
    "ShardServiceConfig",
    "ShardRequestRecord",
    "SHED_IN_FLIGHT",
    "STOP_COMPLETED",
    "STOP_EXHAUSTED",
    "ShardedQueryService",
    "ShardRunResult",
]
