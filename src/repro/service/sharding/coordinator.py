"""The sharded query service: scatter-gather with failover and hedging.

One coordinator fans each arriving query out to every partition of a
:class:`~repro.service.sharding.placement.PlacementPlan`, executes the
per-partition searches on simulated :class:`ShardNode` worker pools
under the query's propagated deadline, and merges the per-shard top-k
exactly.  The robustness core:

* **Per-shard circuit breakers** — one
  :class:`~repro.service.breaker.RegionBreaker` region per shard; a
  shard that keeps failing is skipped at dispatch time (``breaker-open``
  failover) until its cooldown expires.
* **Replica failover** — a failed sub-request (injected error or
  outage) is retried on the partition's next replica; each holder is
  tried at most once, and a partition whose holders are all exhausted
  is honestly *lost*, not silently dropped.
* **Seeded hedged requests** — when a sub-request has not answered
  ``hedge_delay_s`` after dispatch, a duplicate is sent to the next
  replica; the first answer wins and the loser's unconsumed worker
  occupancy is reclaimed (first-wins cancellation).
* **Quorum-style partial results** — at the deadline the coordinator
  finalises with whatever arrived; every answer carries an honest
  ``coverage_fraction`` and a degraded stop reason when shards were
  lost or sub-scans trimmed.

Exact-merge argument (the bit-identical claim)
----------------------------------------------
``(distance, id)`` is a total order, so the exact top-k of any
descriptor set is unique.  Partitions tile the index; each partition
search is the same per-chunk kernel over the same float64 vectors, so
per-shard distances are bit-identical to the single node's, and the
k-way merge of per-partition exact top-k's equals the single-node exact
top-k — ids, distances and order.  The stop reason is reconstructed
exactly as well: an exact single-node scan ends ``"completed"`` iff the
index holds at least ``k`` descriptors (on the last chunk the remaining
lower bound is infinite, so a full neighbor set proves completion) and
``"exhausted"`` otherwise — equivalently, iff the merged result holds
``k`` neighbors.  Hence with no faults and hedging disabled the sharded
answer is indistinguishable from the single-node searcher's.

Everything runs on the simulated clock; a run is a pure function of
``(index, placement, config, shard fault plan)``.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...core.metrics import (
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_SHED,
    SloStats,
    precision_at_k,
    slo_stats,
)
from ...core.neighbors import Neighbor, merge_neighbor_lists
from ...core.search import ChunkSearcher, SearchResult
from ...faults.shard_plan import SHARD_OK, ShardFaultPlan
from ...simio.calibration import PAPER_2005_COST_MODEL
from ...simio.pipeline import CostModel
from ...workloads.arrivals import poisson_arrival_times
from ..breaker import BreakerBoard
from ..deadline import propagated_stop_rule
from ..request import QueryRequest
from ...core.chunk_index import ChunkIndex
from .config import (
    SHED_IN_FLIGHT,
    STOP_COMPLETED,
    STOP_EXHAUSTED,
    ShardRequestRecord,
    ShardServiceConfig,
)
from .nodes import ShardNode, SubAssignment
from .placement import Partition, PlacementPlan, build_partition_index

__all__ = ["ShardedQueryService", "ShardRunResult"]

# Event priorities: completions free capacity and resolve subtasks
# before timers consult them; arrivals see a settled cluster.
_EVT_COMPLETION = 0
_EVT_TIMER = 1
_EVT_ARRIVAL = 2


@dataclasses.dataclass
class _Attempt:
    """One dispatched copy of a sub-request."""

    shard_id: int
    assignment: SubAssignment
    failed: bool
    is_hedge: bool
    result: Optional[SearchResult] = None
    cancelled: bool = False


@dataclasses.dataclass
class _SubTask:
    """One query's work on one partition."""

    partition: Partition
    targets: Tuple[int, ...]
    next_target: int = 0
    attempt_no: int = 0
    in_flight: Dict[int, _Attempt] = dataclasses.field(default_factory=dict)
    result: Optional[SearchResult] = None
    lost: bool = False
    hedged: bool = False

    @property
    def resolved(self) -> bool:
        return self.result is not None or self.lost


@dataclasses.dataclass
class _QueryState:
    """Coordinator-side state of one admitted query."""

    request: QueryRequest
    subtasks: Dict[int, _SubTask]
    done: bool = False
    n_failovers: int = 0
    n_hedges: int = 0
    n_hedge_wins: int = 0
    n_breaker_skips: int = 0


@dataclasses.dataclass(frozen=True)
class _SubCompletion:
    query_index: int
    partition_id: int
    token: int


@dataclasses.dataclass(frozen=True)
class _HedgeTimer:
    query_index: int
    partition_id: int
    token: int


@dataclasses.dataclass(frozen=True)
class _DeadlineTimer:
    query_index: int


_Payload = Union[QueryRequest, _SubCompletion, _HedgeTimer, _DeadlineTimer]


@dataclasses.dataclass(frozen=True)
class ShardRunResult:
    """Everything one sharded-traffic run produced.

    ``records`` is ordered by request index.  ``stats`` aggregates via
    :func:`~repro.core.metrics.slo_stats`; ``mean_coverage`` averages
    the honest per-query coverage over served requests.  The breaker
    fields expose the per-shard state machines — counts of opens,
    half-opens and closes make failover behaviour observable in sweeps.
    """

    config: ShardServiceConfig
    placement: Dict[str, object]
    records: List[ShardRequestRecord]
    stats: SloStats
    mean_coverage: float
    n_failovers: int
    n_hedges: int
    n_hedge_wins: int
    n_breaker_skips: int
    n_lost_partitions: int
    reclaimed_s: float
    breaker_opens: int
    breaker_state_counts: Dict[str, int]
    breaker_transitions: Dict[str, int]
    shard_served: List[int]
    shard_failed: List[int]
    makespan_s: float
    mean_utilization: float

    def to_report(self) -> Dict[str, object]:
        """Deterministic, JSON-ready summary (no per-request records)."""
        return {
            "config": dataclasses.asdict(self.config),
            "placement": dict(self.placement),
            "slo": dataclasses.asdict(self.stats),
            "coverage": {"mean": self.mean_coverage},
            "robustness": {
                "n_failovers": self.n_failovers,
                "n_hedges": self.n_hedges,
                "n_hedge_wins": self.n_hedge_wins,
                "n_breaker_skips": self.n_breaker_skips,
                "n_lost_partitions": self.n_lost_partitions,
                "reclaimed_s": self.reclaimed_s,
            },
            "breakers": {
                "opens": self.breaker_opens,
                "state_counts": dict(sorted(self.breaker_state_counts.items())),
                "transitions": dict(sorted(self.breaker_transitions.items())),
            },
            "shards": {
                "served": list(self.shard_served),
                "failed": list(self.shard_failed),
            },
            "makespan_s": self.makespan_s,
            "mean_utilization": self.mean_utilization,
        }


class ShardedQueryService:
    """Deterministic scatter-gather simulation over a placed index.

    Parameters
    ----------
    index:
        The single-node chunk index being sharded; partitions tile its
        chunks per the placement plan.
    plan:
        A :class:`~repro.service.sharding.placement.PlacementPlan`
        covering exactly this index's chunks.
    config:
        Coordinator tunables; see :class:`ShardServiceConfig`.
    cost_model:
        Per-shard search cost model (the paper's calibrated hardware by
        default).  Shared caches are not supported here — each shard is
        its own node, so cross-shard cache coupling would be fiction.
    faults:
        Optional :class:`~repro.faults.shard_plan.ShardFaultPlan`.
    true_neighbor_ids:
        Optional per-query ground truth for true recall; otherwise the
        coverage fraction serves as the quality proxy.
    """

    def __init__(
        self,
        index: ChunkIndex,
        plan: PlacementPlan,
        config: ShardServiceConfig,
        cost_model: CostModel = PAPER_2005_COST_MODEL,
        faults: Optional[ShardFaultPlan] = None,
        true_neighbor_ids: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ):
        if cost_model.cache is not None or cost_model.chunk_cache is not None:
            raise ValueError(
                "sharded serving does not support shared caches: each "
                "shard is a separate node with its own memory"
            )
        placed = sorted(
            chunk_id
            for partition in plan.partitions
            for chunk_id in partition.chunk_ids
        )
        if placed != list(range(index.n_chunks)):
            raise ValueError(
                f"placement covers {len(placed)} chunks, "
                f"index has {index.n_chunks} (must tile exactly)"
            )
        self.index = index
        self.plan = plan
        self.config = config
        self.faults = faults
        self.truth = true_neighbor_ids
        counts = index.descriptor_counts()
        self._total_descriptors = int(np.asarray(counts).sum())
        self._partition_descriptors: Dict[int, int] = {
            partition.partition_id: int(
                sum(int(counts[c]) for c in partition.chunk_ids)
            )
            for partition in plan.partitions
        }
        self.nodes: List[ShardNode] = [
            ShardNode(shard, config.workers_per_shard)
            for shard in range(plan.n_shards)
        ]
        # One sub-index + searcher per partition, shared by its holders:
        # replicas are bit-identical by construction, so simulating them
        # as one object changes nothing observable.
        self._searchers: Dict[int, ChunkSearcher] = {}
        for partition in plan.partitions:
            sub_index = build_partition_index(
                index,
                partition.chunk_ids,
                name=f"{index.name}/p{partition.partition_id}",
            )
            searcher = ChunkSearcher(sub_index, cost_model=cost_model)
            self._searchers[partition.partition_id] = searcher
            for shard in partition.replicas:
                self.nodes[shard].add_partition(partition.partition_id, searcher)

    # -- per-request quality -------------------------------------------------

    def _recall_of(
        self, request: QueryRequest, merged_ids: List[int], coverage: float,
        exact: bool,
    ) -> float:
        truth_ids = None if self.truth is None else self.truth[request.index]
        if truth_ids is not None:
            return precision_at_k(merged_ids, truth_ids)
        if exact:
            return 1.0
        return coverage

    # -- the event loop ------------------------------------------------------

    def run(self, queries: np.ndarray) -> ShardRunResult:
        """Simulate the whole open-loop run over ``queries``."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[0] == 0:
            raise ValueError(
                f"queries must be a non-empty (n, d) matrix, got {queries.shape}"
            )
        if self.truth is not None and len(self.truth) != queries.shape[0]:
            raise ValueError(
                f"got {len(self.truth)} ground-truth lists "
                f"for {queries.shape[0]} queries"
            )
        config = self.config
        schedule = poisson_arrival_times(
            queries.shape[0], config.arrival_rate_qps, config.seed
        )
        board = BreakerBoard(
            n_chunks=self.plan.n_shards,
            region_size=1,
            window=config.breaker_window,
            failure_threshold=config.breaker_failure_threshold,
            cooldown_s=config.breaker_cooldown_s,
            probe_successes=config.breaker_probe_successes,
        )

        events: List[Tuple[float, int, int]] = []
        payloads: Dict[int, _Payload] = {}
        seq = 0

        def push(time_s: float, priority: int, payload: _Payload) -> int:
            nonlocal seq
            token = seq
            heapq.heappush(events, (time_s, priority, token))
            payloads[token] = payload
            seq += 1
            return token

        states: Dict[int, _QueryState] = {}
        records: List[Optional[ShardRequestRecord]] = [None] * queries.shape[0]
        in_flight_queries = 0
        makespan = 0.0
        totals = {
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "breaker_skips": 0,
            "lost_partitions": 0,
        }
        reclaimed_s = 0.0

        def dispatch_sub(
            state: _QueryState, subtask: _SubTask, now: float, is_hedge: bool
        ) -> bool:
            """Send the sub-request to the next viable replica; returns
            False when every holder has been tried or is breaker-blocked."""
            request = state.request
            while subtask.next_target < len(subtask.targets):
                shard_id = subtask.targets[subtask.next_target]
                subtask.next_target += 1
                if not board.breakers[shard_id].allow(now):
                    state.n_breaker_skips += 1
                    totals["breaker_skips"] += 1
                    continue
                attempt_no = subtask.attempt_no
                subtask.attempt_no += 1
                node = self.nodes[shard_id]
                start_est = node.earliest_start(now)
                sub_fault = (
                    self.faults.sub_request(
                        request.index,
                        subtask.partition.partition_id,
                        shard_id,
                        attempt_no,
                    )
                    if self.faults is not None
                    else SHARD_OK
                )
                down = self.faults is not None and self.faults.shard_down(
                    shard_id, start_est
                )
                result: Optional[SearchResult] = None
                if down or sub_fault.failed:
                    detect_s = (
                        self.faults.error_detect_s
                        if self.faults is not None
                        else 0.0
                    )
                    assignment = node.occupy(now, detect_s)
                    failed = True
                else:
                    searcher = self._searchers[subtask.partition.partition_id]
                    rule = propagated_stop_rule(
                        request.remaining_s(start_est),
                        0,
                        searcher.index.n_chunks,
                    )
                    result = node.execute(
                        subtask.partition.partition_id,
                        request.query,
                        config.k,
                        rule,
                        query_index=request.index,
                    )
                    duration = result.elapsed_s
                    if sub_fault.straggler:
                        duration *= self.faults.straggler_factor  # type: ignore[union-attr]
                    assignment = node.occupy(now, duration)
                    failed = False
                token = push(
                    assignment.finish_s,
                    _EVT_COMPLETION,
                    _SubCompletion(
                        request.index,
                        subtask.partition.partition_id,
                        attempt_no,
                    ),
                )
                subtask.in_flight[attempt_no] = _Attempt(
                    shard_id=shard_id,
                    assignment=assignment,
                    failed=failed,
                    is_hedge=is_hedge,
                    result=result,
                )
                del token
                if (
                    config.hedge_delay_s > 0.0
                    and not is_hedge
                    and not subtask.hedged
                    and subtask.next_target < len(subtask.targets)
                ):
                    push(
                        now + config.hedge_delay_s,
                        _EVT_TIMER,
                        _HedgeTimer(
                            request.index,
                            subtask.partition.partition_id,
                            attempt_no,
                        ),
                    )
                return True
            return False

        def cancel_in_flight(state: _QueryState, now: float) -> None:
            nonlocal reclaimed_s
            for subtask in state.subtasks.values():
                for attempt in subtask.in_flight.values():
                    if attempt.cancelled:
                        continue
                    attempt.cancelled = True
                    reclaimed_s += self.nodes[attempt.shard_id].reclaim(
                        attempt.assignment, now
                    )

        def finalize(state: _QueryState, now: float, at_deadline: bool) -> None:
            nonlocal in_flight_queries, makespan
            state.done = True
            in_flight_queries -= 1
            cancel_in_flight(state, now)
            request = state.request
            parts: List[Sequence[Neighbor]] = []
            covered = 0.0
            lost = 0
            trimmed = False
            for partition_id in sorted(state.subtasks):
                subtask = state.subtasks[partition_id]
                n_desc = self._partition_descriptors[partition_id]
                if subtask.result is not None:
                    parts.append(subtask.result.neighbors)
                    if subtask.result.completed:
                        covered += n_desc
                    else:
                        trimmed = True
                        covered += min(
                            float(subtask.result.trace.descriptors_scanned),
                            float(n_desc),
                        )
                else:
                    lost += 1
            totals["lost_partitions"] += lost
            merged = merge_neighbor_lists(parts, config.k)
            coverage = (
                covered / self._total_descriptors
                if self._total_descriptors
                else 0.0
            )
            exact = lost == 0 and not trimmed
            if at_deadline:
                outcome = OUTCOME_DEADLINE
                stop_reason = f"deadline({config.deadline_s:g}s)"
            elif exact:
                outcome = OUTCOME_OK
                stop_reason = (
                    STOP_COMPLETED if len(merged) >= config.k else STOP_EXHAUSTED
                )
            else:
                outcome = OUTCOME_DEGRADED
                if coverage < config.quorum_coverage:
                    stop_reason = f"below-quorum(coverage={coverage:.6g})"
                elif lost:
                    stop_reason = f"shard-lost(coverage={coverage:.6g})"
                else:
                    stop_reason = f"trimmed(coverage={coverage:.6g})"
            merged_ids = [neighbor.descriptor_id for neighbor in merged]
            latency = now - request.arrival_s
            makespan = max(makespan, now)
            records[request.index] = ShardRequestRecord(
                index=request.index,
                outcome=outcome,
                stop_reason=stop_reason,
                arrival_s=request.arrival_s,
                finish_s=now,
                latency_s=latency,
                coverage_fraction=coverage,
                neighbors=tuple(merged),
                n_partitions=len(state.subtasks),
                n_lost_partitions=lost,
                n_failovers=state.n_failovers,
                n_hedges=state.n_hedges,
                n_hedge_wins=state.n_hedge_wins,
                n_breaker_skips=state.n_breaker_skips,
                recall=self._recall_of(request, merged_ids, coverage, exact),
            )

        def maybe_finalize(state: _QueryState, now: float) -> None:
            if not state.done and all(
                subtask.resolved for subtask in state.subtasks.values()
            ):
                finalize(state, now, at_deadline=False)

        for i in range(queries.shape[0]):
            arrival = float(schedule.times_s[i])
            request = QueryRequest(
                index=i,
                query=queries[i],
                arrival_s=arrival,
                deadline_s=arrival + config.deadline_s,
            )
            push(arrival, _EVT_ARRIVAL, request)

        while events:
            now, priority, token = heapq.heappop(events)
            payload = payloads.pop(token)
            if priority == _EVT_ARRIVAL:
                assert isinstance(payload, QueryRequest)
                request = payload
                if in_flight_queries >= config.max_in_flight:
                    records[request.index] = ShardRequestRecord(
                        index=request.index,
                        outcome=OUTCOME_SHED,
                        stop_reason=SHED_IN_FLIGHT,
                        arrival_s=request.arrival_s,
                        finish_s=math.nan,
                        latency_s=math.nan,
                        coverage_fraction=0.0,
                        neighbors=(),
                        n_partitions=0,
                        n_lost_partitions=0,
                        n_failovers=0,
                        n_hedges=0,
                        n_hedge_wins=0,
                        n_breaker_skips=0,
                        recall=math.nan,
                    )
                    continue
                in_flight_queries += 1
                state = _QueryState(
                    request=request,
                    subtasks={
                        partition.partition_id: _SubTask(
                            partition=partition,
                            targets=partition.targets(request.index),
                        )
                        for partition in self.plan.partitions
                    },
                )
                states[request.index] = state
                for partition_id in sorted(state.subtasks):
                    subtask = state.subtasks[partition_id]
                    if not dispatch_sub(state, subtask, now, is_hedge=False):
                        subtask.lost = True
                push(
                    request.deadline_s, _EVT_TIMER, _DeadlineTimer(request.index)
                )
                maybe_finalize(state, now)
            elif priority == _EVT_TIMER and isinstance(payload, _DeadlineTimer):
                state = states[payload.query_index]
                if not state.done:
                    finalize(state, now, at_deadline=True)
            elif priority == _EVT_TIMER:
                assert isinstance(payload, _HedgeTimer)
                state = states[payload.query_index]
                if state.done:
                    continue
                subtask = state.subtasks[payload.partition_id]
                attempt = subtask.in_flight.get(payload.token)
                if (
                    subtask.resolved
                    or subtask.hedged
                    or attempt is None
                    or attempt.cancelled
                ):
                    continue
                if dispatch_sub(state, subtask, now, is_hedge=True):
                    subtask.hedged = True
                    state.n_hedges += 1
                    totals["hedges"] += 1
            else:
                assert isinstance(payload, _SubCompletion)
                state = states[payload.query_index]
                subtask = state.subtasks[payload.partition_id]
                attempt = subtask.in_flight.pop(payload.token)
                if attempt.cancelled:
                    continue
                node = self.nodes[attempt.shard_id]
                if attempt.failed:
                    board.breakers[attempt.shard_id].record(False, now)
                    node.n_failed += 1
                    if not subtask.resolved:
                        if dispatch_sub(state, subtask, now, is_hedge=False):
                            state.n_failovers += 1
                            totals["failovers"] += 1
                        elif not subtask.in_flight:
                            subtask.lost = True
                    maybe_finalize(state, now)
                else:
                    board.breakers[attempt.shard_id].record(True, now)
                    node.n_served += 1
                    if subtask.result is None:
                        subtask.result = attempt.result
                        if attempt.is_hedge:
                            state.n_hedge_wins += 1
                            totals["hedge_wins"] += 1
                        for other in subtask.in_flight.values():
                            if not other.cancelled:
                                other.cancelled = True
                                reclaimed_s += self.nodes[
                                    other.shard_id
                                ].reclaim(other.assignment, now)
                    maybe_finalize(state, now)

        done = [record for record in records if record is not None]
        assert len(done) == queries.shape[0], "every request must be recorded"
        stats = slo_stats(
            [record.outcome for record in done],
            [record.latency_s for record in done],
            [record.recall for record in done],
        )
        served_coverage = [
            record.coverage_fraction for record in done if record.served
        ]
        mean_coverage = (
            sum(served_coverage) / len(served_coverage)
            if served_coverage
            else math.nan
        )
        # The horizon covers scheduled work that outlived the last
        # finalize (declined reclaims), keeping utilization within [0, 1].
        horizon = max(
            makespan if makespan > 0.0 else float(schedule.span_s),
            max(node.pool.free_times()[-1] for node in self.nodes),
        )
        mean_utilization = (
            sum(node.pool.utilization(horizon) for node in self.nodes)
            / len(self.nodes)
            if horizon > 0.0
            else 0.0
        )
        return ShardRunResult(
            config=config,
            placement=self.plan.report(),
            records=done,
            stats=stats,
            mean_coverage=mean_coverage,
            n_failovers=totals["failovers"],
            n_hedges=totals["hedges"],
            n_hedge_wins=totals["hedge_wins"],
            n_breaker_skips=totals["breaker_skips"],
            n_lost_partitions=totals["lost_partitions"],
            reclaimed_s=reclaimed_s,
            breaker_opens=board.total_opens,
            breaker_state_counts=board.state_counts(),
            breaker_transitions=board.transition_counts(),
            shard_served=[node.n_served for node in self.nodes],
            shard_failed=[node.n_failed for node in self.nodes],
            makespan_s=horizon,
            mean_utilization=mean_utilization,
        )

    def close(self) -> None:
        """Release every partition sub-index."""
        for searcher in self._searchers.values():
            searcher.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
