"""Replicated chunk placement across shards.

Tavenard/Amsaleg/Jegou ("Balancing clusters to reduce response time
variability") observed that skewed cluster sizes — exactly the BAG-vs-SR
chunk-size skew this repository measures — translate into response-time
variability once clusters are spread over nodes: a scatter-gather query
is as slow as its slowest shard, so the *maximum* shard load, not the
mean, drives the tail.  The placement optimizer here implements their
remedy at chunk granularity:

* ``greedy`` — longest-processing-time bin packing: chunks are sorted
  by estimated cost (descending, ids break ties) and each is assigned
  to the currently lightest shard.  The classic 4/3-approximation of
  minimum makespan, and deterministic.
* ``split`` — greedy packing plus *cluster splitting*: chunks whose
  estimated cost exceeds ``split_factor`` times the ideal shard load
  become singleton partitions replicated on extra shards, and queries
  rotate across the holders.  An oversized cluster cannot be balanced
  by placement alone (it exceeds a whole shard's fair share), so the
  load is spread over replicas instead — results are unchanged because
  every replica holds the identical chunk.
* ``round_robin`` — chunk ``i`` goes to shard ``i mod N`` (the naive
  baseline the sweep compares against).
* ``random`` — a seeded uniform shard per chunk.

A :class:`Partition` is the placement granule: a set of chunks stored
*in full* on ``n_replicas`` shards.  Because every replica of a
partition holds exactly the same chunks, a query answered by any
replica returns bit-identical results — failover and hedging can pick
targets freely without touching correctness.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ...core.chunk_index import ChunkIndex, InMemoryChunkStore
from ...core.chunk import ChunkMeta
from ...simio.pipeline import CostModel

__all__ = [
    "PLACEMENT_GREEDY",
    "PLACEMENT_SPLIT",
    "PLACEMENT_ROUND_ROBIN",
    "PLACEMENT_RANDOM",
    "PLACEMENT_STRATEGIES",
    "Partition",
    "PlacementPlan",
    "estimate_chunk_costs",
    "plan_placement",
    "build_partition_index",
]

PLACEMENT_GREEDY = "greedy"
PLACEMENT_SPLIT = "split"
PLACEMENT_ROUND_ROBIN = "round_robin"
PLACEMENT_RANDOM = "random"

#: Every placement strategy, in report order.
PLACEMENT_STRATEGIES = (
    PLACEMENT_GREEDY,
    PLACEMENT_SPLIT,
    PLACEMENT_ROUND_ROBIN,
    PLACEMENT_RANDOM,
)


@dataclasses.dataclass(frozen=True)
class Partition:
    """One placement granule: chunks stored in full on each holder.

    ``replicas`` lists the holding shards, primary first; failover and
    hedging walk it in order (rotated per query for split singletons,
    so the extra holders actually share the load).
    """

    partition_id: int
    chunk_ids: Tuple[int, ...]
    cost: float
    replicas: Tuple[int, ...]
    #: True for an oversized chunk isolated by cluster splitting; the
    #: coordinator rotates its primary per query to spread the load.
    rotate: bool = False

    def __post_init__(self) -> None:
        if not self.chunk_ids:
            raise ValueError("a partition must hold at least one chunk")
        if not self.replicas:
            raise ValueError("a partition must be stored on at least one shard")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"duplicate replica shards: {self.replicas}")

    def targets(self, query_index: int) -> Tuple[int, ...]:
        """Holder shards in the order a query should try them.

        Non-rotating partitions always lead with their primary; split
        singletons rotate the holder list by the query index so
        successive queries land on different replicas.
        """
        if not self.rotate or len(self.replicas) == 1:
            return self.replicas
        shift = int(query_index) % len(self.replicas)
        return self.replicas[shift:] + self.replicas[:shift]


@dataclasses.dataclass(frozen=True)
class PlacementPlan:
    """The full placement: partitions, their holders, and the skew report.

    ``n_partitions <= n_shards + n_split``: each non-empty shard bin is
    one partition, plus one singleton partition per split chunk.
    """

    n_shards: int
    n_replicas: int
    strategy: str
    partitions: Tuple[Partition, ...]

    def __post_init__(self) -> None:
        seen: Dict[int, int] = {}
        for partition in self.partitions:
            for chunk_id in partition.chunk_ids:
                if chunk_id in seen:
                    raise ValueError(
                        f"chunk {chunk_id} placed in partitions "
                        f"{seen[chunk_id]} and {partition.partition_id}"
                    )
                seen[chunk_id] = partition.partition_id

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_split(self) -> int:
        """Oversized chunks isolated into rotating singleton partitions."""
        return sum(1 for partition in self.partitions if partition.rotate)

    def primary_costs(self) -> List[float]:
        """Estimated primary load per shard (rotating partitions spread
        their cost evenly over their holders, which is what rotation
        achieves in expectation)."""
        loads = [0.0] * self.n_shards
        for partition in self.partitions:
            if partition.rotate:
                share = partition.cost / len(partition.replicas)
                for shard in partition.replicas:
                    loads[shard] += share
            else:
                loads[partition.replicas[0]] += partition.cost
        return loads

    def stored_costs(self) -> List[float]:
        """Estimated stored (primary + replica) load per shard."""
        loads = [0.0] * self.n_shards
        for partition in self.partitions:
            for shard in partition.replicas:
                loads[shard] += partition.cost
        return loads

    @property
    def imbalance(self) -> float:
        """Max primary shard load over the mean (1.0 = perfectly even).

        This is the skew statistic of the placement report: the
        scatter-gather tail tracks the most loaded shard, so imbalance
        is a direct proxy for the p99 penalty of a bad placement.
        """
        loads = self.primary_costs()
        mean = sum(loads) / len(loads)
        if mean == 0.0:
            return 1.0
        return max(loads) / mean

    def report(self) -> Dict[str, object]:
        """Deterministic JSON-ready skew/imbalance summary."""
        return {
            "strategy": self.strategy,
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "n_partitions": self.n_partitions,
            "n_split": self.n_split,
            "imbalance": self.imbalance,
            "primary_costs": self.primary_costs(),
            "stored_costs": self.stored_costs(),
        }


# repro: approximate
def estimate_chunk_costs(index: ChunkIndex, cost_model: CostModel) -> np.ndarray:
    """Estimated scan seconds per chunk as a float64 vector of shape
    ``(n_chunks,)`` under the calibrated cost model.

    A chunk's steady-state pipeline cost is its I/O time overlapped with
    its CPU time — ``max(io, cpu)`` with double buffering, their sum
    without — mirroring the paper's section 1.1 argument that balanced
    chunks balance exactly these two quantities.  The estimate ignores
    cache state and queueing (placement is computed offline, before any
    traffic exists) but preserves the *skew*, which is all bin packing
    needs.
    """
    pages = index.page_counts()
    counts = index.descriptor_counts()
    io = np.asarray(
        [cost_model.disk.random_read_time_s(int(p)) for p in pages],
        dtype=np.float64,
    )
    cpu = np.asarray(
        [cost_model.cpu.chunk_processing_time_s(int(n)) for n in counts],
        dtype=np.float64,
    )
    if cost_model.overlap_io_cpu:
        return np.maximum(io, cpu)
    return io + cpu


def _replicas_for(primary: int, n_shards: int, n_replicas: int) -> Tuple[int, ...]:
    """Holder ring of a partition homed at ``primary``: the next
    ``n_replicas`` shards in id order, wrapping around."""
    return tuple((primary + offset) % n_shards for offset in range(n_replicas))


# repro: approximate
def plan_placement(
    costs: Union[Sequence[float], np.ndarray],
    n_shards: int,
    n_replicas: int = 1,
    strategy: str = PLACEMENT_GREEDY,
    seed: int = 0,
    split_factor: float = 2.0,
) -> PlacementPlan:
    """Partition chunks across ``n_shards`` with ``n_replicas`` copies.

    Parameters
    ----------
    costs:
        Estimated per-chunk scan cost (see :func:`estimate_chunk_costs`);
        chunk ``i`` is ``costs[i]``.
    n_shards, n_replicas:
        Cluster shape.  ``n_replicas`` must not exceed ``n_shards`` —
        replicas of one partition live on *distinct* shards, so more
        copies than shards is a configuration error, not a silent clamp.
    strategy:
        One of :data:`PLACEMENT_STRATEGIES`.
    seed:
        Root seed of the ``random`` strategy (ignored otherwise).
    split_factor:
        ``split`` only: a chunk costing more than ``split_factor`` times
        the ideal shard load (total cost / shards) is isolated into a
        rotating singleton partition held by ``min(2 * n_replicas,
        n_shards)`` shards.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_replicas < 1:
        raise ValueError(f"need at least one replica, got {n_replicas}")
    if n_replicas > n_shards:
        raise ValueError(
            f"cannot place {n_replicas} replicas on {n_shards} shards: "
            "replicas of a partition must live on distinct shards"
        )
    if strategy not in PLACEMENT_STRATEGIES:
        raise ValueError(
            f"unknown placement strategy {strategy!r}; "
            f"choose from {PLACEMENT_STRATEGIES}"
        )
    if split_factor <= 1.0:
        raise ValueError(f"split factor must exceed 1, got {split_factor}")
    cost_arr = np.asarray(costs, dtype=np.float64)
    if cost_arr.ndim != 1 or cost_arr.shape[0] == 0:
        raise ValueError("need a non-empty 1-d cost vector")
    if np.any(cost_arr < 0.0) or not np.all(np.isfinite(cost_arr)):
        raise ValueError("chunk costs must be finite and non-negative")
    n_chunks = int(cost_arr.shape[0])

    partitions: List[Partition] = []
    bins: List[List[int]] = [[] for _ in range(n_shards)]
    bin_costs = [0.0] * n_shards

    def assign_greedy(chunk_ids: Sequence[int]) -> None:
        # Longest processing time first; ties by chunk id, then shard id.
        order = sorted(chunk_ids, key=lambda c: (-float(cost_arr[c]), c))
        for chunk_id in order:
            shard = min(range(n_shards), key=lambda s: (bin_costs[s], s))
            bins[shard].append(chunk_id)
            bin_costs[shard] += float(cost_arr[chunk_id])

    if strategy == PLACEMENT_ROUND_ROBIN:
        for chunk_id in range(n_chunks):
            shard = chunk_id % n_shards
            bins[shard].append(chunk_id)
            bin_costs[shard] += float(cost_arr[chunk_id])
    elif strategy == PLACEMENT_RANDOM:
        rng = np.random.default_rng(seed)
        draws = rng.integers(0, n_shards, size=n_chunks)
        for chunk_id in range(n_chunks):
            shard = int(draws[chunk_id])
            bins[shard].append(chunk_id)
            bin_costs[shard] += float(cost_arr[chunk_id])
    elif strategy == PLACEMENT_GREEDY:
        assign_greedy(range(n_chunks))
    else:  # PLACEMENT_SPLIT
        ideal = float(cost_arr.sum()) / n_shards
        threshold = split_factor * ideal
        oversized = [
            c for c in range(n_chunks) if float(cost_arr[c]) > threshold
        ]
        assign_greedy([c for c in range(n_chunks) if float(cost_arr[c]) <= threshold])
        spread = min(2 * n_replicas, n_shards)
        for rank, chunk_id in enumerate(oversized):
            # Home each split singleton on the currently lightest shard
            # and charge the rotated share to every holder.
            primary = min(range(n_shards), key=lambda s: (bin_costs[s], s))
            replicas = _replicas_for(primary, n_shards, spread)
            share = float(cost_arr[chunk_id]) / spread
            for shard in replicas:
                bin_costs[shard] += share
            partitions.append(
                Partition(
                    partition_id=-1,  # renumbered below
                    chunk_ids=(chunk_id,),
                    cost=float(cost_arr[chunk_id]),
                    replicas=replicas,
                    rotate=True,
                )
            )

    shard_partitions = [
        Partition(
            partition_id=-1,
            chunk_ids=tuple(sorted(bins[shard])),
            cost=float(sum(float(cost_arr[c]) for c in bins[shard])),
            replicas=_replicas_for(shard, n_shards, n_replicas),
        )
        for shard in range(n_shards)
        if bins[shard]
    ]
    # Shard bins first (in shard order), then split singletons (in chunk
    # order) — a deterministic numbering either way.
    renumbered = [
        dataclasses.replace(partition, partition_id=pid)
        for pid, partition in enumerate(shard_partitions + partitions)
    ]
    return PlacementPlan(
        n_shards=n_shards,
        n_replicas=n_replicas,
        strategy=strategy,
        partitions=tuple(renumbered),
    )


def build_partition_index(
    index: ChunkIndex, chunk_ids: Sequence[int], name: str = ""
) -> ChunkIndex:
    """A self-contained sub-index holding one partition's chunks.

    Chunk ids are renumbered ``0..m-1`` (in the given order) and page
    offsets recompacted, exactly as if the partition had been built and
    saved on its shard; descriptor ids stay global, so per-shard results
    merge without any id translation.  Contents are materialised into an
    in-memory store — the sharded simulator's analogue of each shard
    owning its own chunk file.
    """
    if not chunk_ids:
        raise ValueError("a partition index needs at least one chunk")
    metas: List[ChunkMeta] = []
    contents: List[Tuple[np.ndarray, np.ndarray]] = []
    next_page = 0
    for local_id, chunk_id in enumerate(chunk_ids):
        meta = index.metas[chunk_id]
        metas.append(
            ChunkMeta(
                chunk_id=local_id,
                centroid=meta.centroid,
                radius=meta.radius,
                n_descriptors=meta.n_descriptors,
                page_offset=next_page,
                page_count=meta.page_count,
            )
        )
        next_page += meta.page_count
        ids, vectors = index.read_chunk(chunk_id)
        contents.append((ids, vectors))
    norms = index.centroid_sq_norm_vector()[np.asarray(chunk_ids, dtype=np.int64)]
    return ChunkIndex(
        metas=metas,
        store=InMemoryChunkStore(contents),
        dimensions=index.dimensions,
        name=name or f"{index.name}/partition",
        centroid_sq_norms=np.ascontiguousarray(norms, dtype=np.float64),
    )
