"""Shard nodes: per-shard worker pools and searchers.

A :class:`ShardNode` is the simulated server process of one shard: a
:class:`~repro.simio.queueing.WorkerPool` of identical workers plus the
partition searchers the placement stored there.  Sub-requests are
FIFO-queued implicitly by the pool (work handed to the earliest-free
worker starts when that worker frees up), exactly as in the single-node
service — Tavenard et al.'s variability argument applies per shard, and
the coordinator's scatter-gather tail is the max over these per-shard
queues.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...core.search import ChunkSearcher, SearchResult
from ...core.stop_rules import StopRule
from ...simio.queueing import WorkerPool

__all__ = ["ShardNode", "SubAssignment"]


class SubAssignment(Tuple[int, float, float]):
    """``(worker, start_s, finish_s)`` of one accepted sub-request."""

    __slots__ = ()

    @property
    def worker(self) -> int:
        return self[0]

    @property
    def start_s(self) -> float:
        return self[1]

    @property
    def finish_s(self) -> float:
        return self[2]


class ShardNode:
    """One shard: its worker pool and the partitions it can serve.

    ``searchers`` maps partition id -> the shard's own
    :class:`~repro.core.search.ChunkSearcher` over that partition's
    sub-index.  Every replica holds an identical sub-index, so which
    holder executes a sub-request never changes the answer — only the
    timing.
    """

    def __init__(self, shard_id: int, n_workers: int):
        if shard_id < 0:
            raise ValueError("shard id must be non-negative")
        self.shard_id = int(shard_id)
        self.pool = WorkerPool(n_workers)
        self.searchers: Dict[int, ChunkSearcher] = {}
        #: Sub-requests that completed successfully / failed here.
        self.n_served = 0
        self.n_failed = 0

    def add_partition(self, partition_id: int, searcher: ChunkSearcher) -> None:
        if partition_id in self.searchers:
            raise ValueError(
                f"shard {self.shard_id} already stores partition {partition_id}"
            )
        self.searchers[partition_id] = searcher

    def stores(self, partition_id: int) -> bool:
        return partition_id in self.searchers

    def earliest_start(self, now: float) -> float:
        """When a sub-request handed over at ``now`` would begin."""
        return self.pool.earliest_start(now)

    def execute(
        self,
        partition_id: int,
        query: np.ndarray,
        k: int,
        stop_rule: Optional[StopRule],
        query_index: int,
    ) -> SearchResult:
        """Run the partition search (pure; no clock side effects)."""
        searcher = self.searchers.get(partition_id)
        if searcher is None:
            raise ValueError(
                f"shard {self.shard_id} does not store partition {partition_id}"
            )
        return searcher.search(
            query, k=k, stop_rule=stop_rule, query_index=query_index
        )

    def occupy(self, now: float, duration_s: float) -> SubAssignment:
        """Charge ``duration_s`` of worker time starting at ``now``."""
        worker, start, finish = self.pool.assign(now, duration_s)
        return SubAssignment((worker, start, finish))

    def reclaim(self, assignment: SubAssignment, at_s: float) -> float:
        """Give back the unconsumed tail of a cancelled sub-request.

        Declined (returns 0.0) when the worker has since been handed
        further work — already-scheduled work is never rewritten.
        """
        cut = max(at_s, assignment.start_s)
        return self.pool.truncate(
            assignment.worker, cut, expected_free_s=assignment.finish_s
        )

    def close(self) -> None:
        for searcher in self.searchers.values():
            searcher.close()
