"""Configuration and per-request records of the sharded service.

Mirrors :mod:`repro.service.request` one level up: a
:class:`ShardServiceConfig` freezes every tunable of the scatter-gather
coordinator, so a sharded run is a pure function of ``(index, placement,
config, shard fault plan)``; a :class:`ShardRequestRecord` captures what
happened to one query, including the honest ``coverage_fraction`` that
quantifies how much of the index actually answered.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from ...core.neighbors import Neighbor

__all__ = [
    "ShardServiceConfig",
    "ShardRequestRecord",
    "SHED_IN_FLIGHT",
    "STOP_COMPLETED",
    "STOP_EXHAUSTED",
]

#: Shed reason of the coordinator's admission bound: too many queries
#: already in flight across the cluster.
SHED_IN_FLIGHT = "in-flight-limit"

#: Stop reasons a fully answered, untrimmed query reconstructs — the
#: single-node vocabulary, reproduced exactly (see the coordinator's
#: exact-merge notes).
STOP_COMPLETED = "completed"
STOP_EXHAUSTED = "exhausted"


@dataclasses.dataclass(frozen=True)
class ShardServiceConfig:
    """Tunables of the sharded scatter-gather service.

    Attributes
    ----------
    workers_per_shard:
        Simulated searcher workers on each shard node.
    deadline_s:
        Relative deadline each query carries; at its expiry the
        coordinator finalises with whatever sub-results have arrived.
    arrival_rate_qps, seed:
        Open-loop Poisson arrival stream (same substrate as the
        single-node service).
    k:
        Neighbors per query.
    max_in_flight:
        Admission bound: a query arriving while this many are already
        in flight is shed outright (the coordinator's analogue of the
        single-node bounded queue).
    hedge_delay_s:
        Seconds after dispatching a sub-request before a hedged
        duplicate is sent to the next replica (0 disables hedging).
        First answer wins; the loser's remaining worker occupancy is
        reclaimed.
    quorum_coverage:
        Minimum coverage fraction for a partial result to count as a
        quorum; below it the query is still answered (never an error
        page) but its stop reason says ``below-quorum``.
    breaker_window / breaker_failure_threshold / breaker_cooldown_s /
    breaker_probe_successes:
        Per-shard circuit breakers (one region per shard), reusing the
        single-node :class:`~repro.service.breaker.RegionBreaker`
        machinery.
    """

    workers_per_shard: int = 1
    deadline_s: float = 0.5
    arrival_rate_qps: float = 50.0
    seed: int = 0
    k: int = 10
    max_in_flight: int = 64
    hedge_delay_s: float = 0.0
    quorum_coverage: float = 0.5
    # -- per-shard circuit breakers
    breaker_window: int = 16
    breaker_failure_threshold: int = 4
    breaker_cooldown_s: float = 1.0
    breaker_probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.workers_per_shard < 1:
            raise ValueError("need at least one worker per shard")
        if self.deadline_s <= 0 or math.isnan(self.deadline_s):
            raise ValueError("deadline must be positive")
        if not self.arrival_rate_qps > 0.0:
            raise ValueError("arrival rate must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.max_in_flight < 1:
            raise ValueError("in-flight limit must be positive")
        if self.hedge_delay_s < 0.0 or math.isnan(self.hedge_delay_s):
            raise ValueError("hedge delay cannot be negative (0 disables)")
        if not 0.0 <= self.quorum_coverage <= 1.0:
            raise ValueError("quorum coverage must lie in [0, 1]")
        if self.breaker_window < 1 or self.breaker_failure_threshold < 1:
            raise ValueError("breaker window/threshold must be positive")
        if self.breaker_failure_threshold > self.breaker_window:
            raise ValueError("breaker threshold cannot exceed its window")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        if self.breaker_probe_successes < 1:
            raise ValueError("breaker probe successes must be positive")

    def replace(self, **overrides: object) -> "ShardServiceConfig":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class ShardRequestRecord:
    """Everything the coordinator knows about one finished query.

    ``neighbors`` is the merged top-k (empty for shed queries) — kept on
    the record so equivalence against the single-node searcher can be
    asserted result by result; reports aggregate without it.
    ``coverage_fraction`` is the fraction of the index's descriptors
    that contributed to the answer: 1.0 when every partition answered in
    full, honestly less when shards were lost or sub-scans trimmed.
    """

    index: int
    outcome: str
    stop_reason: str
    arrival_s: float
    finish_s: float
    latency_s: float
    coverage_fraction: float
    neighbors: Tuple[Neighbor, ...]
    n_partitions: int
    n_lost_partitions: int
    n_failovers: int
    n_hedges: int
    n_hedge_wins: int
    n_breaker_skips: int
    recall: float

    @property
    def served(self) -> bool:
        """True when a scatter ran (every outcome except ``shed``)."""
        return not math.isnan(self.finish_s)

    def neighbor_ids(self) -> List[int]:
        """Descriptor ids of the merged result, best first."""
        return [neighbor.descriptor_id for neighbor in self.neighbors]
