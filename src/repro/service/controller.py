"""Adaptive degradation: a feedback loop from p99 latency to chunk budget.

The paper's central curve — quality rises smoothly with chunks scanned —
is exactly the control surface a latency-bound service needs: the knob
is continuous-ish (one chunk at a time), monotone in both cost and
quality, and safe at every setting (any prefix of the ranked chunk scan
is a valid answer).  The controller turns that knob from measured tail
latency:

* every ``adjust_every`` completions, compute p99 over the last
  ``latency_window`` served latencies (nearest-rank, via
  :func:`repro.core.metrics.percentile` — deterministic);
* **p99 above target** -> shrink the budget multiplicatively
  (``budget * shrink_factor``, at least one chunk, never below
  ``min_budget``) — overload needs a fast retreat;
* **p99 below ``headroom * target``** -> grow additively by
  ``grow_step`` — recovery should be cautious, or the loop oscillates;
* otherwise hold.

Multiplicative decrease / additive increase is the classic stable choice
for a control loop facing open-loop load (cf. congestion control).  The
budget history is recorded so experiments can plot the quality cost of
holding the latency target.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Tuple

from ..core.metrics import percentile

__all__ = ["AdaptiveBudgetController"]


class AdaptiveBudgetController:
    """Windowed-p99 feedback controller over the default chunk budget.

    Parameters
    ----------
    initial_budget:
        Starting chunk budget (0 = unbounded / whole index; the first
        shrink converts it to a bounded budget of ``n_chunks``).
    n_chunks:
        Chunks in the index — the ceiling the budget can grow back to
        (at which point it is reported as 0 = unbounded again).
    min_budget:
        Floor; one chunk is the smallest legal search.
    target_p99_s:
        The latency the loop steers p99 toward.
    adjust_every:
        Completions between control decisions.
    latency_window:
        Served latencies the p99 is computed over.
    shrink_factor:
        Multiplicative decrease in (0, 1).
    grow_step:
        Additive increase (chunks) per grow decision.
    headroom:
        Grow only while ``p99 <= headroom * target`` — the dead band
        between ``headroom * target`` and ``target`` prevents hunting.
    """

    def __init__(
        self,
        initial_budget: int,
        n_chunks: int,
        min_budget: int,
        target_p99_s: float,
        adjust_every: int,
        latency_window: int,
        shrink_factor: float,
        grow_step: int,
        headroom: float,
    ):
        if n_chunks < 1:
            raise ValueError("index must hold at least one chunk")
        if initial_budget < 0 or initial_budget > n_chunks:
            raise ValueError(
                f"initial budget must lie in [0, {n_chunks}], got {initial_budget}"
            )
        if not 1 <= min_budget <= n_chunks:
            raise ValueError("minimum budget must lie in [1, n_chunks]")
        if target_p99_s <= 0.0:
            raise ValueError("target p99 must be positive")
        if adjust_every < 1 or latency_window < 1:
            raise ValueError("cadence parameters must be positive")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink factor must lie in (0, 1)")
        if grow_step < 1:
            raise ValueError("grow step must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must lie in (0, 1]")
        self.n_chunks = int(n_chunks)
        self.min_budget = int(min_budget)
        self.target_p99_s = float(target_p99_s)
        self.adjust_every = int(adjust_every)
        self.shrink_factor = float(shrink_factor)
        self.grow_step = int(grow_step)
        self.headroom = float(headroom)
        # 0 means "whole index"; internally track the effective budget.
        self._budget = self.n_chunks if initial_budget == 0 else int(initial_budget)
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._since_adjust = 0
        self.n_completed = 0
        self.n_shrinks = 0
        self.n_grows = 0
        #: ``(completion_count, budget_after)`` at every control decision,
        #: starting with the initial setting — the degradation timeline.
        self.history: List[Tuple[int, int]] = [(0, self.budget)]

    @property
    def budget(self) -> int:
        """Current chunk budget (0 = unbounded: the whole index)."""
        return 0 if self._budget >= self.n_chunks else self._budget

    @property
    def effective_budget(self) -> int:
        """Current budget in chunks (``n_chunks`` when unbounded)."""
        return self._budget

    def observe(self, latency_s: float) -> None:
        """Fold one served request's latency in; maybe adjust the budget."""
        if latency_s < 0.0:
            raise ValueError("latency cannot be negative")
        self._latencies.append(float(latency_s))
        self.n_completed += 1
        self._since_adjust += 1
        if self._since_adjust >= self.adjust_every:
            self._since_adjust = 0
            self._adjust()

    def window_p99_s(self) -> float:
        """p99 over the current latency window (NaN when empty)."""
        if not self._latencies:
            return math.nan
        return percentile(list(self._latencies), 0.99)

    # repro: approximate
    def _adjust(self) -> None:
        p99 = self.window_p99_s()
        if p99 != p99:  # NaN: nothing served yet
            return
        before = self._budget
        if p99 > self.target_p99_s:
            shrunk = int(self._budget * self.shrink_factor)
            self._budget = max(self.min_budget, min(self._budget - 1, shrunk))
            if self._budget != before:
                self.n_shrinks += 1
        elif p99 <= self.headroom * self.target_p99_s:
            self._budget = min(self.n_chunks, self._budget + self.grow_step)
            if self._budget != before:
                self.n_grows += 1
        if self._budget != before:
            self.history.append((self.n_completed, self.budget))
