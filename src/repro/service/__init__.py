"""Resilient query service over the approximate chunk search.

The paper establishes that any prefix of the ranked chunk scan is a
valid (approximate) answer; this package exploits that property under
simulated open-loop traffic, bounding tail latency by trading quality
instead of failing requests.  Four cooperating mechanisms, one module
each:

* :mod:`~repro.service.deadline` — deadline propagation: the remaining
  per-request budget becomes a stop rule at dispatch time;
* :mod:`~repro.service.admission` — admission control: a bounded queue
  plus predictive shedding, rejecting work before it costs anything;
* :mod:`~repro.service.breaker` — per-chunk-region circuit breakers over
  the fault injector, converting repeated retry ladders into skips;
* :mod:`~repro.service.controller` — adaptive degradation: a p99
  feedback loop on the default chunk budget.

:class:`~repro.service.simulator.QueryService` wires them into one
deterministic discrete-event simulation; runs are pure functions of
``(index, workload, config, fault plan)``.

:mod:`~repro.service.sharding` scales the same contract out to a
cluster: replicated chunk placement, hedged scatter-gather with exact
top-k merging, and shard-level failover.
"""

from .admission import SHED_PREDICTED_LATE, SHED_QUEUE_FULL, AdmissionController
from .breaker import (
    BREAKER_OPEN,
    BREAKER_SKIP_OUTCOME,
    BreakerBoard,
    BreakerGuardedInjector,
    RegionBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from .controller import AdaptiveBudgetController
from .deadline import EXPIRED_BUDGET_S, propagated_stop_rule
from .request import QueryRequest, RequestRecord, ServiceConfig
from .sharding import (
    PlacementPlan,
    ShardedQueryService,
    ShardRequestRecord,
    ShardRunResult,
    ShardServiceConfig,
    plan_placement,
)
from .simulator import QueryService, ServiceRunResult

__all__ = [
    "AdmissionController",
    "SHED_QUEUE_FULL",
    "SHED_PREDICTED_LATE",
    "BREAKER_OPEN",
    "BREAKER_SKIP_OUTCOME",
    "RegionBreaker",
    "BreakerBoard",
    "BreakerGuardedInjector",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
    "AdaptiveBudgetController",
    "EXPIRED_BUDGET_S",
    "propagated_stop_rule",
    "QueryRequest",
    "RequestRecord",
    "ServiceConfig",
    "QueryService",
    "ServiceRunResult",
    "PlacementPlan",
    "plan_placement",
    "ShardServiceConfig",
    "ShardRequestRecord",
    "ShardedQueryService",
    "ShardRunResult",
]
