"""Admission control: a bounded queue with predictive load shedding.

An open-loop arrival stream offered to a finite worker pool has only
three steady states: underload (queue empty), saturation (queue bounded
by luck), or collapse (queue grows without bound and *every* request
eventually misses its deadline).  Admission control converts collapse
into explicit, cheap rejection: a request is shed at arrival — before
any work is spent on it — when either

* the queue is at capacity (``"queue-full"``), or
* replaying the queue against the worker pool's next-free times and the
  running service-time estimate predicts the request would finish past
  its deadline (``"predicted-late"``).

Both decisions are pure functions of simulated state, which is itself a
pure function of the run's seeds — shedding is deterministic and
replayable, never a coin flip at serve time.

The service-time estimate is an EWMA of observed service durations; it
adapts as the degradation controller shrinks budgets (shorter searches
-> lower estimate -> fewer sheds), closing the loop between the two
mechanisms.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from .request import QueryRequest

__all__ = ["AdmissionController", "SHED_QUEUE_FULL", "SHED_PREDICTED_LATE"]

#: Shed reason: the bounded queue was at capacity.
SHED_QUEUE_FULL = "queue-full"
#: Shed reason: the wait estimate predicted a deadline miss.
SHED_PREDICTED_LATE = "predicted-late"


class AdmissionController:
    """Shed-or-admit decisions plus the service-time estimator.

    Parameters
    ----------
    queue_capacity:
        Bound on requests waiting (excluding those being served).
    initial_service_estimate_s:
        Seed value of the EWMA service-time estimate, used until real
        observations arrive (a calibration baseline, e.g. the mean
        fault-free completion time).
    alpha:
        EWMA gain in (0, 1]: ``estimate += alpha * (observed - estimate)``.
    shed_slack:
        Multiplier on the relative deadline: admit while the predicted
        completion is within ``arrival + shed_slack * deadline``.
    """

    def __init__(
        self,
        queue_capacity: int,
        initial_service_estimate_s: float,
        alpha: float = 0.2,
        shed_slack: float = 1.0,
    ):
        if queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if initial_service_estimate_s <= 0.0:
            raise ValueError("initial service estimate must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("EWMA gain must lie in (0, 1]")
        if shed_slack <= 0.0:
            raise ValueError("shed slack must be positive")
        self.queue_capacity = int(queue_capacity)
        self.service_estimate_s = float(initial_service_estimate_s)
        self.alpha = float(alpha)
        self.shed_slack = float(shed_slack)
        self.n_shed_full = 0
        self.n_shed_late = 0

    # -- prediction ----------------------------------------------------------

    def predicted_start_s(
        self, now: float, free_times: List[float], queue_len: int
    ) -> float:
        """Predicted start time of a request arriving at ``now`` behind
        ``queue_len`` queued requests.

        Replays FIFO dispatch over a copy of the pool's next-free times,
        charging each queued request the current service estimate — the
        same earliest-free-worker rule the real dispatcher uses, so the
        prediction error is exactly the service-time estimation error.
        """
        if not free_times:
            raise ValueError("need at least one worker free time")
        virtual = list(free_times)
        heapq.heapify(virtual)
        for _ in range(queue_len):
            free = heapq.heappop(virtual)
            heapq.heappush(virtual, max(now, free) + self.service_estimate_s)
        return max(now, virtual[0])

    # -- the decision --------------------------------------------------------

    def decide(
        self,
        request: QueryRequest,
        now: float,
        free_times: List[float],
        queue_len: int,
    ) -> Tuple[bool, str]:
        """``(admit, shed_reason)`` for one arrival.

        ``shed_reason`` is ``""`` when admitted, else one of
        :data:`SHED_QUEUE_FULL` / :data:`SHED_PREDICTED_LATE`.
        """
        if queue_len >= self.queue_capacity:
            self.n_shed_full += 1
            return False, SHED_QUEUE_FULL
        start = self.predicted_start_s(now, free_times, queue_len)
        predicted_finish = start + self.service_estimate_s
        slack_deadline = request.arrival_s + self.shed_slack * (
            request.deadline_s - request.arrival_s
        )
        if predicted_finish > slack_deadline:
            self.n_shed_late += 1
            return False, SHED_PREDICTED_LATE
        return True, ""

    # -- feedback ------------------------------------------------------------

    def observe_service_time(self, service_s: float) -> None:
        """Fold one observed service duration into the EWMA estimate."""
        if service_s < 0.0:
            raise ValueError("service time cannot be negative")
        self.service_estimate_s += self.alpha * (
            service_s - self.service_estimate_s
        )

    @property
    def n_shed(self) -> int:
        """Total requests shed by this controller."""
        return self.n_shed_full + self.n_shed_late
