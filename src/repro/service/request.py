"""Requests, per-request records, and the service configuration.

A :class:`QueryRequest` is one workload query wrapped with traffic
metadata: when it arrived and by when it must be answered.  The service
never fails a request outright — the paper's quality/time knob means a
late request can always be answered *worse* instead of *not at all* —
so every request ends in exactly one of the four
:data:`~repro.core.metrics.REQUEST_OUTCOMES`, captured in a
:class:`RequestRecord`.

:class:`ServiceConfig` bundles every tunable of the simulated service;
it is frozen so a run is a pure function of ``(index, workload, config,
fault plan)``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = ["QueryRequest", "RequestRecord", "ServiceConfig"]


@dataclasses.dataclass(frozen=True)
class QueryRequest:
    """One admitted unit of work.

    Attributes
    ----------
    index:
        Stable workload position of the query — also the fault-plan key,
        so the same request sees the same faults regardless of when the
        service happens to run it.
    query:
        The descriptor vector, shape ``(d,)`` float64.
    arrival_s:
        Simulated arrival time.
    deadline_s:
        Absolute simulated deadline (``arrival_s + relative deadline``).
    """

    index: int
    query: np.ndarray
    arrival_s: float
    deadline_s: float

    def remaining_s(self, now: float) -> float:
        """Deadline budget left at ``now`` (negative once expired)."""
        return self.deadline_s - now


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """Everything the service knows about one finished request.

    ``outcome`` is one of :data:`~repro.core.metrics.REQUEST_OUTCOMES`.
    Shed requests carry NaN timing fields (nothing ran) and a
    ``stop_reason`` naming the shed cause (``"queue-full"`` or
    ``"predicted-late"``).  ``recall`` is the per-request quality proxy:
    the true-neighbor fraction when ground truth was supplied, otherwise
    the scanned-coverage proxy; NaN for shed requests.
    """

    index: int
    outcome: str
    stop_reason: str
    arrival_s: float
    start_s: float
    finish_s: float
    latency_s: float
    wait_s: float
    chunk_budget: int
    chunks_read: int
    chunks_skipped: int
    breaker_skips: int
    recall: float
    worker: int = -1

    @property
    def served(self) -> bool:
        """True when a search ran (every outcome except ``shed``)."""
        return not math.isnan(self.start_s)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the simulated query service.

    Attributes
    ----------
    n_workers:
        Parallel searcher workers (simulated; results are engine- and
        thread-count independent).
    queue_capacity:
        Admission queue bound; arrivals beyond it are shed outright.
    deadline_s:
        Relative deadline each request carries.
    target_p99_s:
        Latency the adaptive controller steers p99 towards; must not
        exceed ``deadline_s`` (the deadline is the hard envelope, the
        target is where the controller tries to sit below it).
    arrival_rate_qps:
        Open-loop Poisson arrival rate.
    seed:
        Root seed of the arrival process.
    k:
        Neighbors per query.
    initial_chunk_budget:
        Starting per-query chunk budget (0 = the whole index, i.e. the
        controller starts from exact search and only degrades under
        pressure).
    min_chunk_budget:
        Floor the controller never shrinks below (>= 1: a chunk is the
        granule of the search, so one chunk is the worst legal answer).
    adjust_every / latency_window / shrink_factor / grow_step / headroom:
        Controller cadence and gains; see
        :class:`~repro.service.controller.AdaptiveBudgetController`.
    region_size:
        Chunks per circuit-breaker region.
    breaker_window / breaker_failure_threshold / breaker_cooldown_s /
    breaker_probe_successes:
        Breaker state machine; see
        :class:`~repro.service.breaker.BreakerBoard`.
    service_time_alpha:
        EWMA gain of the admission controller's service-time estimate.
    initial_service_estimate_s:
        Seed of that estimate (a calibration baseline such as the mean
        fault-free completion time); 0.0 falls back to ``deadline_s``,
        the pessimistic choice that sheds aggressively until real
        observations arrive.
    shed_slack:
        Admission sheds when the *estimated* completion time exceeds
        ``arrival + shed_slack * deadline_s``; 1.0 sheds exactly at the
        predicted deadline miss, larger values shed later (more
        optimistic admission).
    """

    n_workers: int = 4
    queue_capacity: int = 32
    deadline_s: float = 0.5
    target_p99_s: float = 0.45
    arrival_rate_qps: float = 50.0
    seed: int = 0
    k: int = 10
    # -- adaptive degradation controller
    initial_chunk_budget: int = 0
    min_chunk_budget: int = 1
    adjust_every: int = 8
    latency_window: int = 64
    shrink_factor: float = 0.7
    grow_step: int = 1
    headroom: float = 0.6
    # -- circuit breakers
    region_size: int = 8
    breaker_window: int = 16
    breaker_failure_threshold: int = 4
    breaker_cooldown_s: float = 1.0
    breaker_probe_successes: int = 2
    # -- admission control
    service_time_alpha: float = 0.2
    shed_slack: float = 1.0
    initial_service_estimate_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if self.deadline_s <= 0 or math.isnan(self.deadline_s):
            raise ValueError("deadline must be positive")
        if self.target_p99_s <= 0 or self.target_p99_s > self.deadline_s:
            raise ValueError(
                "target p99 must be positive and not exceed the deadline "
                f"(got target {self.target_p99_s}, deadline {self.deadline_s})"
            )
        if not self.arrival_rate_qps > 0.0:
            raise ValueError("arrival rate must be positive")
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.initial_chunk_budget < 0:
            raise ValueError("initial chunk budget cannot be negative (0 = whole index)")
        if self.min_chunk_budget < 1:
            raise ValueError("minimum chunk budget must be at least 1")
        if self.adjust_every < 1 or self.latency_window < 1:
            raise ValueError("controller cadence parameters must be positive")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("shrink factor must lie in (0, 1)")
        if self.grow_step < 1:
            raise ValueError("grow step must be positive")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must lie in (0, 1]")
        if self.region_size < 1:
            raise ValueError("region size must be positive")
        if self.breaker_window < 1 or self.breaker_failure_threshold < 1:
            raise ValueError("breaker window/threshold must be positive")
        if self.breaker_failure_threshold > self.breaker_window:
            raise ValueError("breaker threshold cannot exceed its window")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        if self.breaker_probe_successes < 1:
            raise ValueError("breaker probe successes must be positive")
        if not 0.0 < self.service_time_alpha <= 1.0:
            raise ValueError("service-time EWMA gain must lie in (0, 1]")
        if self.shed_slack <= 0:
            raise ValueError("shed slack must be positive")
        if self.initial_service_estimate_s < 0 or math.isnan(
            self.initial_service_estimate_s
        ):
            raise ValueError(
                "initial service estimate cannot be negative (0 = deadline)"
            )

    def replace(self, **overrides: object) -> "ServiceConfig":
        """A copy with ``overrides`` applied (validation re-runs)."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]
