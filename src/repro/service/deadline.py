"""Deadline propagation: remaining budget -> per-query stop rule.

The paper's knob — stop after ``n`` chunks, after a time budget, or at
the completion proof — is turned *statically* by the experiments.  Under
traffic it must be turned per request: by the time a request reaches a
worker it has already spent part of its deadline queueing, and only the
*remainder* may be spent searching.  :func:`propagated_stop_rule`
performs that translation, composing (via
:class:`~repro.core.stop_rules.FirstOf`):

* a :class:`~repro.core.stop_rules.DeadlineBudget` on the remaining
  seconds — the SLO envelope, reporting the distinct ``deadline(...)``
  stop reason; and
* a :class:`~repro.core.stop_rules.MaxChunks` at the adaptive
  controller's current chunk budget — the service-wide quality knob.

A request whose deadline has already expired in the queue still runs: a
chunk is the granule of the search, so the cheapest legal answer is a
one-chunk scan under an epsilon deadline budget.  "Degraded but valid"
beats an error page — the whole premise of the quality/time trade-off.
"""

from __future__ import annotations

from ..core.stop_rules import DeadlineBudget, FirstOf, MaxChunks, StopRule

__all__ = ["EXPIRED_BUDGET_S", "propagated_stop_rule"]

#: Budget handed to a request that is already past its deadline when it
#: reaches a worker: small enough that the DeadlineBudget rule fires
#: right after the first chunk, large enough to be a valid rule.
EXPIRED_BUDGET_S = 1e-9


# repro: approximate
def propagated_stop_rule(
    remaining_s: float, chunk_budget: int, n_chunks: int
) -> StopRule:
    """Build the stop rule for one request given its remaining deadline.

    Parameters
    ----------
    remaining_s:
        Seconds left until the request's absolute deadline at the moment
        its search starts (may be zero or negative: expired in queue).
    chunk_budget:
        The adaptive controller's current default chunk budget
        (0 = unbounded, i.e. the whole index).
    n_chunks:
        Chunks in the index, used to skip a vacuous ``MaxChunks``.
    """
    if n_chunks < 1:
        raise ValueError(f"index must hold at least one chunk, got {n_chunks}")
    if chunk_budget < 0:
        raise ValueError(f"chunk budget cannot be negative, got {chunk_budget}")
    budget_s = remaining_s if remaining_s > 0.0 else EXPIRED_BUDGET_S
    deadline_rule = DeadlineBudget(budget_s)
    if 0 < chunk_budget < n_chunks:
        return FirstOf([deadline_rule, MaxChunks(chunk_budget)])
    return deadline_rule
