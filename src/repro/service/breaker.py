"""Per-chunk-region circuit breakers over the fault injector.

Degraded execution (PR 3) pays for every broken chunk *individually*:
``max_retries + 1`` failed reads plus exponential backoff, per query,
per chunk.  When damage is regional — a bad platter zone, a sick shard —
that price is paid over and over by every request that ranks a chunk
from the region.  A circuit breaker converts the repeated price into a
one-time observation: after enough failures in a region's rolling
window, the breaker *opens* and subsequent requests skip the region's
chunks outright, charging zero I/O instead of a full retry ladder.

State machine (classic three-state, on the simulated clock):

* **closed** — accesses flow through; outcomes land in a rolling window;
  ``failure_threshold`` failures within the window trip the breaker.
* **open** — every access to the region is skipped (no retries, no I/O
  charge) until ``cooldown_s`` of simulated time has passed.
* **half-open** — after the cooldown the region is probed: accesses flow
  through again; a single failure re-opens (and restarts the cooldown),
  ``probe_successes`` consecutive successes close it.

Decisions are made at request *start* (a request sees the breaker state
as of its start time) and observations are folded in at request
*completion* — the coarsest consistent ordering, and a deterministic one:
both instants are events of the simulated timeline.

The skip surfaces in traces as a skipped chunk with fault kind
:data:`BREAKER_OPEN` and zero retries, so coverage accounting and the
``proof-degraded`` stop reason treat breaker losses exactly like
exhausted-retry losses — quality honestly withdrawn, time honestly not
spent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence

from ..core.trace import TraceEvent
from ..faults.injector import FaultInjector
from ..faults.plan import FAILURE_KINDS, OK_OUTCOME, ChunkFaultOutcome

__all__ = [
    "BREAKER_OPEN",
    "BREAKER_SKIP_OUTCOME",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
    "RegionBreaker",
    "BreakerBoard",
    "BreakerGuardedInjector",
]

#: Fault kind recorded for a chunk skipped because its region's breaker
#: was open (no read was attempted; distinct from every injected kind).
BREAKER_OPEN = "breaker-open"

#: The outcome a guarded injector returns for a breaker-skipped chunk:
#: not ok (the chunk is skipped), zero attempts, zero I/O charge — the
#: entire point of the breaker is to not pay the retry ladder.
BREAKER_SKIP_OUTCOME = ChunkFaultOutcome(
    ok=False, kind=BREAKER_OPEN, attempts=0, extra_io_s=0.0, spiked=False
)

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class RegionBreaker:
    """Breaker state machine for one chunk region."""

    def __init__(
        self,
        window: int,
        failure_threshold: int,
        cooldown_s: float,
        probe_successes: int,
    ):
        if window < 1 or failure_threshold < 1:
            raise ValueError("window and threshold must be positive")
        if failure_threshold > window:
            raise ValueError("threshold cannot exceed the window")
        if cooldown_s <= 0.0:
            raise ValueError("cooldown must be positive")
        if probe_successes < 1:
            raise ValueError("probe successes must be positive")
        self.window = int(window)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.probe_successes = int(probe_successes)
        self.state = STATE_CLOSED
        self.opened_at_s = 0.0
        #: Transition counters: closed/half-open -> open trips,
        #: open -> half-open cooldown expiries, half-open -> closed
        #: recoveries.  Together they expose the full state-machine
        #: history of the run, not just its final census.
        self.open_count = 0
        self.half_open_count = 0
        self.close_count = 0
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._window_failures = 0
        self._probe_ok = 0

    # -- decisions -----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May the region be accessed at ``now``?  Advances open ->
        half-open once the cooldown has elapsed."""
        if self.state == STATE_OPEN:
            if now >= self.opened_at_s + self.cooldown_s:
                self.state = STATE_HALF_OPEN
                self.half_open_count += 1
                self._probe_ok = 0
                return True
            return False
        return True

    # -- observations --------------------------------------------------------

    def record(self, ok: bool, now: float) -> None:
        """Fold one region access outcome (observed at ``now``) in."""
        if self.state == STATE_OPEN:
            # A request that started before the trip may complete after
            # it; its observations are stale — the breaker already acted.
            return
        if self.state == STATE_HALF_OPEN:
            if not ok:
                self._trip(now)
            else:
                self._probe_ok += 1
                if self._probe_ok >= self.probe_successes:
                    self._close()
            return
        if len(self._outcomes) == self._outcomes.maxlen and not self._outcomes[0]:
            self._window_failures -= 1
        self._outcomes.append(ok)
        if not ok:
            self._window_failures += 1
            if self._window_failures >= self.failure_threshold:
                self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = STATE_OPEN
        self.opened_at_s = float(now)
        self.open_count += 1
        self._outcomes.clear()
        self._window_failures = 0
        self._probe_ok = 0

    def _close(self) -> None:
        self.state = STATE_CLOSED
        self.close_count += 1
        self._outcomes.clear()
        self._window_failures = 0
        self._probe_ok = 0


class BreakerBoard:
    """All region breakers of one index, plus the chunk -> region map."""

    def __init__(
        self,
        n_chunks: int,
        region_size: int,
        window: int = 16,
        failure_threshold: int = 4,
        cooldown_s: float = 1.0,
        probe_successes: int = 2,
    ):
        if n_chunks < 1:
            raise ValueError("index must hold at least one chunk")
        if region_size < 1:
            raise ValueError("region size must be positive")
        self.n_chunks = int(n_chunks)
        self.region_size = int(region_size)
        self.n_regions = (n_chunks + region_size - 1) // region_size
        self.breakers: List[RegionBreaker] = [
            RegionBreaker(window, failure_threshold, cooldown_s, probe_successes)
            for _ in range(self.n_regions)
        ]

    def region_of(self, chunk_id: int) -> int:
        """Region index of a chunk (contiguous blocks of ``region_size``)."""
        if not 0 <= chunk_id < self.n_chunks:
            raise ValueError(f"chunk {chunk_id} out of range")
        return chunk_id // self.region_size

    def blocked_regions(self, now: float) -> FrozenSet[int]:
        """Regions whose breaker refuses access at ``now`` (this also
        advances any cooled-down breaker to half-open)."""
        return frozenset(
            region
            for region, breaker in enumerate(self.breakers)
            if not breaker.allow(now)
        )

    def observe_trace(self, events: Sequence[TraceEvent], now: float) -> None:
        """Fold one finished request's trace events into the breakers.

        A skipped event with an injected failure kind counts as a region
        failure; a processed event counts as a success (retried-then-
        successful reads still delivered the chunk).  Breaker-caused
        skips are the board's own output and are ignored.
        """
        for event in events:
            if event.fault == BREAKER_OPEN:
                continue
            ok = not (event.skipped and event.fault in FAILURE_KINDS)
            self.breakers[self.region_of(event.chunk_id)].record(ok, now)

    # -- reporting -----------------------------------------------------------

    def state_counts(self) -> Dict[str, int]:
        """How many regions are currently closed / open / half-open."""
        counts = {STATE_CLOSED: 0, STATE_OPEN: 0, STATE_HALF_OPEN: 0}
        for breaker in self.breakers:
            counts[breaker.state] += 1
        return counts

    def transition_counts(self) -> Dict[str, int]:
        """Cumulative state transitions over the whole run.

        ``opened`` counts closed/half-open -> open trips, ``half_opened``
        counts cooldown expiries (open -> half-open), ``closed`` counts
        half-open -> closed recoveries.  Unlike :meth:`state_counts`
        (the final census) these expose the *path* the breakers took,
        which is what makes failover behaviour observable in sweep
        output: a region that tripped, cooled down and recovered leaves
        ``opened == half_opened == closed == 1`` even though its final
        state is indistinguishable from never having tripped.
        """
        return {
            "opened": sum(b.open_count for b in self.breakers),
            "half_opened": sum(b.half_open_count for b in self.breakers),
            "closed": sum(b.close_count for b in self.breakers),
        }

    @property
    def total_opens(self) -> int:
        """Times any region breaker tripped over the run."""
        return sum(breaker.open_count for breaker in self.breakers)


class BreakerGuardedInjector:
    """Fault-injector facade that short-circuits blocked regions.

    Wraps the searcher-facing :class:`~repro.faults.injector.FaultInjector`
    surface (the ``outcome`` method): chunks in ``blocked_regions`` get
    :data:`BREAKER_SKIP_OUTCOME` without consulting the inner injector —
    no retry ladder, no backoff, no I/O charge; all other chunks pass
    through unchanged (or cleanly, when no injector is configured).

    One instance is built per request at its start time, freezing the
    breaker decision for that request — the searcher then needs no
    knowledge of breakers at all.
    """

    def __init__(
        self,
        inner: Optional[FaultInjector],
        board: BreakerBoard,
        blocked_regions: FrozenSet[int],
    ):
        self._inner = inner
        self._board = board
        self._blocked = blocked_regions

    @property
    def is_null(self) -> bool:
        """Null only when nothing can be injected *and* nothing is blocked."""
        return not self._blocked and (self._inner is None or self._inner.is_null)

    def outcome(
        self,
        query_id: int,
        chunk_id: int,
        page_count: int,
        readable: bool = True,
    ) -> ChunkFaultOutcome:
        """Per-(query, chunk) decision; breaker skip wins over injection."""
        if self._board.region_of(chunk_id) in self._blocked:
            return BREAKER_SKIP_OUTCOME
        if self._inner is None:
            return OK_OUTCOME
        return self._inner.outcome(query_id, chunk_id, page_count, readable=readable)
