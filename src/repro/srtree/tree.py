"""Dynamic SR-tree: insertion, node splitting, exact NN search.

The paper adapted Katayama & Satoh's SR-tree with two small changes: a
parameter controlling leaf size, and a method generating one chunk per leaf
(section 2).  The paper built its chunk indexes with the *static* build
(see :mod:`repro.srtree.bulk_load`); the dynamic tree here completes the
substrate — an incremental insert path and an exact k-NN search used to
cross-check ground truth and to validate the bulk loader's structures.

Design choices follow the SR/SS-tree lineage:

* **Choose-subtree**: descend into the child whose centroid is nearest to
  the new point (SS-tree rule, kept by the SR-tree).
* **Split**: pick the coordinate axis with the highest variance among the
  entries' centroids, sort along it, and cut at the position (respecting a
  40 % minimum fill) that minimizes total variance of the two groups.
* **Search**: best-first branch and bound on ``min_dist``, the max of the
  sphere and rectangle lower bounds.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Tuple

import numpy as np

from ..core.neighbors import NeighborSet
from .node import SRNode

__all__ = ["SRTree"]


class SRTree:
    """An SR-tree over a growing matrix of points.

    Parameters
    ----------
    dimensions:
        Dimensionality of the indexed space.
    leaf_capacity:
        Maximum points per leaf — the paper's added knob ("a parameter to
        control the size of the leaves").
    internal_capacity:
        Maximum children per internal node.
    min_fill:
        Minimum fraction of capacity per node after a split.
    """

    def __init__(
        self,
        dimensions: int,
        leaf_capacity: int = 64,
        internal_capacity: int = 16,
        min_fill: float = 0.4,
    ):
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if leaf_capacity < 2 or internal_capacity < 2:
            raise ValueError("capacities must be at least 2")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.dimensions = dimensions
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity
        self.min_fill = min_fill
        # Amortized-growth backing buffer; _vectors is the live view.
        self._buffer = np.empty((16, dimensions), dtype=np.float64)
        self._size = 0
        self.root: Optional[SRNode] = None

    # -- bookkeeping -----------------------------------------------------------

    @property
    def _vectors(self) -> np.ndarray:
        return self._buffer[: self._size]

    @property
    def vectors(self) -> np.ndarray:
        """Backing float64 point matrix (row i = point inserted i-th)."""
        return self._vectors

    def _append_vector(self, point: np.ndarray) -> int:
        if self._size == self._buffer.shape[0]:
            grown = np.empty((self._buffer.shape[0] * 2, self.dimensions), dtype=np.float64)
            grown[: self._size] = self._buffer[: self._size]
            self._buffer = grown
        self._buffer[self._size] = point
        self._size += 1
        return self._size - 1

    def __len__(self) -> int:
        return self.root.count if self.root is not None else 0

    def height(self) -> int:
        return self.root.depth() if self.root is not None else 0

    # -- insertion ----------------------------------------------------------------

    def insert(self, point: np.ndarray) -> int:
        """Insert one point; returns its row number."""
        point = np.asarray(point, dtype=np.float64).reshape(-1)
        if point.shape[0] != self.dimensions:
            raise ValueError(
                f"point has {point.shape[0]} dims, tree has {self.dimensions}"
            )
        row = self._append_vector(point)

        if self.root is None:
            self.root = SRNode(is_leaf=True, dimensions=self.dimensions)
            self.root.rows.append(row)
            self.root.refresh_summary(self._vectors)
            return row

        split = self._insert_into(self.root, row, point)
        if split is not None:
            old_root = self.root
            new_root = SRNode(is_leaf=False, dimensions=self.dimensions)
            new_root.children = [old_root, split]
            new_root.refresh_summary(self._vectors)
            self.root = new_root
        return row

    def extend(self, points: np.ndarray) -> None:
        """Insert many points, one at a time."""
        for point in np.asarray(points, dtype=np.float64):
            self.insert(point)

    def _insert_into(
        self, node: SRNode, row: int, point: np.ndarray
    ) -> Optional[SRNode]:
        """Recursive insert; returns a sibling node if ``node`` split."""
        if node.is_leaf:
            node.rows.append(row)
            if len(node.rows) > self.leaf_capacity:
                return self._split_leaf(node)
            node.refresh_summary(self._vectors)
            return None

        child = self._choose_subtree(node, point)
        new_sibling = self._insert_into(child, row, point)
        if new_sibling is not None:
            node.children.append(new_sibling)
            if len(node.children) > self.internal_capacity:
                return self._split_internal(node)
        node.refresh_summary(self._vectors)
        return None

    def _choose_subtree(self, node: SRNode, point: np.ndarray) -> SRNode:
        """SS-tree rule: the child whose centroid is closest to the point."""
        centroids = np.stack([c.centroid for c in node.children])
        diffs = centroids - point
        d2 = np.einsum("ij,ij->i", diffs, diffs)
        return node.children[int(np.argmin(d2))]

    # -- splitting -------------------------------------------------------------------

    def _split_positions(self, coords: np.ndarray, capacity: int) -> Tuple[np.ndarray, int]:
        """Sort order along the split axis and the best cut position.

        The cut minimizes the summed variance of the two groups over all
        positions that respect the minimum fill.
        """
        order = np.argsort(coords, kind="stable")
        n = coords.shape[0]
        min_count = max(1, int(math.ceil(capacity * self.min_fill)))
        best_cut, best_score = None, math.inf
        for cut in range(min_count, n - min_count + 1):
            left = coords[order[:cut]]
            right = coords[order[cut:]]
            score = left.var() * left.size + right.var() * right.size
            if score < best_score:
                best_score, best_cut = score, cut
        if best_cut is None:  # pathological capacity/min_fill combination
            best_cut = n // 2
        return order, best_cut

    def _split_axis(self, centroids: np.ndarray) -> int:
        """Axis of maximum variance among entry centroids."""
        return int(np.argmax(centroids.var(axis=0)))

    def _split_leaf(self, node: SRNode) -> SRNode:
        points = np.asarray(self._vectors[node.rows], dtype=np.float64)
        axis = self._split_axis(points)
        order, cut = self._split_positions(points[:, axis], self.leaf_capacity)
        rows = [node.rows[i] for i in order]
        sibling = SRNode(is_leaf=True, dimensions=self.dimensions)
        node.rows = rows[:cut]
        sibling.rows = rows[cut:]
        node.refresh_summary(self._vectors)
        sibling.refresh_summary(self._vectors)
        return sibling

    def _split_internal(self, node: SRNode) -> SRNode:
        centroids = np.stack([c.centroid for c in node.children])
        axis = self._split_axis(centroids)
        order, cut = self._split_positions(centroids[:, axis], self.internal_capacity)
        children = [node.children[i] for i in order]
        sibling = SRNode(is_leaf=False, dimensions=self.dimensions)
        node.children = children[:cut]
        sibling.children = children[cut:]
        node.refresh_summary(self._vectors)
        sibling.refresh_summary(self._vectors)
        return sibling

    # -- search -------------------------------------------------------------------------

    def nn_search(self, query: np.ndarray, k: int = 1) -> List[Tuple[float, int]]:
        """Exact k nearest neighbors as ``(distance, row)`` pairs, best first.

        Best-first branch and bound: nodes are visited in order of their
        ``min_dist`` and pruned once that bound exceeds the current k-th
        distance, so the result equals a linear scan's.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dimensions:
            raise ValueError("query dimensionality mismatch")
        if self.root is None:
            return []
        neighbors = NeighborSet(k)
        counter = itertools.count()  # tie-breaker: heap entries stay comparable
        frontier: List[Tuple[float, int, SRNode]] = [
            (self.root.min_dist(query), next(counter), self.root)
        ]
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > neighbors.kth_distance:
                break  # every remaining node is at least this far
            if node.is_leaf:
                points = np.asarray(self._vectors[node.rows], dtype=np.float64)
                diffs = points - query
                distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
                neighbors.update(distances, np.asarray(node.rows, dtype=np.int64))
                continue
            for child in node.children:
                child_bound = child.min_dist(query)
                if child_bound <= neighbors.kth_distance:
                    heapq.heappush(frontier, (child_bound, next(counter), child))
        return [(n.distance, n.descriptor_id) for n in neighbors.sorted()]

    # -- invariants -----------------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``AssertionError`` on any violated structural invariant."""
        if self.root is None:
            return
        assert self.root.count == self._vectors.shape[0], "root count drifted"
        seen: List[int] = []
        self._validate_node(self.root, is_root=True, seen=seen)
        assert sorted(seen) == list(range(self._vectors.shape[0])), (
            "leaves do not partition the inserted rows"
        )
        depths = {leaf_depth for leaf_depth in self._leaf_depths(self.root, 1)}
        assert len(depths) == 1, f"leaves at multiple depths: {depths}"

    def _leaf_depths(self, node: SRNode, depth: int):
        if node.is_leaf:
            yield depth
        else:
            for child in node.children:
                yield from self._leaf_depths(child, depth + 1)

    def _validate_node(self, node: SRNode, is_root: bool, seen: List[int]) -> None:
        if node.is_leaf:
            assert node.rows, "empty leaf"
            assert len(node.rows) <= self.leaf_capacity, "leaf over capacity"
            seen.extend(node.rows)
            points = self._vectors[node.rows]
            for point in points:
                assert node.rect.contains_point(point), "point escapes leaf rect"
                assert node.sphere.contains_point(point), "point escapes leaf sphere"
            return
        assert node.children, "empty internal node"
        assert len(node.children) <= self.internal_capacity, "node over capacity"
        if not is_root:
            min_count = int(math.ceil(self.internal_capacity * self.min_fill))
            # Splits guarantee min fill; subsequent inserts only add entries.
            assert len(node.children) >= 1, "underfull internal node"
        count = 0
        for child in node.children:
            assert node.rect.contains_rect(child.rect), "child rect escapes parent"
            count += child.count
            self._validate_node(child, is_root=False, seen=seen)
        assert count == node.count, "internal count drifted"
