"""Geometric primitives of the SR-tree.

The SR-tree (Katayama & Satoh, SIGMOD 1997) is the "Sphere/Rectangle tree":
every node region is the *intersection* of a bounding sphere and a bounding
rectangle.  Spheres give tight distance bounds for high-dimensional,
centroid-clustered data; rectangles bound the region's volume.  Distance
lower bounds for the search take the max of the two primitives' bounds,
which is what makes the combined region strictly better than either alone.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["Rect", "Sphere", "min_dist_rect", "max_dist_rect"]


def min_dist_rect(query: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> float:
    """Euclidean distance from a point to an axis-aligned rectangle (0 inside)."""
    below = np.maximum(lows - query, 0.0)
    above = np.maximum(query - highs, 0.0)
    gap = np.maximum(below, above)
    return float(np.sqrt(np.dot(gap, gap)))


def max_dist_rect(query: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> float:
    """Distance from a point to the farthest corner of a rectangle."""
    far = np.maximum(np.abs(query - lows), np.abs(query - highs))
    return float(np.sqrt(np.dot(far, far)))


@dataclasses.dataclass
class Rect:
    """Axis-aligned minimum bounding rectangle."""

    lows: np.ndarray
    highs: np.ndarray

    def __post_init__(self) -> None:
        self.lows = np.asarray(self.lows, dtype=np.float64)
        self.highs = np.asarray(self.highs, dtype=np.float64)
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise ValueError("rect bounds must be matching 1-D arrays")
        if np.any(self.lows > self.highs):
            raise ValueError("rect has low > high in some dimension")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "Rect":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) point matrix")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, rects: Sequence["Rect"]) -> "Rect":
        if not rects:
            raise ValueError("union of zero rects is undefined")
        lows = np.min(np.stack([r.lows for r in rects]), axis=0)
        highs = np.max(np.stack([r.highs for r in rects]), axis=0)
        return cls(lows, highs)

    @property
    def dimensions(self) -> int:
        return self.lows.shape[0]

    @property
    def center(self) -> np.ndarray:
        """Box midpoint per dimension, dtype float64."""
        return (self.lows + self.highs) / 2.0

    def extents(self) -> np.ndarray:
        """Side length per dimension, dtype float64."""
        return self.highs - self.lows

    def contains_point(self, point: np.ndarray, eps: float = 1e-9) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(
            np.all(point >= self.lows - eps) and np.all(point <= self.highs + eps)
        )

    def contains_rect(self, other: "Rect", eps: float = 1e-9) -> bool:
        return bool(
            np.all(other.lows >= self.lows - eps)
            and np.all(other.highs <= self.highs + eps)
        )

    def min_dist(self, query: np.ndarray) -> float:
        return min_dist_rect(np.asarray(query, dtype=np.float64), self.lows, self.highs)

    def max_dist(self, query: np.ndarray) -> float:
        return max_dist_rect(np.asarray(query, dtype=np.float64), self.lows, self.highs)

    def expanded_to(self, point: np.ndarray) -> "Rect":
        point = np.asarray(point, dtype=np.float64)
        return Rect(np.minimum(self.lows, point), np.maximum(self.highs, point))


@dataclasses.dataclass
class Sphere:
    """Bounding sphere: center plus radius."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64)
        if self.center.ndim != 1:
            raise ValueError("sphere center must be a 1-D vector")
        if self.radius < 0:
            raise ValueError("sphere radius cannot be negative")
        self.radius = float(self.radius)

    @classmethod
    def of_points(cls, points: np.ndarray, center: np.ndarray = None) -> "Sphere":
        """Bounding sphere centered at the centroid (or a given center).

        The SR-tree centers node spheres on the centroid of the underlying
        points rather than computing a minimal enclosing sphere — the
        centroid is cheap to maintain incrementally and serves as the
        insertion target.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) point matrix")
        if center is None:
            center = points.mean(axis=0)
        center = np.asarray(center, dtype=np.float64)
        diffs = points - center
        radius = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs).max()))
        return cls(center, radius)

    @property
    def dimensions(self) -> int:
        return self.center.shape[0]

    def min_dist(self, query: np.ndarray) -> float:
        query = np.asarray(query, dtype=np.float64)
        d = float(np.linalg.norm(query - self.center))
        return max(0.0, d - self.radius)

    def max_dist(self, query: np.ndarray) -> float:
        query = np.asarray(query, dtype=np.float64)
        return float(np.linalg.norm(query - self.center)) + self.radius

    def contains_point(self, point: np.ndarray, eps: float = 1e-9) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return float(np.linalg.norm(point - self.center)) <= self.radius * (1 + eps) + eps

    def contains_sphere(self, other: "Sphere", eps: float = 1e-9) -> bool:
        gap = float(np.linalg.norm(other.center - self.center)) + other.radius
        return gap <= self.radius * (1 + eps) + eps
