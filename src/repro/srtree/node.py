"""SR-tree nodes.

Every node summarizes its subtree with the SR-tree triple:

* the **centroid** of all points below it (with their count, so parent
  centroids are exact weighted means),
* a **bounding sphere** centered on that centroid, and
* a **bounding rectangle**.

A node's region is the intersection of its sphere and rectangle;
:meth:`SRNode.min_dist` takes the max of the two lower bounds, the key
property the NN search prunes with.

Leaves hold row positions into the backing vector matrix; internal nodes
hold child nodes.  The matrix itself lives on the tree, not in the nodes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .geometry import Rect, Sphere

__all__ = ["SRNode"]


class SRNode:
    """One SR-tree node (leaf or internal)."""

    __slots__ = ("is_leaf", "rows", "children", "count", "centroid", "sphere", "rect")

    def __init__(self, is_leaf: bool, dimensions: int):
        self.is_leaf = is_leaf
        self.rows: List[int] = []
        self.children: List["SRNode"] = []
        self.count = 0
        self.centroid = np.zeros(dimensions, dtype=np.float64)
        self.sphere: Optional[Sphere] = None
        self.rect: Optional[Rect] = None

    # -- summaries -----------------------------------------------------------

    def refresh_summary(self, vectors: np.ndarray) -> None:
        """Recompute count/centroid/sphere/rect from current contents.

        ``vectors`` is the tree's backing ``(n, d)`` matrix.  For internal
        nodes the children's summaries must already be up to date.

        The sphere radius follows the SR-tree: centered on the centroid and
        sized to the smaller of (a) the farthest reach of the child
        *spheres* and (b) the farthest reach of the child *rectangles* —
        both upper-bound the farthest point, and taking the min keeps the
        sphere tight.
        """
        if self.is_leaf:
            if not self.rows:
                raise ValueError("cannot summarize an empty leaf")
            points = np.asarray(vectors[self.rows], dtype=np.float64)
            self.count = points.shape[0]
            self.centroid = points.mean(axis=0)
            self.sphere = Sphere.of_points(points, center=self.centroid)
            self.rect = Rect.of_points(points)
            return

        if not self.children:
            raise ValueError("cannot summarize an internal node with no children")
        counts = np.asarray([c.count for c in self.children], dtype=np.float64)
        centroids = np.stack([c.centroid for c in self.children])
        self.count = int(counts.sum())
        self.centroid = (centroids * counts[:, np.newaxis]).sum(axis=0) / counts.sum()
        self.rect = Rect.union_of([c.rect for c in self.children])

        sphere_reach = max(
            float(np.linalg.norm(c.centroid - self.centroid))
            + (c.sphere.radius if c.sphere else 0.0)
            for c in self.children
        )
        rect_reach = max(c.rect.max_dist(self.centroid) for c in self.children)
        self.sphere = Sphere(self.centroid, min(sphere_reach, rect_reach))

    # -- distances -------------------------------------------------------------

    def min_dist(self, query: np.ndarray) -> float:
        """Lower bound on the distance from ``query`` to any point below.

        The SR-tree bound: max of the sphere's and the rectangle's lower
        bounds (the region is their intersection).
        """
        if self.sphere is None or self.rect is None:
            raise ValueError("node summary not computed yet")
        return max(self.sphere.min_dist(query), self.rect.min_dist(query))

    def max_dist(self, query: np.ndarray) -> float:
        """Upper bound on the distance to the farthest point below."""
        if self.sphere is None or self.rect is None:
            raise ValueError("node summary not computed yet")
        return min(self.sphere.max_dist(query), self.rect.max_dist(query))

    # -- structure ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows) if self.is_leaf else len(self.children)

    def depth(self) -> int:
        """Levels below (and including) this node; a leaf has depth 1."""
        node = self
        levels = 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def iter_leaves(self):
        """Yield every leaf under this node, left to right."""
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.iter_leaves()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"SRNode({kind}, fanout={len(self)}, count={self.count})"
