"""SR-tree substrate (Katayama & Satoh, SIGMOD 1997).

The paper forms uniform-size chunks by bulk-building an SR-tree with a
chosen leaf capacity and emitting one chunk per leaf, discarding the upper
levels (section 2).  This package provides the full index structure:

* :mod:`~repro.srtree.geometry` — bounding spheres and rectangles and
  their distance bounds;
* :mod:`~repro.srtree.node` — nodes summarizing subtrees with
  centroid + sphere + rectangle;
* :mod:`~repro.srtree.tree` — the dynamic tree (insert, variance split,
  exact best-first k-NN search);
* :mod:`~repro.srtree.bulk_load` — the static build with guaranteed
  uniform leaf size that the paper's chunker relies on.

The leaf-to-chunk extraction lives with the other chunk-forming strategies
in :mod:`repro.chunking.srtree_chunker`.
"""

from .bulk_load import bulk_load, partition_rows_uniform
from .geometry import Rect, Sphere
from .node import SRNode
from .tree import SRTree

__all__ = [
    "bulk_load",
    "partition_rows_uniform",
    "Rect",
    "Sphere",
    "SRNode",
    "SRTree",
]
