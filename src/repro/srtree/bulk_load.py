"""Static SR-tree construction (the paper's build path).

Section 2: "We used the static build method, as it was much faster and
guaranteed uniform leaf size.  Unfortunately, it requires the collection to
fit in memory."

The builder is a sort-tile-recursive variant specialized for uniform
leaves: a row set is recursively cut along its widest-variance dimension,
with the cut position snapped to a multiple of the leaf capacity, until
groups fit in one leaf.  Every leaf therefore holds exactly
``leaf_capacity`` descriptors except the single trailing remainder leaf —
the "roundish chunks of uniform physical size" the paper describes.

Internal levels are assembled bottom-up by grouping consecutive nodes
(which the recursive sort keeps spatially coherent), yielding a complete
SR-tree whose exact NN search can cross-check the dynamic tree.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .node import SRNode
from .tree import SRTree

__all__ = ["partition_rows_uniform", "bulk_load"]


def partition_rows_uniform(vectors: np.ndarray, leaf_capacity: int) -> List[np.ndarray]:
    """Partition row indices into uniform, spatially coherent groups.

    Recursively splits on the dimension of largest variance; the cut point
    is the largest multiple of ``leaf_capacity`` at or below the median, so
    the left half always carries whole leaves and exactly one group in the
    whole partition may be smaller than ``leaf_capacity``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError("need a non-empty (n, d) matrix")
    if leaf_capacity < 1:
        raise ValueError("leaf capacity must be at least 1")

    groups: List[np.ndarray] = []

    def recurse(rows: np.ndarray) -> None:
        n = rows.shape[0]
        if n <= leaf_capacity:
            groups.append(rows)
            return
        axis = int(np.argmax(vectors[rows].var(axis=0)))
        order = rows[np.argsort(vectors[rows, axis], kind="stable")]
        n_leaves = -(-n // leaf_capacity)  # leaves this group still needs
        left_leaves = n_leaves // 2
        cut = left_leaves * leaf_capacity
        recurse(order[:cut])
        recurse(order[cut:])

    recurse(np.arange(vectors.shape[0], dtype=np.intp))
    return groups


def bulk_load(
    vectors: np.ndarray,
    leaf_capacity: int,
    internal_capacity: int = 16,
) -> SRTree:
    """Build a complete SR-tree statically from an in-memory matrix."""
    vectors = np.asarray(vectors, dtype=np.float64)
    tree = SRTree(
        dimensions=vectors.shape[1],
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
    )
    # Install the backing matrix directly — the static build owns it.
    tree._buffer = vectors.copy()
    tree._size = vectors.shape[0]

    groups = partition_rows_uniform(vectors, leaf_capacity)
    level: List[SRNode] = []
    for rows in groups:
        leaf = SRNode(is_leaf=True, dimensions=vectors.shape[1])
        leaf.rows = [int(r) for r in rows]
        leaf.refresh_summary(tree.vectors)
        level.append(leaf)

    while len(level) > 1:
        parents: List[SRNode] = []
        for start in range(0, len(level), internal_capacity):
            parent = SRNode(is_leaf=False, dimensions=vectors.shape[1])
            parent.children = level[start : start + internal_capacity]
            parent.refresh_summary(tree.vectors)
            parents.append(parent)
        # Avoid a lone single-child trailing parent: fold its child into
        # the predecessor when the predecessor has room.
        if (
            len(parents) >= 2
            and len(parents[-1].children) == 1
            and len(parents[-2].children) < internal_capacity
        ):
            lone = parents.pop()
            parents[-1].children.extend(lone.children)
            parents[-1].refresh_summary(tree.vectors)
        level = parents

    tree.root = level[0]
    return tree
