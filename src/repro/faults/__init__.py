"""Deterministic fault injection and degraded-execution support.

The paper trades quality for time via aggressive stop rules; this
package lets the same search trade quality for *fault tolerance*: a
seeded :class:`FaultPlan` decides, per ``(query, chunk)``, whether a
read fails, is corrupt, truncated, or merely slow, and the
:class:`FaultInjector` prices those decisions against the simulated disk
model so the searchers can retry with backoff, then skip and continue —
with every injected microsecond flowing through the simulated clock and
every skipped chunk accounted for in the result's coverage.

Everything is reproducible from the seed: same plan, same workload, same
quality-vs-fault-rate curve, regardless of execution engine or thread
count.
"""

from .crash_plan import (
    CrashAtStep,
    CrashPlan,
    InjectedCrash,
    RecordingCrashPlan,
    seeded_crash_steps,
)
from .injector import FaultInjector, FaultyFile, InjectedFaultError
from .shard_plan import SHARD_OK, ShardFaultPlan, ShardSubFault
from .plan import (
    FAILURE_KINDS,
    FAULT_CORRUPT,
    FAULT_NONE,
    FAULT_READ_ERROR,
    FAULT_SPIKE,
    FAULT_TRUNCATE,
    OK_OUTCOME,
    ChunkFaultOutcome,
    FaultPlan,
)

__all__ = [
    "CrashPlan",
    "RecordingCrashPlan",
    "CrashAtStep",
    "InjectedCrash",
    "seeded_crash_steps",
    "FaultPlan",
    "ShardFaultPlan",
    "ShardSubFault",
    "SHARD_OK",
    "FaultInjector",
    "FaultyFile",
    "InjectedFaultError",
    "ChunkFaultOutcome",
    "OK_OUTCOME",
    "FAULT_NONE",
    "FAULT_SPIKE",
    "FAULT_READ_ERROR",
    "FAULT_CORRUPT",
    "FAULT_TRUNCATE",
    "FAILURE_KINDS",
]
