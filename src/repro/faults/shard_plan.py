"""Deterministic shard-level fault plans.

The chunk-level :class:`~repro.faults.plan.FaultPlan` models *storage*
damage inside one node; a sharded service additionally fails at the
granularity of whole nodes: a replica drops a request, answers slowly,
or is down for a stretch of simulated time.  :class:`ShardFaultPlan`
models exactly those three modes, with the same purity contract as the
chunk plan — every decision is a pure function of an explicit seed and
the decision's coordinates, independent of call order, so a sharded run
replays bit for bit.

Fault taxonomy:

* ``error`` — one sub-request (query x partition x shard x attempt)
  fails fast: the shard detects the problem after ``error_detect_s`` of
  occupancy and the coordinator fails over to the next replica.  Each
  attempt re-draws independently, like transient chunk read errors.
* ``straggler`` — the sub-request succeeds but its service time is
  multiplied by ``straggler_factor``; this is the tail the hedging
  policy exists to cut (Dean & Barroso's "tail at scale" case, and the
  response-time variability of Tavenard/Amsaleg/Jegou at node scale).
* ``outage`` — a shard is down for one contiguous window of the run's
  horizon; every sub-request dispatched to it during the window fails
  fast.  Windows are drawn once per shard from the seed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

import numpy as np

__all__ = ["ShardSubFault", "ShardFaultPlan", "SHARD_OK"]

#: Stream tags keeping the per-sub-request draws and the per-shard
#: outage-window draws independent of each other.
_STREAM_SUB = 0
_STREAM_OUTAGE = 1


@dataclasses.dataclass(frozen=True)
class ShardSubFault:
    """Resolved fault behaviour of one sub-request attempt.

    ``failed`` means the attempt errors out after ``detect_s`` of
    simulated occupancy (fail fast; the coordinator fails over);
    ``straggler`` means the attempt succeeds but its service time is
    stretched by the plan's ``straggler_factor``.  The two are mutually
    exclusive — a draw classifies into error, straggler, or clean.
    """

    failed: bool
    straggler: bool
    detect_s: float

    @property
    def clean(self) -> bool:
        return not self.failed and not self.straggler


#: Shared clean outcome (also the fast path for null plans).
SHARD_OK = ShardSubFault(failed=False, straggler=False, detect_s=0.0)


@dataclasses.dataclass(frozen=True)
class ShardFaultPlan:
    """Seeded, rate-parameterised shard fault model.

    Parameters
    ----------
    seed:
        Non-negative root seed; together with the decision coordinates
        it fully determines every draw.
    error_rate:
        Per-attempt probability that a sub-request fails fast.
    straggler_rate:
        Per-attempt probability that a clean sub-request is stretched.
    straggler_factor:
        Service-time multiplier of a straggling sub-request (>= 1).
    error_detect_s:
        Simulated occupancy charged by one failed attempt (the time the
        shard needs to notice and report the failure).
    outage_rate:
        Per-shard probability of one outage window within the horizon.
    outage_duration_s, horizon_s:
        Length of an outage window and the horizon it is placed in
        (uniformly, from the seed).  Both zero disable outages.
    """

    seed: int = 0
    error_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    error_detect_s: float = 0.005
    outage_rate: float = 0.0
    outage_duration_s: float = 0.0
    horizon_s: float = 0.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        rates = (self.error_rate, self.straggler_rate, self.outage_rate)
        if any(r < 0.0 or r > 1.0 or r != r for r in rates):
            raise ValueError(f"fault rates must lie in [0, 1], got {rates}")
        if self.error_rate + self.straggler_rate > 1.0 + 1e-12:
            raise ValueError(
                "error rate plus straggler rate must not exceed 1 "
                f"(got {self.error_rate + self.straggler_rate:g})"
            )
        if self.straggler_factor < 1.0:
            raise ValueError("straggler factor must be at least 1")
        if self.error_detect_s < 0.0:
            raise ValueError("error detection time cannot be negative")
        if self.outage_duration_s < 0.0 or self.horizon_s < 0.0:
            raise ValueError("outage duration and horizon cannot be negative")
        if self.outage_rate > 0.0 and (
            self.outage_duration_s <= 0.0 or self.horizon_s <= 0.0
        ):
            raise ValueError(
                "a positive outage rate needs a positive outage duration "
                "and horizon"
            )

    # -- derived properties --------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.error_rate == 0.0
            and self.straggler_rate == 0.0
            and self.outage_rate == 0.0
        )

    @classmethod
    def balanced(
        cls, rate: float, seed: int, horizon_s: float, **overrides: Any
    ) -> "ShardFaultPlan":
        """A plan exercising all three modes from one knob: errors and
        stragglers each at ``rate``, outages at ``rate`` per shard with
        windows spanning a tenth of the horizon.

        This is the single-knob configuration the ``shardsim`` sweep
        uses for its robustness-vs-fault-rate cells.
        """
        if rate < 0.0 or rate > 0.5:
            raise ValueError(
                f"balanced rate must lie in [0, 0.5], got {rate!r} "
                "(errors and stragglers each occur at this rate)"
            )
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        return cls(
            seed=seed,
            error_rate=rate,
            straggler_rate=rate,
            outage_rate=rate,
            outage_duration_s=0.1 * horizon_s,
            horizon_s=horizon_s,
            **overrides,
        )

    # -- deterministic draws -------------------------------------------------

    # repro: exact
    def _uniforms(self, stream: int, key: Tuple[int, ...], n: int) -> np.ndarray:
        """``n`` uniforms in [0, 1) for one keyed decision site; the key
        is ``(seed, stream, *key)`` so draws are independent of call
        order and of every other site."""
        ss = np.random.SeedSequence(entropy=(self.seed, stream) + key)
        words = ss.generate_state(n, dtype=np.uint64)
        return np.asarray(words, dtype=np.float64) * 2.0**-64

    # repro: exact
    def sub_request(
        self, query_index: int, partition_id: int, shard_id: int, attempt: int
    ) -> ShardSubFault:
        """Fault decision for one sub-request attempt.

        ``attempt`` numbers every dispatch of the (query, partition)
        pair — failovers and hedges draw independently, so a retry on a
        healthy replica usually succeeds and a hedged duplicate is not
        doomed to repeat the primary's fate.
        """
        if min(query_index, partition_id, shard_id, attempt) < 0:
            raise ValueError("decision coordinates must be non-negative")
        if self.error_rate == 0.0 and self.straggler_rate == 0.0:
            return SHARD_OK
        u = float(
            self._uniforms(
                _STREAM_SUB,
                (int(query_index), int(partition_id), int(shard_id), int(attempt)),
                1,
            )[0]
        )
        if u < self.error_rate:
            return ShardSubFault(
                failed=True, straggler=False, detect_s=self.error_detect_s
            )
        if u < self.error_rate + self.straggler_rate:
            return ShardSubFault(failed=False, straggler=True, detect_s=0.0)
        return SHARD_OK

    # repro: exact
    def outage_window(self, shard_id: int) -> Optional[Tuple[float, float]]:
        """The shard's outage window ``(start_s, end_s)``, or ``None``.

        At most one window per shard, drawn once from the seed: whether
        the shard has an outage at all (``outage_rate``), and where in
        ``[0, horizon_s - outage_duration_s]`` it starts.
        """
        if shard_id < 0:
            raise ValueError("shard id must be non-negative")
        if self.outage_rate == 0.0:
            return None
        us = self._uniforms(_STREAM_OUTAGE, (int(shard_id),), 2)
        if float(us[0]) >= self.outage_rate:
            return None
        span = max(0.0, self.horizon_s - self.outage_duration_s)
        start = float(us[1]) * span
        return (start, start + self.outage_duration_s)

    # repro: exact
    def shard_down(self, shard_id: int, now: float) -> bool:
        """True when ``shard_id`` is inside its outage window at ``now``."""
        window = self.outage_window(shard_id)
        if window is None:
            return False
        start, end = window
        return start <= now < end
