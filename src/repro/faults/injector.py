"""Fault injection wrappers around the storage readers and the disk model.

Two injection surfaces, matching the two layers at which a production
search system meets broken storage:

* :class:`FaultInjector` — the *search-level* surface.  It binds a
  :class:`~repro.faults.plan.FaultPlan` to a
  :class:`~repro.simio.disk_model.DiskModel` so that each decision also
  carries its simulated time charge (failed attempts pay the chunk's
  uncached random-read cost; spikes pay ``spike_s``; backoff delays come
  from the plan).  The searchers consult it per ``(query, chunk)`` and
  the injected latency flows through the per-query
  :class:`~repro.simio.pipeline.PipelineSimulator` timeline.

* :class:`FaultyFile` — the *storage-level* surface.  A read-only
  file wrapper that damages raw bytes per disk page (bit flips,
  truncations, injected I/O errors), deterministically from the same
  plan.  Wrapping a real chunk file with it exercises the on-disk
  checksum path end to end: flipped bits must surface as
  :class:`~repro.storage.errors.ChecksumError`, not as silently wrong
  neighbors.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Dict

from ..simio.disk_model import DiskModel
from ..simio.pipeline import CostModel
from ..storage.errors import CorruptFileError
from ..storage.pages import DEFAULT_PAGE_BYTES
from .plan import (
    FAULT_CORRUPT,
    FAULT_READ_ERROR,
    FAULT_TRUNCATE,
    ChunkFaultOutcome,
    FaultPlan,
)

__all__ = ["FaultInjector", "FaultyFile", "InjectedFaultError"]


class InjectedFaultError(CorruptFileError):
    """A fault injected by a :class:`FaultyFile` read.

    Subclasses :class:`~repro.storage.errors.CorruptFileError` so the
    degraded-execution retry/skip policy treats injected and real
    storage failures identically.
    """


class FaultInjector:
    """Per-(query, chunk) fault decisions with simulated time charges.

    Parameters
    ----------
    plan:
        The seeded fault plan.
    disk:
        Disk model used to price failed read attempts (one uncached
        random read of the chunk's pages per attempt).
    """

    def __init__(self, plan: FaultPlan, disk: DiskModel):
        self.plan = plan
        self.disk = disk
        self._attempt_io_memo: Dict[int, float] = {}

    @classmethod
    def from_cost_model(cls, plan: FaultPlan, cost_model: CostModel) -> "FaultInjector":
        """Bind a plan to the disk of an existing cost model, so attempt
        charges use exactly the searcher's price per chunk read."""
        return cls(plan, cost_model.disk)

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return self.plan.is_null

    def attempt_io_s(self, page_count: int) -> float:
        """Simulated cost of one failed read attempt of ``page_count``
        pages (memoised; always the uncached random-read price)."""
        cached = self._attempt_io_memo.get(page_count)
        if cached is None:
            cached = self.disk.random_read_time_s(page_count)
            self._attempt_io_memo[page_count] = cached
        return cached

    def outcome(
        self,
        query_id: int,
        chunk_id: int,
        page_count: int,
        readable: bool = True,
    ) -> ChunkFaultOutcome:
        """Resolve one ``(query, chunk)`` access; see
        :meth:`~repro.faults.plan.FaultPlan.chunk_outcome`."""
        return self.plan.chunk_outcome(
            query_id, chunk_id, self.attempt_io_s(page_count), readable=readable
        )


class FaultyFile:
    """Read-only binary-file wrapper injecting byte-level damage.

    Every read is resolved page by page against the plan's per-page
    draws: a ``read-error`` page raises :class:`InjectedFaultError`, a
    ``corrupt`` page gets one deterministic bit flipped, a ``truncate``
    page cuts the stream short at a deterministic offset.  Decisions are
    keyed by absolute page number only, so the same file position always
    fails the same way — a persistent-media model, as a real bad sector
    behaves.

    Intended use: ``ChunkFileReader(FaultyFile(open(path, "rb"), plan),
    dims)`` in tests and fault drills; the reader's checksum layer must
    convert silent bit flips into typed errors.
    """

    def __init__(
        self,
        raw: BinaryIO,
        plan: FaultPlan,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        self._raw = raw
        self._plan = plan
        self._page_bytes = int(page_bytes)

    # -- BinaryIO surface (the subset the readers use) -----------------------

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def read(self, n: int = -1) -> bytes:
        start = self._raw.tell()
        data = self._raw.read(n)
        if not data:
            return data
        out = bytearray(data)
        first_page = start // self._page_bytes
        last_page = (start + len(out) - 1) // self._page_bytes
        for page in range(first_page, last_page + 1):
            kind, detail = self._plan.page_fault(page)
            page_start = max(0, page * self._page_bytes - start)
            if kind == FAULT_READ_ERROR:
                raise InjectedFaultError(
                    f"injected read error at page {page} "
                    f"(byte offset {page * self._page_bytes})"
                )
            if kind == FAULT_CORRUPT:
                span = min(len(out) - page_start, self._page_bytes)
                bit = detail % (span * 8)
                out[page_start + bit // 8] ^= 1 << (bit % 8)
            elif kind == FAULT_TRUNCATE:
                span = min(len(out) - page_start, self._page_bytes)
                cut = page_start + (detail % max(span, 1))
                del out[cut:]
                return bytes(out)
        return bytes(out)

    def close(self) -> None:
        self._raw.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
