"""Seeded crash-point plans for the streaming-ingest durability protocol.

The WAL writer, the checkpoint compactor and the base rebuild announce
every protocol boundary — operation frames flushed, commit marker
flushed, fsync done, each segment published, manifest renamed — by
calling ``plan.reached(site)`` with a stable site name.  A crash plan
decides whether the "process" dies there, by raising
:class:`InjectedCrash`; the test harness catches it, reopens the
directory through recovery, and verifies the restored index.

Three plans cover the matrix-style drills the acceptance criteria ask
for:

* :class:`CrashPlan` — the null plan: never crashes (also the base
  class).
* :class:`RecordingCrashPlan` — never crashes either, but records the
  full ordered site sequence of a run; its length is the size of the
  crash matrix.
* :class:`CrashAtStep` — dies at the N-th announced site, whatever its
  name; running it for every N in ``range(len(recording.sites))``
  exercises a kill at *every* WAL/segment/rename boundary.

:func:`seeded_crash_steps` draws a reproducible subset of step indices
for CI-sized matrices, using the same
:class:`numpy.random.SeedSequence`-from-explicit-entropy discipline as
:class:`~repro.faults.plan.FaultPlan`.

Like every fault-layer injection, a crash here is *simulated*: the
exception unwinds the writer mid-protocol instead of a real ``kill -9``.
The protocol's crash sites sit between durability boundaries (after a
flush or fsync, before the next protocol step), so the on-disk state the
recovery sees is deterministic; byte-level torn states inside a single
write are exercised separately by the WAL truncation tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "InjectedCrash",
    "CrashPlan",
    "RecordingCrashPlan",
    "CrashAtStep",
    "seeded_crash_steps",
]

#: SeedSequence stream tag separating crash-step draws from any other
#: consumer of the same root seed.
_STREAM_CRASH = 7


class InjectedCrash(RuntimeError):
    """A simulated process kill at a named protocol boundary.

    Attributes
    ----------
    site:
        The boundary name (e.g. ``"wal.batch.commit"``).
    step:
        The global 0-based index of the boundary within the run.
    """

    def __init__(self, site: str, step: int):
        super().__init__(f"injected crash at {site} (step {step})")
        self.site = site
        self.step = step


class CrashPlan:
    """Base/null plan: observes every boundary, never crashes."""

    def __init__(self) -> None:
        self.steps_seen = 0

    def reached(self, site: str) -> None:
        """Announce one protocol boundary.  The null plan just counts."""
        self.steps_seen += 1


class RecordingCrashPlan(CrashPlan):
    """Records the ordered site sequence of a run without crashing.

    A recording pass enumerates the crash matrix: running the same
    scenario again under ``CrashAtStep(n)`` for each ``n`` kills the
    writer at every boundary the recording saw.
    """

    def __init__(self) -> None:
        super().__init__()
        self.sites: List[str] = []

    def reached(self, site: str) -> None:
        self.sites.append(site)
        super().reached(site)


class CrashAtStep(CrashPlan):
    """Dies (raises :class:`InjectedCrash`) at the N-th announced boundary."""

    def __init__(self, step: int):
        super().__init__()
        if step < 0:
            raise ValueError("crash step must be non-negative")
        self.step = int(step)

    def reached(self, site: str) -> None:
        current = self.steps_seen
        super().reached(site)
        if current == self.step:
            raise InjectedCrash(site, current)


def seeded_crash_steps(seed: int, n_steps: int, n_points: int) -> Tuple[int, ...]:
    """A reproducible, sorted subset of crash-step indices.

    Pure function of ``(seed, n_steps, n_points)``: the CI crash-recovery
    matrix and a local rerun pick exactly the same kill points.  When
    ``n_points >= n_steps`` every step is returned.
    """
    if n_steps <= 0:
        return ()
    if n_points >= n_steps:
        return tuple(range(n_steps))
    if n_points <= 0:
        return ()
    entropy = np.random.SeedSequence(entropy=(int(seed), _STREAM_CRASH, int(n_steps)))
    rng = np.random.Generator(np.random.PCG64(entropy))
    chosen = rng.choice(n_steps, size=n_points, replace=False)
    return tuple(int(step) for step in np.sort(chosen))
