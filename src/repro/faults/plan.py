"""Deterministic fault plans.

A :class:`FaultPlan` is a *pure function* from ``(query_id, chunk_id,
attempt)`` to a fault decision, derived from an explicit seed via
:class:`numpy.random.SeedSequence`.  Nothing here depends on call order,
wall-clock time, or process state, which is what makes fault-injection
runs reproducible to the bit: the sequential searcher, the chunk-major
batch engine, and a re-run tomorrow all see exactly the same faults for
the same ``(seed, query, chunk)`` triple.

Fault taxonomy (mirroring what real chunk storage exhibits):

* ``read-error`` — a transient I/O failure; a retry re-draws and usually
  succeeds (the per-attempt decision is independent).
* ``corrupt`` / ``truncate`` — persistent media damage; once drawn for a
  ``(query, chunk)`` the chunk stays unreadable for every retry.
* ``latency-spike`` — the read succeeds but costs ``spike_s`` extra
  simulated seconds (the tail-latency case of Tavenard et al.: a slow
  chunk, like a broken one, must cost bounded time).

Timing semantics (what degraded execution charges to the simulated
clock) are encoded in :meth:`FaultPlan.chunk_outcome`: every failed
attempt pays the chunk's read cost plus an exponential backoff delay;
a successful retry pays the preceding failures plus the normal read; a
skipped chunk pays all ``max_retries + 1`` failed reads.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple

import numpy as np

__all__ = [
    "FAULT_NONE",
    "FAULT_SPIKE",
    "FAULT_READ_ERROR",
    "FAULT_CORRUPT",
    "FAULT_TRUNCATE",
    "FAILURE_KINDS",
    "ChunkFaultOutcome",
    "OK_OUTCOME",
    "FaultPlan",
]

#: No fault: the read behaves normally.
FAULT_NONE = "none"
#: The read succeeds but takes ``spike_s`` extra simulated seconds.
FAULT_SPIKE = "latency-spike"
#: Transient read failure; retries re-draw independently.
FAULT_READ_ERROR = "read-error"
#: Persistent payload corruption (as a CRC check would detect).
FAULT_CORRUPT = "corrupt"
#: Persistent mid-chunk truncation.
FAULT_TRUNCATE = "truncate"

#: Kinds that make an attempt fail (spikes slow a read, they do not fail it).
FAILURE_KINDS = (FAULT_READ_ERROR, FAULT_CORRUPT, FAULT_TRUNCATE)

#: Persistent kinds: drawn once, they fail every subsequent attempt.
_PERSISTENT_KINDS = (FAULT_CORRUPT, FAULT_TRUNCATE)

#: Stream tags keeping the per-(query, chunk) draws and the per-page byte
#: draws (see :class:`~repro.faults.injector.FaultyFile`) independent.
_STREAM_CHUNK = 0
_STREAM_PAGE = 1


@dataclasses.dataclass(frozen=True)
class ChunkFaultOutcome:
    """Resolved fault behaviour of one ``(query, chunk)`` access.

    Attributes
    ----------
    ok:
        True when some attempt succeeded and the chunk's contents are
        usable; False means the chunk must be skipped.
    kind:
        The dominating fault kind (the first failure drawn, or
        ``latency-spike``/``none`` for clean reads).
    attempts:
        Total read attempts consumed (``1`` for a clean first read, up
        to ``max_retries + 1``).
    extra_io_s:
        Simulated seconds to charge *in addition to* the normal read on
        success (failed attempts, backoff delays, spike latency); on a
        skip this is the *total* I/O charge (the normal read never
        completed).
    spiked:
        True when the successful attempt carried a latency spike.
    """

    ok: bool
    kind: str
    attempts: int
    extra_io_s: float
    spiked: bool

    @property
    def retries(self) -> int:
        """Attempts beyond the first (0 when no read was ever attempted,
        e.g. a chunk skipped by an open circuit breaker)."""
        return max(0, self.attempts - 1)

    @property
    def faulted(self) -> bool:
        """True when any fault (failure or spike) touched this access."""
        return self.kind != FAULT_NONE


#: The clean outcome shared by every un-faulted access (also the fast
#: path for null plans, keeping zero-rate runs bit-identical and cheap).
OK_OUTCOME = ChunkFaultOutcome(
    ok=True, kind=FAULT_NONE, attempts=1, extra_io_s=0.0, spiked=False
)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Seeded, rate-parameterised fault model.

    Parameters
    ----------
    seed:
        Non-negative root seed; together with ``(query_id, chunk_id)``
        it fully determines every decision.
    read_error_rate, corrupt_rate, truncate_rate:
        Per-(query, chunk) probabilities of each failure kind.
    spike_rate:
        Probability that an otherwise-clean read carries a latency spike.
    spike_s:
        Extra simulated seconds charged by one spike.
    max_retries:
        Failed attempts are retried up to this many times before the
        chunk is skipped.
    backoff_s, backoff_multiplier:
        Exponential backoff: the delay charged before retry ``r``
        (0-based) is ``backoff_s * backoff_multiplier ** r``.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    spike_rate: float = 0.0
    spike_s: float = 0.050
    max_retries: int = 2
    backoff_s: float = 0.010
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        rates = (
            self.read_error_rate,
            self.corrupt_rate,
            self.truncate_rate,
            self.spike_rate,
        )
        if any(r < 0.0 or r > 1.0 or r != r for r in rates):
            raise ValueError(f"fault rates must lie in [0, 1], got {rates}")
        if self.failure_rate + self.spike_rate > 1.0 + 1e-12:
            raise ValueError(
                "failure rates plus spike rate must not exceed 1 "
                f"(got {self.failure_rate + self.spike_rate:g})"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.spike_s < 0.0 or self.backoff_s < 0.0:
            raise ValueError("delays cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be at least 1")

    # -- derived properties --------------------------------------------------

    @property
    def failure_rate(self) -> float:
        """Total probability that a single attempt fails."""
        return self.read_error_rate + self.corrupt_rate + self.truncate_rate

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return self.failure_rate == 0.0 and self.spike_rate == 0.0

    @classmethod
    def balanced(cls, rate: float, seed: int, **overrides: Any) -> "FaultPlan":
        """A plan splitting ``rate`` evenly across the three failure
        kinds, with spikes occurring at the same ``rate``.

        This is the single-knob configuration the ``faultsim`` sweep
        uses for its quality-vs-fault-rate curves.
        """
        if rate < 0.0 or rate > 0.5:
            raise ValueError(
                f"balanced rate must lie in [0, 0.5], got {rate!r} "
                "(failures and spikes each occur at this rate)"
            )
        return cls(
            seed=seed,
            read_error_rate=rate / 3.0,
            corrupt_rate=rate / 3.0,
            truncate_rate=rate / 3.0,
            spike_rate=rate,
            **overrides,
        )

    # -- deterministic draws -------------------------------------------------

    # repro: exact
    def uniforms(self, stream: int, a: int, b: int, n: int) -> np.ndarray:
        """``n`` uniforms in [0, 1) (float64) for one keyed decision site.

        The key is ``(seed, stream, a, b)``; results are independent of
        call order and of every other key — the property that lets the
        chunk-major batch engine reproduce the sequential searcher's
        faults exactly.
        """
        ss = np.random.SeedSequence(entropy=(self.seed, stream, a, b))
        words = ss.generate_state(n, dtype=np.uint64)
        return np.asarray(words, dtype=np.float64) * 2.0**-64

    def _classify(self, u: float) -> str:
        edge = self.read_error_rate
        if u < edge:
            return FAULT_READ_ERROR
        edge += self.corrupt_rate
        if u < edge:
            return FAULT_CORRUPT
        edge += self.truncate_rate
        if u < edge:
            return FAULT_TRUNCATE
        edge += self.spike_rate
        if u < edge:
            return FAULT_SPIKE
        return FAULT_NONE

    # repro: exact
    def page_fault(self, page: int) -> Tuple[str, int]:
        """Byte-level decision for one disk page: ``(kind, detail)``.

        ``detail`` is a deterministic auxiliary draw (bit position for
        ``corrupt``, cut fraction in 1/65536ths for ``truncate``; 0
        otherwise).  Used by the storage-level
        :class:`~repro.faults.injector.FaultyFile` wrapper.
        """
        us = self.uniforms(_STREAM_PAGE, int(page), 0, 2)
        kind = self._classify(float(us[0]))
        detail = int(us[1] * 65536.0)
        return kind, detail

    def backoff_delay_s(self, retry_index: int) -> float:
        """Backoff charged before 0-based retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError("retry index cannot be negative")
        return self.backoff_s * self.backoff_multiplier**retry_index

    # -- the degraded-execution contract -------------------------------------

    # repro: exact
    def chunk_outcome(
        self,
        query_id: int,
        chunk_id: int,
        attempt_io_s: float,
        readable: bool = True,
    ) -> ChunkFaultOutcome:
        """Resolve the fault behaviour of one ``(query, chunk)`` access.

        Parameters
        ----------
        query_id, chunk_id:
            The decision key (must be non-negative).
        attempt_io_s:
            Simulated cost of one (uncached) read attempt of this chunk
            — failed attempts are charged at this rate.
        readable:
            Pass False when a *real* read of the chunk already failed
            (e.g. an actual :class:`~repro.storage.errors.CorruptFileError`):
            real damage is treated as persistent, so every attempt fails
            and the chunk is skipped with all retries charged.
        """
        if attempt_io_s < 0.0:
            raise ValueError("attempt cost cannot be negative")
        budget = self.max_retries + 1
        if not readable:
            extra = budget * attempt_io_s
            for retry in range(budget - 1):
                extra += self.backoff_delay_s(retry)
            return ChunkFaultOutcome(
                ok=False,
                kind=FAULT_CORRUPT,
                attempts=budget,
                extra_io_s=extra,
                spiked=False,
            )
        if self.is_null:
            return OK_OUTCOME
        us = self.uniforms(_STREAM_CHUNK, int(query_id), int(chunk_id), budget)
        extra = 0.0
        kind = FAULT_NONE
        persistent = False
        for attempt in range(budget):
            drawn = kind if persistent else self._classify(float(us[attempt]))
            if drawn in _PERSISTENT_KINDS:
                persistent = True
            if kind == FAULT_NONE and drawn in FAILURE_KINDS:
                kind = drawn
            if persistent or drawn == FAULT_READ_ERROR:
                # Failed attempt: the read is paid in full, plus a
                # backoff delay when a retry follows.
                extra += attempt_io_s
                if attempt < budget - 1:
                    extra += self.backoff_delay_s(attempt)
                continue
            spiked = drawn == FAULT_SPIKE
            if spiked:
                extra += self.spike_s
                if kind == FAULT_NONE:
                    kind = FAULT_SPIKE
            return ChunkFaultOutcome(
                ok=True,
                kind=kind,
                attempts=attempt + 1,
                extra_io_s=extra,
                spiked=spiked,
            )
        return ChunkFaultOutcome(
            ok=False, kind=kind, attempts=budget, extra_io_s=extra, spiked=False
        )
