"""Multi-server queueing timeline: worker assignment and wait accounting.

The query service admits an open-loop arrival stream into a pool of
identical workers.  :class:`WorkerPool` is the simulated-time substrate
for that pool: it tracks when each worker next becomes free, assigns
work to the earliest-free worker (FIFO across assignments, deterministic
tie-break by worker id), and accounts for the two quantities the service
reports — per-request queueing wait and aggregate worker busy time.

Nothing here knows about searches or requests; durations are opaque
simulated seconds, which keeps the module reusable (and importable) from
any layer that owns a notion of work.  Tavenard/Amsaleg/Jégou's point
about response-time *variability* is exactly a statement about the wait
component this class isolates: with skewed service times, the queue —
not the mean — drives the tail.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

__all__ = ["WorkerPool"]


class WorkerPool:
    """Earliest-free-worker assignment over ``n_workers`` identical servers.

    The pool is a deterministic min-heap of ``(free_time, worker_id)``
    pairs: :meth:`assign` always hands work to the worker that frees up
    first, breaking ties by the smaller worker id, so a given sequence
    of ``(now, duration)`` calls always produces the same schedule.
    """

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self._free: List[Tuple[float, int]] = [
            (0.0, worker) for worker in range(n_workers)
        ]
        heapq.heapify(self._free)
        self.n_workers = int(n_workers)
        #: Total simulated seconds workers spent serving assignments.
        self.busy_s = 0.0
        #: Total simulated seconds assignments waited for a free worker
        #: beyond their hand-off time (the queueing wait the service adds
        #: on top of pure service time).
        self.total_wait_s = 0.0
        #: Assignments made so far.
        self.n_assigned = 0

    # -- introspection -------------------------------------------------------

    def earliest_start(self, now: float) -> float:
        """Earliest time work handed over at ``now`` could begin."""
        return max(now, self._free[0][0])

    def idle_workers(self, now: float) -> int:
        """Workers free at ``now`` (i.e. whose last assignment finished)."""
        return sum(1 for free_time, _ in self._free if free_time <= now)

    def free_times(self) -> List[float]:
        """Sorted copy of each worker's next-free timestamp.

        Admission control replays this against estimated service times to
        predict when a newly queued request would start.
        """
        return sorted(free_time for free_time, _ in self._free)

    def utilization(self, horizon_s: float) -> float:
        """Busy fraction of total worker-seconds over ``[0, horizon_s]``."""
        if horizon_s <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        return self.busy_s / (self.n_workers * horizon_s)

    # -- assignment ----------------------------------------------------------

    def assign(self, now: float, duration_s: float) -> Tuple[int, float, float]:
        """Hand one unit of work to the earliest-free worker.

        Parameters
        ----------
        now:
            Simulated time at which the work becomes available (its
            arrival at the head of the queue).
        duration_s:
            Service duration in simulated seconds.

        Returns ``(worker_id, start_s, finish_s)`` where
        ``start_s = max(now, worker free time)``; the difference
        ``start_s - now`` is accumulated into :attr:`total_wait_s`.
        """
        if duration_s < 0.0:
            raise ValueError(f"duration cannot be negative, got {duration_s}")
        free_time, worker = heapq.heappop(self._free)
        start = max(now, free_time)
        finish = start + duration_s
        heapq.heappush(self._free, (finish, worker))
        self.busy_s += duration_s
        self.total_wait_s += start - now
        self.n_assigned += 1
        return worker, start, finish

    # -- cancellation --------------------------------------------------------

    def truncate(
        self, worker: int, at_s: float, expected_free_s: float
    ) -> float:
        """Cut ``worker``'s current occupancy short at ``at_s``.

        First-wins hedging needs to *reclaim* a loser's remaining
        occupancy: when the duplicate of a hedged pair answers first,
        the other copy's worker should stop burning simulated time.
        The caller identifies the assignment being cancelled by its
        scheduled finish time (``expected_free_s``, the value
        :meth:`assign` returned); if the worker has since been handed
        further work its free time no longer matches and the truncation
        is declined — already-scheduled work is never rewritten, only
        unconsumed capacity is returned.

        Returns the simulated seconds reclaimed (0.0 when declined).
        The reclaimed span is also credited back out of :attr:`busy_s`,
        so utilization reflects work actually performed.
        """
        if at_s < 0.0:
            raise ValueError(f"truncation time cannot be negative, got {at_s}")
        for slot, (free_time, worker_id) in enumerate(self._free):
            if worker_id != worker:
                continue
            if free_time != expected_free_s or at_s >= free_time:
                return 0.0
            self._free[slot] = (at_s, worker_id)
            heapq.heapify(self._free)
            freed = free_time - at_s
            self.busy_s -= freed
            return freed
        raise ValueError(f"unknown worker {worker}")
