"""I/O-CPU pipeline simulation.

The paper's central systems argument (section 1.1): the response time of an
approximate search "is primarily determined by the CPU cost of processing
the descriptors of the chunks ... it can potentially be overlapped with I/O
cost.  As a result, the way to guarantee minimal query processing cost is
to produce uniformly sized chunks, to balance the I/O and CPU cost of the
search."

:class:`PipelineSimulator` models the per-query timeline:

1. the chunk index is read sequentially and the chunks are ranked
   (:meth:`start_query`), then
2. chunks are fetched and processed in rank order.  With double buffering
   the disk prefetches chunk ``i+1`` while the CPU processes chunk ``i``;
   the read of chunk ``i+1`` may start once the read of ``i`` finished and
   the buffer that held chunk ``i-1`` has been drained.

Recurrences (``R`` = read completion, ``C`` = processing completion)::

    R[i] = max(R[i-1], C[i-2]) + io[i]      (double buffering)
    C[i] = max(R[i], C[i-1]) + cpu[i]

With overlap disabled the timeline is strictly serial::

    C[i] = C[i-1] + io[i] + cpu[i]

A single chunk's results become visible only at ``C[i]`` — "a single chunk
is the natural granule of the search algorithm" — which is exactly why one
huge BAG chunk stalls quality delivery in Figure 4.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from .cache import LruPageCache, cached_read_time_s
from .chunk_cache import LruChunkCache, chunk_read_time_s
from .cpu_model import CpuModel
from .disk_model import DiskModel

__all__ = ["CostModel", "PipelineSimulator"]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Bundle of the disk and CPU models plus the overlap policy.

    ``overlap_io_cpu=True`` is the paper's assumed execution model;
    switching it off is the ablation `bench_ablation_overlap`.

    ``cache``, when set, is a shared :class:`LruPageCache` through which
    chunk reads are charged — cache state persists across queries, which
    is the buffering effect the paper's round-robin protocol eliminates.
    The model stays frozen; only the cache object carries state.

    ``chunk_cache``, when set, is a shared
    :class:`~repro.simio.chunk_cache.LruChunkCache` charging whole-chunk
    reads: cold reads at the full random-read price, warm hits at a
    memory-copy rate.  It is mutually exclusive with ``cache`` — the two
    model the same bytes at different granularities, and stacking them
    would double-count hits.
    """

    disk: DiskModel = dataclasses.field(default_factory=DiskModel)
    cpu: CpuModel = dataclasses.field(default_factory=CpuModel)
    overlap_io_cpu: bool = True
    cache: Optional[LruPageCache] = None
    chunk_cache: Optional[LruChunkCache] = None

    def __post_init__(self) -> None:
        if self.cache is not None and self.chunk_cache is not None:
            raise ValueError(
                "a cost model takes a page cache or a chunk cache, not both"
            )

    def simulator(self) -> "PipelineSimulator":
        """A fresh per-query timeline simulator."""
        return PipelineSimulator(self)


class PipelineSimulator:
    """Per-query timeline: schedules chunk reads/processing, yields
    absolute completion timestamps."""

    def __init__(self, model: CostModel):
        self._model = model
        self._started = False
        # Absolute completion times of past reads / processing steps.
        self._read_done: List[float] = []
        self._proc_done: List[float] = []
        self._start_time = 0.0

    @property
    def model(self) -> CostModel:
        return self._model

    def start_query(self, n_chunks: int, index_bytes: int) -> float:
        """Account for the index read + global ranking; returns the
        timestamp at which the first chunk read may begin.

        The paper measures this prefix at roughly 50 ms for its index files
        (section 5.5, footnote 3).
        """
        if self._started:
            raise RuntimeError("start_query may only be called once per simulator")
        self._started = True
        t = self._model.disk.sequential_read_time_s(index_bytes)
        t += self._model.cpu.ranking_time_s(n_chunks)
        self._start_time = t
        return t

    def process_chunk(
        self,
        page_count: int,
        n_descriptors: int,
        page_offset: Optional[int] = None,
        extra_io_s: float = 0.0,
    ) -> float:
        """Schedule the next ranked chunk; returns its processing-completion
        timestamp (when its neighbors become visible).

        ``page_offset`` only matters when the cost model carries a buffer
        cache: reads are then charged through it per missing page.

        ``extra_io_s`` is added to the chunk's I/O charge — degraded
        execution uses it for failed read attempts, backoff delays and
        latency spikes that preceded the successful read.
        """
        if not self._started:
            raise RuntimeError("start_query must run before chunks are processed")
        if extra_io_s < 0.0:
            raise ValueError("extra I/O charge cannot be negative")
        if self._model.cache is not None and page_offset is not None:
            io, _ = cached_read_time_s(
                self._model.disk, self._model.cache, page_offset, page_count
            )
        elif self._model.chunk_cache is not None and page_offset is not None:
            io, _ = chunk_read_time_s(
                self._model.disk, self._model.chunk_cache, page_offset, page_count
            )
        else:
            io = self._model.disk.random_read_time_s(page_count)
        if extra_io_s:
            io += extra_io_s
        cpu = self._model.cpu.chunk_processing_time_s(n_descriptors)
        i = len(self._proc_done)
        if self._model.overlap_io_cpu:
            prev_read = self._read_done[i - 1] if i >= 1 else self._start_time
            drained = self._proc_done[i - 2] if i >= 2 else self._start_time
            read_done = max(prev_read, drained) + io
            prev_proc = self._proc_done[i - 1] if i >= 1 else self._start_time
            proc_done = max(read_done, prev_proc) + cpu
        else:
            prev_proc = self._proc_done[i - 1] if i >= 1 else self._start_time
            read_done = prev_proc + io
            proc_done = read_done + cpu
        self._read_done.append(read_done)
        self._proc_done.append(proc_done)
        return proc_done

    def skip_chunk(self, io_s: float) -> float:
        """Schedule a chunk that was *abandoned* after failed read attempts.

        The chunk occupies the disk for ``io_s`` simulated seconds (every
        failed attempt plus backoff — the full price computed by the
        fault plan) but contributes no CPU work: nothing was decoded, so
        there is nothing to scan.  Returns the timestamp at which the
        search moves on.
        """
        if not self._started:
            raise RuntimeError("start_query must run before chunks are processed")
        if io_s < 0.0:
            raise ValueError("skip I/O charge cannot be negative")
        i = len(self._proc_done)
        if self._model.overlap_io_cpu:
            prev_read = self._read_done[i - 1] if i >= 1 else self._start_time
            drained = self._proc_done[i - 2] if i >= 2 else self._start_time
            read_done = max(prev_read, drained) + io_s
            prev_proc = self._proc_done[i - 1] if i >= 1 else self._start_time
            proc_done = max(read_done, prev_proc)
        else:
            prev_proc = self._proc_done[i - 1] if i >= 1 else self._start_time
            read_done = prev_proc + io_s
            proc_done = read_done
        self._read_done.append(read_done)
        self._proc_done.append(proc_done)
        return proc_done

    @property
    def chunks_processed(self) -> int:
        return len(self._proc_done)

    @property
    def elapsed(self) -> float:
        """Timestamp of the latest completed event."""
        if self._proc_done:
            return self._proc_done[-1]
        return self._start_time if self._started else 0.0
