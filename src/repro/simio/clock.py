"""Clocks.

Search timing can run against either a :class:`SimulatedClock` (advanced
explicitly by the cost models — deterministic, hardware-independent) or a
:class:`WallClock` (real ``perf_counter`` time — used for sanity checks of
the simulation and for pytest-benchmark runs).

Both expose the same two-method protocol, so the search code is agnostic.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "SimulatedClock", "WallClock"]


class Clock(Protocol):
    """Minimal clock protocol used by the search."""

    def now(self) -> float:
        """Current time in seconds."""
        ...  # pragma: no cover - protocol stub

    def advance(self, seconds: float) -> None:
        """Account for ``seconds`` of simulated work (no-op on wall clocks)."""
        ...  # pragma: no cover - protocol stub


class SimulatedClock:
    """A clock that moves only when told to.

    Time never goes backwards; ``advance`` with a negative delta is a
    programming error and raises.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("simulated time starts at or after zero")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to an absolute timestamp (used by the pipeline
        simulator, whose completion times are absolute)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move simulated time backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)


class WallClock:
    """Real elapsed time relative to construction."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._start

    def advance(self, seconds: float) -> None:
        """Wall time advances on its own; simulated work is ignored."""
