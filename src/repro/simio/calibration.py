"""Calibration of the simulated hardware against the paper's numbers.

The paper reports (sections 5.4-5.5), on a 2.8 GHz Pentium 4 with a 40 GB
ATA disk:

=====================================================  ==================
Observation                                            Paper value
=====================================================  ==================
Read + process one SR-tree chunk                       ~10 ms
Process the largest BAG chunk (~1M descriptors)        ~1.8 s
Read the chunk index (sequential)                      ~50 ms
Completion, SR-tree, DQ, SMALL/MEDIUM/LARGE (Table 2)  45.0 / 31.3 / 25.2 s
=====================================================  ==================

Parameter choices
-----------------
* ``distance_time_s = 1.8e-6`` pins the giant-chunk observation exactly
  (1e6 descriptors -> 1.8 s of CPU).
* ``seek_time_s = 3 ms`` models the *short* seeks of a ranked chunk scan
  (successive chunks are nearby file regions, not full-stroke seeks);
  with 4.2 ms rotational latency and 40 MB/s transfer this reproduces the
  whole SR-tree column of Table 2 to within ~2 %:

  - SMALL:  4,747 chunks x max(io 9.6 ms, cpu 1.8 ms)  = 45.6 s (paper 45.0)
  - MEDIUM: 2,672 chunks x max(io 11.5 ms, cpu 3.2 ms) = 30.7 s (paper 31.3)
  - LARGE:  1,863 chunks x max(io 13.4 ms, cpu 4.6 ms) = 25.0 s (paper 25.2)

:func:`verify_calibration` recomputes the anchor observations and is
asserted by the test suite, so any drift in the cost models breaks loudly.
"""

from __future__ import annotations

from typing import Dict

from ..storage.pages import DEFAULT_PAGE_BYTES
from .cpu_model import CpuModel
from .disk_model import DiskModel
from .pipeline import CostModel

__all__ = ["PAPER_2005_COST_MODEL", "verify_calibration"]

#: Bytes per descriptor record in the paper's layout.
_RECORD_BYTES = 100

#: The cost model used by every experiment unless overridden.
PAPER_2005_COST_MODEL = CostModel(
    disk=DiskModel(
        seek_time_s=3.0e-3,
        rotational_latency_s=4.2e-3,
        transfer_rate_bytes_per_s=40e6,
        page_bytes=DEFAULT_PAGE_BYTES,
    ),
    cpu=CpuModel(
        distance_time_s=1.8e-6,
        chunk_overhead_s=0.1e-3,
        ranking_time_per_chunk_s=2.5e-6,
    ),
    overlap_io_cpu=True,
)


def _pages_for(n_bytes: int, page_bytes: int) -> int:
    return -(-n_bytes // page_bytes)


def verify_calibration(model: CostModel = PAPER_2005_COST_MODEL) -> Dict[str, float]:
    """Recompute the paper's anchor observations under ``model``.

    Returns the predicted values keyed by observation name; the test suite
    asserts each against the paper's figure with a tolerance.
    """
    disk, cpu = model.disk, model.cpu
    predictions: Dict[str, float] = {}

    # 1. One typical SR-tree chunk read+process (paper: "about 10 ms").
    #    Table 1 SMALL: 942 descriptors per chunk.
    small_pages = _pages_for(942 * _RECORD_BYTES, disk.page_bytes)
    predictions["sr_chunk_read_and_process_s"] = disk.random_read_time_s(
        small_pages
    ) + cpu.chunk_processing_time_s(942)

    # 2. CPU on the largest BAG chunk (paper: "as much as 1.8 seconds").
    predictions["giant_bag_chunk_cpu_s"] = cpu.chunk_processing_time_s(1_000_000)

    # 3. Sequential read of the MEDIUM index file (paper: ~50 ms):
    #    2,685 entries, 216 bytes each under our index layout, plus the
    #    ranking pass over the entries.
    index_bytes = 2685 * 216
    predictions["index_read_s"] = disk.sequential_read_time_s(
        index_bytes
    ) + cpu.ranking_time_s(2685)

    # 4. Table 2, SR-tree column, DQ workload: a completion run reads
    #    essentially every chunk; with overlap each chunk costs
    #    max(io, cpu).
    for name, n_chunks, per_chunk in [
        ("table2_sr_small_s", 4747, 942),
        ("table2_sr_medium_s", 2672, 1719),
        ("table2_sr_large_s", 1863, 2497),
    ]:
        pages = _pages_for(per_chunk * _RECORD_BYTES, disk.page_bytes)
        io = disk.random_read_time_s(pages)
        cpu_t = cpu.chunk_processing_time_s(per_chunk)
        predictions[name] = n_chunks * max(io, cpu_t)

    return predictions
