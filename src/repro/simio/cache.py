"""Simulated buffer cache.

The paper's measurement protocol runs each query "once to each chunk-index
in a round-robin fashion (to eliminate buffering effects)" (section 5.4).
That sentence implies a buffer cache existed and mattered; this module
makes the effect simulable:

* :class:`LruPageCache` — a page-granular LRU cache of bounded size;
* a :class:`~repro.simio.pipeline.CostModel` carrying a cache charges a
  chunk read only for its *missing* pages (and skips positioning entirely
  on a full hit), with the cache state persisting across queries against
  the same index — exactly the buffering the round-robin order defeats.

The cache-effects ablation (`bench_ablation_cache`) quantifies how much a
warm cache distorts repeated-query timings, validating the paper's
protocol choice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from .disk_model import DiskModel

__all__ = ["LruPageCache", "cached_read_time_s"]


class LruPageCache:
    """Bounded LRU cache over disk page numbers."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("cache needs capacity for at least one page")
        self.capacity_pages = int(capacity_pages)
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return int(page) in self._pages

    def touch(self, page: int) -> bool:
        """Access one page; returns True on a hit.  Misses insert the page
        (evicting the least recently used one if full)."""
        page = int(page)
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return False

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# repro: exact
def cached_read_time_s(
    disk: DiskModel,
    cache: LruPageCache,
    page_offset: int,
    page_count: int,
) -> Tuple[float, int]:
    """Time to read a page extent through the cache.

    Positioning is paid once if *any* page misses; transfer is paid per
    missing page.  Returns ``(seconds, pages_missed)``.
    """
    if page_count < 1:
        raise ValueError("a read covers at least one page")
    missed = 0
    for page in range(page_offset, page_offset + page_count):
        if not cache.touch(page):
            missed += 1
    if missed == 0:
        return 0.0, 0
    return (
        disk.positioning_time_s + disk.transfer_time_s(missed * disk.page_bytes),
        missed,
    )
