"""Simulated CPU cost of distance processing.

The paper's CPU observations on a 2.8 GHz Pentium 4:

* reading **and** processing a typical SR-tree chunk of ~1,700 descriptors
  takes about 10 ms (section 5.5), and
* processing the largest BAG chunk (~1 million descriptors) takes about
  1.8 s,

which pins the marginal CPU cost near 1.8 microseconds per 24-d Euclidean
distance evaluation plus neighbor-set maintenance.  The model charges a
linear cost per descriptor scanned and a small fixed overhead per chunk
(dispatch, buffer management).
"""

from __future__ import annotations

import dataclasses

__all__ = ["CpuModel"]


@dataclasses.dataclass(frozen=True)
class CpuModel:
    """Linear CPU cost model for chunk processing.

    Parameters
    ----------
    distance_time_s:
        Cost of computing one query-descriptor distance and offering the
        result to the neighbor set.
    chunk_overhead_s:
        Fixed per-chunk cost (loop setup, result bookkeeping).
    ranking_time_per_chunk_s:
        Cost per chunk of the global centroid ranking performed once at
        query start (distance to every centroid plus the sort share).
    """

    distance_time_s: float = 1.8e-6
    chunk_overhead_s: float = 0.1e-3
    ranking_time_per_chunk_s: float = 2.5e-6

    def __post_init__(self) -> None:
        if min(self.distance_time_s, self.chunk_overhead_s, self.ranking_time_per_chunk_s) < 0:
            raise ValueError("CPU costs cannot be negative")

    def chunk_processing_time_s(self, n_descriptors: int) -> float:
        """CPU time to scan one chunk of ``n_descriptors``."""
        if n_descriptors < 0:
            raise ValueError("descriptor count cannot be negative")
        return self.chunk_overhead_s + n_descriptors * self.distance_time_s

    def ranking_time_s(self, n_chunks: int) -> float:
        """CPU time of the global chunk ranking at query start."""
        if n_chunks < 0:
            raise ValueError("chunk count cannot be negative")
        return n_chunks * self.ranking_time_per_chunk_s
