"""Simulated cross-query chunk cache.

The page cache in :mod:`repro.simio.cache` models the *operating system's*
buffer cache at page granularity.  This module models the *application's*
chunk cache: a retrieval service keeps recently read chunks — whole
``(ids, vectors)`` payloads, not pages — in a bounded pool shared by every
worker of its :class:`~repro.simio.queueing.WorkerPool`, so a chunk that is
hot across the query stream is fetched from disk once and served from
memory afterwards.

Cost semantics (:func:`chunk_read_time_s`):

* a **cold** read is charged the full random-read price of the chunk's
  page extent, exactly as an uncached read would be;
* a **warm** hit is charged a memory-copy of the same bytes at
  ``memcpy_bytes_per_s`` — orders of magnitude cheaper, never free, so
  cached timings remain strictly ordered and comparable.

The hit/miss sequence is a pure function of the touch order (bounded LRU,
deterministic eviction), which preserves the PR-1–4 determinism contract:
two runs with the same seed and the same query order produce byte-identical
reports.  ``seed`` does not randomize anything — it is recorded so a report
can pin the workload that warmed the cache.

Like every simulated-layer module, this file must never read the wall
clock; host-side payload storage (:meth:`LruChunkCache.attach`) affects
only how fast the host finishes, never a simulated timestamp.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from .disk_model import DiskModel

__all__ = ["LruChunkCache", "chunk_read_time_s", "DEFAULT_MEMCPY_BYTES_PER_S"]

#: Default warm-hit bandwidth: ~1 GB/s, a conservative memory-copy rate for
#: the paper's 2005-era hardware (DDR-333 streams faster, but the copy
#: shares the bus with the scan itself).
DEFAULT_MEMCPY_BYTES_PER_S = 1.0e9


class _Entry:
    """One resident chunk: its size and (optionally) its contents."""

    __slots__ = ("nbytes", "payload")

    def __init__(self, nbytes: int):
        self.nbytes = nbytes
        self.payload: Optional[object] = None


class LruChunkCache:
    """Bounded LRU cache of whole chunks, keyed by chunk-file page offset.

    Parameters
    ----------
    capacity_bytes:
        Total simulated bytes the cache may hold; entries are evicted in
        LRU order once an insertion exceeds it.  A chunk larger than the
        whole capacity is charged as a miss but never retained.
    memcpy_bytes_per_s:
        Bandwidth at which a warm hit is charged (simulated memory copy).
    seed:
        Seed of the workload that warmed the cache, recorded in
        :meth:`stats` for report provenance; the cache itself is
        deterministic regardless.

    The page offset is the key because it uniquely locates a chunk within
    one chunk file (extents never overlap), and it is the datum the
    pipeline simulator already receives per read.
    """

    def __init__(
        self,
        capacity_bytes: int,
        memcpy_bytes_per_s: float = DEFAULT_MEMCPY_BYTES_PER_S,
        seed: int = 0,
    ):
        if capacity_bytes < 1:
            raise ValueError("chunk cache needs a positive byte capacity")
        if memcpy_bytes_per_s <= 0.0:
            raise ValueError("memory-copy bandwidth must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.memcpy_bytes_per_s = float(memcpy_bytes_per_s)
        self.seed = int(seed)
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._entries

    def touch(self, key: int, nbytes: int) -> bool:
        """Access one chunk; returns True on a hit.

        A miss inserts the chunk (size ``nbytes``) and evicts least
        recently used entries until the capacity holds again.
        """
        key = int(key)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if nbytes < 0:
            raise ValueError("chunk size cannot be negative")
        entry = _Entry(int(nbytes))
        self._entries[key] = entry
        self.used_bytes += entry.nbytes
        while self.used_bytes > self.capacity_bytes and self._entries:
            victim_key, victim = self._entries.popitem(last=False)
            self.used_bytes -= victim.nbytes
            self.evictions += 1
            if victim_key == key:
                # The new chunk itself exceeded the capacity: charged as a
                # miss, not retained.
                break
        return False

    def peek_payload(self, key: int) -> Optional[object]:
        """Contents attached to a resident chunk, without touching LRU
        state (``None`` when absent or never attached)."""
        entry = self._entries.get(int(key))
        return entry.payload if entry is not None else None

    def attach(self, key: int, payload: object) -> bool:
        """Attach host-side contents to a *resident* chunk.

        Returns False (no-op) when the chunk is not resident, so payloads
        can never outlive their simulated residency.  The payload is
        opaque to the cache; engines store the promoted ``(ids, vectors)``
        pair so sequential and batch searchers share one representation.
        """
        entry = self._entries.get(int(key))
        if entry is None:
            return False
        entry.payload = payload
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> "dict[str, object]":
        """JSON-ready counters (deterministic under a fixed touch order)."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "used_bytes": self.used_bytes,
            "resident_chunks": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "memcpy_bytes_per_s": self.memcpy_bytes_per_s,
            "seed": self.seed,
        }


# repro: exact
def chunk_read_time_s(
    disk: DiskModel,
    cache: LruChunkCache,
    page_offset: int,
    page_count: int,
) -> Tuple[float, bool]:
    """Time to read one chunk through the chunk cache.

    A warm hit copies the chunk's bytes from memory; a cold miss pays the
    disk model's full random-read price (positioning + transfer) and
    inserts the chunk.  Returns ``(seconds, hit)``.
    """
    if page_count < 1:
        raise ValueError("a read covers at least one page")
    nbytes = page_count * disk.page_bytes
    if cache.touch(page_offset, nbytes):
        return nbytes / cache.memcpy_bytes_per_s, True
    return disk.random_read_time_s(page_count), False
