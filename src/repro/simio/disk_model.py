"""Simulated disk.

The paper ran on a 40 GB ATA disk (circa 2004).  The experiments' elapsed
times are a function of three disk behaviours the model captures:

* a positioning cost (seek + rotational latency) paid once per random
  chunk access,
* a sequential transfer rate paid per page moved, and
* a cheaper sequential pattern for the index file, which is read front to
  back at query start (the paper measures this at ~50 ms).

The model is deterministic: identical access sequences cost identical
simulated time, which is what makes the elapsed-time figures (4-7)
reproducible to the digit.
"""

from __future__ import annotations

import dataclasses

from ..storage.pages import DEFAULT_PAGE_BYTES

__all__ = ["DiskModel"]


@dataclasses.dataclass(frozen=True)
class DiskModel:
    """Cost model of a single rotating disk.

    Parameters
    ----------
    seek_time_s:
        Average head positioning time for a random access.
    rotational_latency_s:
        Average rotational delay (half a revolution).
    transfer_rate_bytes_per_s:
        Sustained sequential transfer rate.
    page_bytes:
        Disk page size; chunk reads are charged per page.
    """

    seek_time_s: float = 8.5e-3
    rotational_latency_s: float = 4.2e-3
    transfer_rate_bytes_per_s: float = 40e6
    page_bytes: int = DEFAULT_PAGE_BYTES

    def __post_init__(self) -> None:
        if self.seek_time_s < 0 or self.rotational_latency_s < 0:
            raise ValueError("latencies cannot be negative")
        if self.transfer_rate_bytes_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        if self.page_bytes <= 0:
            raise ValueError("page size must be positive")

    @property
    def positioning_time_s(self) -> float:
        """Seek plus rotational latency — paid once per random access."""
        return self.seek_time_s + self.rotational_latency_s

    def transfer_time_s(self, n_bytes: int) -> float:
        """Pure sequential transfer time for ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return n_bytes / self.transfer_rate_bytes_per_s

    def random_read_time_s(self, page_count: int) -> float:
        """One random access of ``page_count`` contiguous pages.

        This is the per-chunk I/O cost: position once, then stream the
        chunk's pages.
        """
        if page_count <= 0:
            raise ValueError("a read covers at least one page")
        return self.positioning_time_s + self.transfer_time_s(
            page_count * self.page_bytes
        )

    def sequential_read_time_s(self, n_bytes: int) -> float:
        """A front-to-back file read: one positioning, then streaming.

        Used for the chunk-index read at query start and for the
        sequential-scan ground truth baseline.
        """
        if n_bytes < 0:
            raise ValueError("cannot read a negative byte count")
        return self.positioning_time_s + self.transfer_time_s(n_bytes)

    def sequential_write_time_s(self, n_bytes: int) -> float:
        """A sequential write (append or file rewrite): position, stream.

        The 2004-era disk writes at its sustained transfer rate once the
        head is positioned, so the model mirrors
        :meth:`sequential_read_time_s`.  Streaming-ingest mutations (WAL
        appends, delta segments, base rebuilds, manifests) are charged
        through this path.
        """
        if n_bytes < 0:
            raise ValueError("cannot write a negative byte count")
        return self.positioning_time_s + self.transfer_time_s(n_bytes)

    @property
    def sync_time_s(self) -> float:
        """Cost of one durability barrier (``fsync``).

        Modeled as a seek plus a full platter revolution (twice the
        average rotational latency): the head must reach the track and
        the sector must pass under it before the barrier completes.
        Charged once per WAL group commit and once per published file.
        """
        return self.seek_time_s + 2.0 * self.rotational_latency_s
