"""Simulated I/O and CPU substrate.

The paper's elapsed-time results were measured on 2004 hardware (2.8 GHz
Pentium 4, 40 GB ATA disk).  A Python reproduction cannot faithfully
re-measure that machine's I/O-CPU overlap, so this package replaces the
hardware with a deterministic, calibrated cost model:

* :class:`~repro.simio.disk_model.DiskModel` — positioning + per-page
  transfer costs;
* :class:`~repro.simio.cpu_model.CpuModel` — per-distance and per-chunk CPU
  costs;
* :class:`~repro.simio.pipeline.PipelineSimulator` — the double-buffered
  I/O-CPU overlap timeline of a ranked chunk scan;
* :mod:`~repro.simio.calibration` — parameters pinned to the paper's
  reported timings (Table 2 reproduces to within ~2 %).

:mod:`~repro.simio.clock` also provides a wall clock so the same search
code can be timed for real when desired.
"""

from .cache import LruPageCache, cached_read_time_s
from .calibration import PAPER_2005_COST_MODEL, verify_calibration
from .chunk_cache import LruChunkCache, chunk_read_time_s
from .clock import Clock, SimulatedClock, WallClock
from .cpu_model import CpuModel
from .disk_model import DiskModel
from .pipeline import CostModel, PipelineSimulator
from .queueing import WorkerPool

__all__ = [
    "WorkerPool",
    "LruPageCache",
    "cached_read_time_s",
    "LruChunkCache",
    "chunk_read_time_s",
    "PAPER_2005_COST_MODEL",
    "verify_calibration",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "CpuModel",
    "DiskModel",
    "CostModel",
    "PipelineSimulator",
]
