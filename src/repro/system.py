"""End-to-end content-based image retrieval system.

The paper is one study inside the Eff² project, whose deliverable was an
image retrieval system prototype (its reference [13]).  This module is
that system tier: a single object tying together everything the library
provides — descriptor storage, chunk formation, the two-file index, the
approximate multi-descriptor search, incremental maintenance, and
persistence — behind the interface an application would actually use:

>>> system = ImageRetrievalSystem()
>>> system.index_images(collection)                    # offline build
>>> system.find_similar_images(query_descriptors)      # online queries
>>> system.add_image(image_id, new_descriptors)        # live updates
>>> system.save(directory); ImageRetrievalSystem.load(directory)
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from .chunking.base import Chunker
from .chunking.srtree_chunker import SRTreeChunker
from .core.batch_search import BatchChunkSearcher, BatchSearchResult
from .core.chunk_index import ChunkIndex, build_chunk_index
from .core.dataset import DescriptorCollection
from .core.maintenance import ChunkIndexMaintainer
from .core.search import ChunkSearcher, SearchResult
from .core.stop_rules import MaxChunks, StopRule
from .extensions.multi_descriptor import ImageMatch, MultiDescriptorSearcher
from .simio.calibration import PAPER_2005_COST_MODEL
from .simio.pipeline import CostModel

__all__ = ["ImageRetrievalSystem"]

_META_FILE = "system.json"
_MAPPING_FILE = "image_mapping.npz"


class ImageRetrievalSystem:
    """A complete approximate image-retrieval stack.

    Parameters
    ----------
    chunker:
        Chunk-forming strategy for the offline build; defaults to uniform
        SR-tree chunks (the paper's recommendation).
    cost_model:
        Simulated-hardware model used for search timing.
    default_stop_chunks:
        Default approximation budget (chunks per descriptor search) for
        image queries; ``None`` searches to exact completion.
    prune:
        Enable the triangle-inequality chunk pruner in the descriptor
        searchers (results are identical either way; pruning only skips
        provably fruitless host-side work).
    """

    def __init__(
        self,
        chunker: Optional[Chunker] = None,
        cost_model: CostModel = PAPER_2005_COST_MODEL,
        default_stop_chunks: Optional[int] = 4,
        prune: bool = True,
    ):
        if default_stop_chunks is not None and default_stop_chunks < 1:
            raise ValueError("stop budget must be positive (or None for exact)")
        self._configured_chunker = chunker
        self.cost_model = cost_model
        self.default_stop_chunks = default_stop_chunks
        self.prune = bool(prune)
        self._collection: Optional[DescriptorCollection] = None
        self._maintainer: Optional[ChunkIndexMaintainer] = None
        self._image_of_id: Dict[int, int] = {}
        self._next_descriptor_id = 0
        self._index: Optional[ChunkIndex] = None
        self._dirty = False

    # -- state helpers ----------------------------------------------------------

    @property
    def is_built(self) -> bool:
        return self._maintainer is not None

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("index images first (index_images or load)")

    def _default_chunker(self, n_descriptors: int) -> Chunker:
        # A pragmatic default: chunks of ~2 sqrt(n), capped to sane bounds.
        leaf = int(min(4096, max(16, 2 * np.sqrt(max(n_descriptors, 1)))))
        return SRTreeChunker(leaf_capacity=leaf)

    def _refresh(self) -> None:
        """Rebuild the searchable view after maintenance operations."""
        if self._dirty or self._index is None:
            self._index = self._maintainer.to_index(name="retrieval-system")
            ids_parts, vec_parts = [], []
            for chunk_id in range(self._index.n_chunks):
                ids, vectors = self._index.read_chunk(chunk_id)
                ids_parts.append(ids)
                vec_parts.append(vectors)
            all_ids = np.concatenate(ids_parts)
            all_vectors = np.vstack(vec_parts)
            image_ids = np.asarray(
                [self._image_of_id[int(i)] for i in all_ids], dtype=np.int64
            )
            self._collection = DescriptorCollection(
                vectors=all_vectors, ids=all_ids, image_ids=image_ids
            )
            self._dirty = False

    # -- build ----------------------------------------------------------------------

    def index_images(self, collection: DescriptorCollection) -> None:
        """Offline build over a descriptor collection (ids must be unique)."""
        if len(collection) == 0:
            raise ValueError("cannot index an empty collection")
        chunker = self._configured_chunker or self._default_chunker(len(collection))
        result = chunker.form_chunks(collection)
        index = build_chunk_index(
            result.retained, result.chunk_set, name="retrieval-system"
        )
        self._maintainer = ChunkIndexMaintainer(index)
        self._image_of_id = {
            int(i): int(img)
            for i, img in zip(result.retained.ids, result.retained.image_ids)
        }
        self._next_descriptor_id = int(collection.ids.max()) + 1
        self._dirty = True
        self._refresh()

    # -- queries ----------------------------------------------------------------------

    @property
    def n_descriptors(self) -> int:
        self._require_built()
        return len(self._maintainer)

    @property
    def n_images(self) -> int:
        self._require_built()
        return len(set(self._image_of_id.values()))

    def _stop_rule(self, exact: bool) -> Optional[StopRule]:
        if exact or self.default_stop_chunks is None:
            return None
        return MaxChunks(self.default_stop_chunks)

    def find_similar_descriptors(
        self, query: np.ndarray, k: int = 10, exact: bool = False
    ) -> SearchResult:
        """Descriptor-level k-NN search."""
        self._require_built()
        self._refresh()
        searcher = ChunkSearcher(
            self._index, cost_model=self.cost_model, prune=self.prune
        )
        return searcher.search(query, k=k, stop_rule=self._stop_rule(exact))

    def find_similar_descriptors_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        exact: bool = False,
        workers: int = 1,
        use_router: bool = False,
    ) -> BatchSearchResult:
        """Descriptor-level k-NN for a whole query batch at once.

        Runs the batch engine: chunk ranking is one vectorized pass over
        the batch, each chunk is read at most once per batch, and
        ``workers > 1`` spreads the wall-clock work over a thread pool.
        ``use_router=True`` routes chunk ranking through coarse centroid
        groups (O(sqrt(C)) probes per query) instead of the full centroid
        scan.  Per-query results are identical to
        :meth:`find_similar_descriptors` in every mode.
        """
        self._require_built()
        self._refresh()
        router = None
        if use_router:
            from .core.routing import CentroidRouter

            router = CentroidRouter.from_index(self._index)
        searcher = BatchChunkSearcher(
            self._index,
            cost_model=self.cost_model,
            prune=self.prune,
            router=router,
        )
        return searcher.search_batch(
            queries, k=k, stop_rule=self._stop_rule(exact), workers=workers
        )

    def find_similar_images(
        self,
        query_descriptors: np.ndarray,
        top_images: int = 10,
        k_per_descriptor: int = 10,
        exact: bool = False,
        max_match_distance: Optional[float] = None,
    ) -> List[ImageMatch]:
        """Image-level retrieval: descriptor voting over the whole set.

        ``max_match_distance`` switches to verified voting (see
        :meth:`MultiDescriptorSearcher.search_image`) — required for
        duplicate detection rather than mere ranking.
        """
        self._require_built()
        self._refresh()
        searcher = MultiDescriptorSearcher(
            self._index, self._collection, cost_model=self.cost_model
        )
        return searcher.search_image(
            query_descriptors,
            k_per_descriptor=k_per_descriptor,
            top_images=top_images,
            stop_rule=self._stop_rule(exact),
            max_match_distance=max_match_distance,
        )

    # -- live updates --------------------------------------------------------------------

    def add_image(self, image_id: int, descriptors: np.ndarray) -> int:
        """Insert a new image's descriptors; returns its descriptor count."""
        self._require_built()
        descriptors = np.atleast_2d(np.asarray(descriptors, dtype=np.float32))
        if descriptors.shape[0] == 0:
            raise ValueError("an image needs at least one descriptor")
        for vector in descriptors:
            descriptor_id = self._next_descriptor_id
            self._next_descriptor_id += 1
            self._maintainer.insert(descriptor_id, vector)
            self._image_of_id[descriptor_id] = int(image_id)
        self._dirty = True
        return descriptors.shape[0]

    def remove_image(self, image_id: int) -> int:
        """Delete every descriptor of one image; returns how many."""
        self._require_built()
        victims = [
            descriptor_id
            for descriptor_id, img in self._image_of_id.items()
            if img == int(image_id)
        ]
        if not victims:
            raise KeyError(f"image {image_id} not in the system")
        for descriptor_id in victims:
            self._maintainer.delete(descriptor_id)
            del self._image_of_id[descriptor_id]
        self._dirty = True
        return len(victims)

    # -- persistence ----------------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist the whole system: chunk files + mapping + config."""
        self._require_built()
        self._refresh()
        os.makedirs(directory, exist_ok=True)
        self._index.save(directory)
        ids = np.asarray(sorted(self._image_of_id), dtype=np.int64)
        images = np.asarray(
            [self._image_of_id[int(i)] for i in ids], dtype=np.int64
        )
        np.savez(os.path.join(directory, _MAPPING_FILE), ids=ids, images=images)
        with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as f:
            json.dump(
                {
                    "dimensions": self._index.dimensions,
                    "next_descriptor_id": self._next_descriptor_id,
                    "default_stop_chunks": self.default_stop_chunks,
                },
                f,
            )

    @classmethod
    def load(cls, directory: str) -> "ImageRetrievalSystem":
        """Reopen a system saved with :meth:`save`."""
        with open(os.path.join(directory, _META_FILE), encoding="utf-8") as f:
            meta = json.load(f)
        index = ChunkIndex.load(directory, dimensions=int(meta["dimensions"]))
        system = cls(default_stop_chunks=meta["default_stop_chunks"])
        system._maintainer = ChunkIndexMaintainer(index)
        with np.load(os.path.join(directory, _MAPPING_FILE)) as mapping:
            system._image_of_id = {
                int(i): int(img)
                for i, img in zip(mapping["ids"], mapping["images"])
            }
        system._next_descriptor_id = int(meta["next_descriptor_id"])
        index.close()
        system._dirty = True
        system._refresh()
        return system
