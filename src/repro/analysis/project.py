"""Per-run whole-program state: symbol table, call graph, cached taints.

Built once by the runner per ``lint_tree`` (or per ``lint_sources`` call
in tests), then handed to every :class:`~repro.analysis.rules.base
.ProjectRule`.  The two taint analyses are computed lazily and cached —
SIM101 and SIM102 share one unit-inference fixed point, RNG101 and
RNG102 share one provenance pass — so rule granularity stays fine
without re-running the expensive part per rule.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from .callgraph import CallGraph, attribute_types
from .config import LintConfig
from .diagnostics import Diagnostic
from .symbols import SymbolTable

__all__ = ["ProjectContext"]


class ProjectContext:
    """Symbol table + call graph + lazily cached analysis results."""

    def __init__(self, config: LintConfig, symbols: SymbolTable):
        self.config = config
        self.symbols = symbols
        self.attr_types = attribute_types(symbols)
        self.callgraph = CallGraph.build(symbols, self.attr_types)
        self._time_diagnostics: Optional[List[Diagnostic]] = None
        self._seed_diagnostics: Optional[List[Diagnostic]] = None

    @classmethod
    def build(
        cls,
        config: LintConfig,
        files: Sequence[Tuple[str, str, ast.Module]],
    ) -> "ProjectContext":
        """From ``(relpath, source, tree)`` triples (parsed upstream)."""
        return cls(config, SymbolTable.build(config.package, files))

    # -- cached analyses -----------------------------------------------------

    def time_diagnostics(self) -> List[Diagnostic]:
        """SIM1xx findings (one shared unit-inference run)."""
        if self._time_diagnostics is None:
            from .taint import TimeUnitAnalysis

            analysis = TimeUnitAnalysis(self.symbols, self.attr_types, self.config)
            self._time_diagnostics = analysis.run()
        return self._time_diagnostics

    def seed_diagnostics(self) -> List[Diagnostic]:
        """RNG1xx findings (one shared provenance run)."""
        if self._seed_diagnostics is None:
            from .taint import SeedProvenanceAnalysis

            analysis = SeedProvenanceAnalysis(self.symbols, self.attr_types, self.config)
            self._seed_diagnostics = analysis.run()
        return self._seed_diagnostics

    # -- suppression routing -------------------------------------------------

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        info = self.symbols.by_relpath.get(diagnostic.path)
        if info is None:
            return False
        return info.suppressions.is_suppressed(diagnostic.line, diagnostic.rule)

    @property
    def reexports(self) -> Dict[str, str]:
        return self.symbols.reexports
