"""Argument handling for ``repro lint`` / ``python -m repro.analysis``.

Kept here (not in :mod:`repro.cli`) so the checker remains runnable as a
standalone module on a tree whose other layers do not import, and so the
two entry points share one definition of the flags.

Exit codes: 0 clean (or all findings baselined), 1 new violations found,
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .diagnostics import render_json, render_text, summarize
from .rules import RULE_CLASSES, RULE_IDS, select_rules
from .runner import LintResult, lint_tree, package_root
from .sarif import render_sarif

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` flags on ``parser``."""
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        dest="lint_format",
        default="text",
        choices=("text", "json"),
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report (GitHub code scanning)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=f"comma-separated rule ids to run (default: all of {','.join(RULE_IDS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule ids and summaries, then exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the full rationale for one rule id, then exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} next to the linted tree, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase and per-rule timings to stderr",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache parsed ASTs here, keyed on source hash (speeds reruns)",
    )


def _explain(rule_id: str) -> int:
    for cls in RULE_CLASSES:
        if cls.id == rule_id:
            print(f"{cls.id} — {cls.summary}")
            if cls.rationale:
                print()
                print(cls.rationale)
            return 0
    print(
        f"repro lint: error: unknown rule {rule_id!r} "
        f"(known: {','.join(RULE_IDS)})",
        file=sys.stderr,
    )
    return 2


def _baseline_path(args: argparse.Namespace, root: str) -> str:
    """Resolve the baseline file path for this run.

    An explicit ``--baseline`` wins; otherwise the default name is looked
    up next to the linted tree's parent (the repo layout keeps it at the
    repo root, two levels above ``src/repro``) and finally in the CWD.
    """
    if args.baseline:
        return args.baseline
    candidates = [
        os.path.join(root, DEFAULT_BASELINE_NAME),
        os.path.join(os.path.dirname(os.path.dirname(root)), DEFAULT_BASELINE_NAME),
        DEFAULT_BASELINE_NAME,
    ]
    for candidate in candidates:
        if os.path.exists(candidate):
            return candidate
    return DEFAULT_BASELINE_NAME


def _print_profile(result: LintResult) -> None:
    total = sum(result.phase_timings.values())
    print("phase timings:", file=sys.stderr)
    for phase in ("parse", "symbols", "callgraph", "rules"):
        seconds = result.phase_timings.get(phase, 0.0)
        print(f"  {phase:<10} {seconds * 1000.0:8.1f} ms", file=sys.stderr)
    print(f"  {'total':<10} {total * 1000.0:8.1f} ms", file=sys.stderr)
    if result.rule_timings:
        print("rule timings:", file=sys.stderr)
        ordered = sorted(
            result.rule_timings.items(), key=lambda item: (-item[1], item[0])
        )
        for rule_id, seconds in ordered:
            print(f"  {rule_id:<10} {seconds * 1000.0:8.1f} ms", file=sys.stderr)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.id}  {cls.summary}")
        return 0
    if args.explain:
        return _explain(args.explain)

    try:
        rule_ids: Optional[List[str]] = (
            [part.strip() for part in args.rules.split(",") if part.strip()]
            if args.rules
            else None
        )
        rules = select_rules(rule_ids)
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    root = args.path or package_root()
    if not os.path.isdir(root):
        print(f"repro lint: error: not a directory: {root}", file=sys.stderr)
        return 2

    result = lint_tree(root, rules=rules, cache_dir=args.cache_dir)
    if args.profile:
        _print_profile(result)

    baseline_path = _baseline_path(args, root)
    if args.write_baseline:
        count = write_baseline(baseline_path, result.diagnostics)
        print(
            f"wrote baseline with {count} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    diagnostics = result.diagnostics
    suppressed = 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro lint: error: {exc}", file=sys.stderr)
            return 2
        if baseline:
            diagnostics, suppressed = apply_baseline(diagnostics, baseline)

    if args.lint_format == "json":
        report = render_json(
            diagnostics,
            checked_files=result.checked_files,
            rules=result.rules,
        )
    else:
        report = render_text(diagnostics)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    elif report:
        print(report)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(diagnostics, rules) + "\n")
    if args.lint_format == "text":
        summary = summarize(diagnostics, result.checked_files)
        if suppressed:
            summary += f" ({suppressed} baselined finding(s) suppressed)"
        print(summary, file=sys.stderr)
    return 0 if not diagnostics else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="whole-program invariant checker for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
