"""Argument handling for ``repro lint`` / ``python -m repro.analysis``.

Kept here (not in :mod:`repro.cli`) so the checker remains runnable as a
standalone module on a tree whose other layers do not import, and so the
two entry points share one definition of the flags.

Exit codes: 0 clean, 1 violations found, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .diagnostics import render_json, render_text, summarize
from .rules import RULE_CLASSES, RULE_IDS, select_rules
from .runner import lint_tree, package_root

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``lint`` flags on ``parser``."""
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        dest="lint_format",
        default="text",
        choices=("text", "json"),
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=f"comma-separated rule ids to run (default: all of {','.join(RULE_IDS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule ids and summaries, then exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.id}  {cls.summary}")
        return 0

    try:
        rule_ids: Optional[List[str]] = (
            [part.strip() for part in args.rules.split(",") if part.strip()]
            if args.rules
            else None
        )
        rules = select_rules(rule_ids)
    except ValueError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    root = args.path or package_root()
    if not os.path.isdir(root):
        print(f"repro lint: error: not a directory: {root}", file=sys.stderr)
        return 2

    result = lint_tree(root, rules=rules)
    if args.lint_format == "json":
        report = render_json(
            result.diagnostics,
            checked_files=result.checked_files,
            rules=result.rules,
        )
    else:
        report = render_text(result.diagnostics)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    elif report:
        print(report)
    if args.lint_format == "text":
        print(summarize(result.diagnostics, result.checked_files), file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker for the repro package",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
