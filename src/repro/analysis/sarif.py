"""SARIF 2.1.0 output so findings surface in GitHub code scanning.

One run, one tool (``repro-lint``), one result per diagnostic.  The
report is deterministic: rules sorted by id, results in diagnostic sort
order, keys emitted in fixed order — CI diffs two runs byte-for-byte to
prove the analyzer itself is deterministic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .diagnostics import Diagnostic
from .rules import Rule

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/repro/repro"


def _rule_entry(rule: Rule) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
    }
    if rule.rationale:
        entry["fullDescription"] = {"text": rule.rationale.replace("\n", " ")}
    return entry


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rules: Sequence[Rule],
    *,
    base_uri: Optional[str] = None,
) -> str:
    """SARIF 2.1.0 JSON for ``diagnostics``.

    ``base_uri``, when given, is emitted as the ``SRCROOT`` uriBase so
    GitHub resolves the package-relative paths against the repo (pass
    e.g. ``src/repro/``).
    """
    rule_index = {rule.id: i for i, rule in enumerate(sorted(rules, key=lambda r: r.id))}
    results: List[Dict[str, object]] = []
    for diagnostic in sorted(diagnostics):
        location: Dict[str, object] = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": diagnostic.path,
                    **({"uriBaseId": "SRCROOT"} if base_uri else {}),
                },
                "region": {
                    "startLine": diagnostic.line,
                    "startColumn": diagnostic.col + 1,
                },
            }
        }
        result: Dict[str, object] = {
            "ruleId": diagnostic.rule,
            "level": "error",
            "message": {"text": f"{diagnostic.rule} {diagnostic.message}"},
            "locations": [location],
        }
        if diagnostic.rule in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.rule]
        results.append(result)
    run: Dict[str, object] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": [
                    _rule_entry(rule) for rule in sorted(rules, key=lambda r: r.id)
                ],
            }
        },
        "results": results,
    }
    if base_uri:
        run["originalUriBaseIds"] = {"SRCROOT": {"uri": base_uri}}
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
