"""Inter-procedural taint analyses: time units (SIM1xx) and seed
provenance (RNG1xx).

Both analyses run over the project :class:`~repro.analysis.symbols
.SymbolTable` plus the :mod:`~repro.analysis.callgraph` type tracking,
and both follow the same scheme: a deterministic fixed point propagates
facts across function boundaries (units of returns / parameters /
attributes; which parameters feed entropy into a generator), then one
final pass over every function emits diagnostics.

**Time units.**  Every value is ``host`` seconds (wall clock), ``sim``
seconds (advanced by the cost models) or unitless.  Units enter at the
roots in :data:`~repro.analysis.config.TIME_UNIT_SOURCES` and flow
through assignments, returns, call arguments, ``self.attr`` stores and
dataclass constructor fields.  SIM101 fires when host and sim meet in an
arithmetic/comparison/``min``/``max`` expression; SIM102 when a value of
one unit reaches a sink declared for the other (a simulated timestamp
into ``time.sleep``, a wall-clock read into ``SimulatedClock.advance``).

**Seed provenance.**  Entropy must flow from root seeds, forked with
``SeedSequence.spawn`` — never from another generator's output stream,
and never the same seed into two consumers (aliased streams silently
correlate, which breaks the byte-identical ``servesim``/``faultsim``
rerun guarantee).  RNG101 flags generators built from non-root entropy
(a draw from another generator, a wall-clock read, or an unseeded
``SeedSequence()``); RNG102 flags one seed value fanning out, bare, to
two or more entropy consumers in the same function.

The analyses are heuristic where Python is dynamic (untyped receivers,
tuple returns) and deliberately fail *silent*, not loud: a value whose
unit cannot be proven is unitless and produces no finding.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from .callgraph import LocalResolver, return_class_of
from .config import LintConfig
from .diagnostics import Diagnostic
from .symbols import FunctionInfo, SymbolTable

__all__ = ["TimeUnitAnalysis", "SeedProvenanceAnalysis"]

#: Unit lattice: ``None`` (unitless/unknown) < "host" | "sim" < CONFLICT.
CONFLICT = "conflict"
_REAL_UNITS = ("host", "sim")

#: Builtins that return one of their arguments unchanged (unit-wise).
_PASSTHROUGH_CALLS = frozenset({"float", "abs", "min", "max", "sum", "round"})


def _join(existing: Optional[str], new: Optional[str]) -> Optional[str]:
    if new is None or existing == new:
        return existing
    if existing is None:
        return new
    return CONFLICT


def _known(unit: Optional[str]) -> Optional[str]:
    return unit if unit in _REAL_UNITS else None


def _in_order(nodes: Iterable[ast.AST]) -> List[ast.AST]:
    out = list(nodes)
    out.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    return out


def _body_nodes(fn_node: ast.AST) -> List[ast.AST]:
    nodes: List[ast.AST] = []
    for stmt in getattr(fn_node, "body", []):
        nodes.extend(ast.walk(stmt))
    return _in_order(nodes)


def _self_params(fn: FunctionInfo) -> Tuple[str, ...]:
    """Parameter names minus a leading self/cls for methods."""
    params = fn.params
    if fn.class_name is not None and params and params[0] in ("self", "cls"):
        return params[1:]
    return params


def _map_args_to_params(
    call: ast.Call, fn: FunctionInfo
) -> List[Tuple[str, ast.expr]]:
    """Best-effort (param_name, argument_expr) pairing for one call."""
    params = _self_params(fn)
    pairs: List[Tuple[str, ast.expr]] = []
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            pairs.append((params[i], arg))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in fn.params:
            pairs.append((kw.arg, kw.value))
    return pairs


# ---------------------------------------------------------------------------
# Time units (SIM101 / SIM102)
# ---------------------------------------------------------------------------


class TimeUnitAnalysis:
    """Whole-program unit inference; :meth:`run` returns diagnostics."""

    MAX_PASSES = 8

    def __init__(
        self,
        symbols: SymbolTable,
        attr_types: Dict[Tuple[str, str], str],
        config: LintConfig,
    ):
        self.symbols = symbols
        self.attr_types = attr_types
        self.config = config
        #: function qualname -> return unit
        self.function_units: Dict[str, Optional[str]] = {}
        #: (function qualname, param name) -> unit observed at call sites
        self.param_units: Dict[Tuple[str, str], Optional[str]] = {}
        #: (class qualname, attr) -> unit of stored values
        self.attr_units: Dict[Tuple[str, str], Optional[str]] = {}
        self._changed = False
        # Method/attr-name fallback for untyped receivers: name -> unit,
        # only when unambiguous across every known source.
        names: Dict[str, Optional[str]] = {}
        for dotted, unit in sorted(config.time_unit_sources.items()):
            names[dotted.rsplit(".", 1)[1]] = _join(
                names.get(dotted.rsplit(".", 1)[1]), unit
            )
        self._source_name_units = {k: v for k, v in names.items() if _known(v)}

    # -- fixed point ---------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        for _ in range(self.MAX_PASSES):
            self._changed = False
            for fn in self.symbols.sorted_functions():
                _TimeUnitPass(self, fn, collect=None).walk()
            if not self._changed:
                break
        diagnostics: List[Diagnostic] = []
        seen: Set[Tuple[str, int, int, str, str]] = set()
        for fn in self.symbols.sorted_functions():
            found: List[Diagnostic] = []
            _TimeUnitPass(self, fn, collect=found).walk()
            for diag in found:
                key = (diag.path, diag.line, diag.col, diag.rule, diag.message)
                if key not in seen:
                    seen.add(key)
                    diagnostics.append(diag)
        return diagnostics

    # -- recording (monotone joins; flags the fixed point dirty) -------------

    def record_return(self, qualname: str, unit: Optional[str]) -> None:
        joined = _join(self.function_units.get(qualname), unit)
        if joined != self.function_units.get(qualname):
            self.function_units[qualname] = joined
            self._changed = True

    def record_param(self, qualname: str, param: str, unit: Optional[str]) -> None:
        key = (qualname, param)
        joined = _join(self.param_units.get(key), unit)
        if joined != self.param_units.get(key):
            self.param_units[key] = joined
            self._changed = True

    def record_attr(self, cls: str, attr: str, unit: Optional[str]) -> None:
        key = (cls, attr)
        joined = _join(self.attr_units.get(key), unit)
        if joined != self.attr_units.get(key):
            self.attr_units[key] = joined
            self._changed = True

    def attr_name_unit(self, attr: str) -> Optional[str]:
        """Unit of an attribute on an *untyped* receiver: unambiguous
        across all recorded classes and source names, else unknown."""
        unit = self._source_name_units.get(attr)
        for (_, name), recorded in sorted(self.attr_units.items()):
            if name == attr:
                unit = _join(unit, recorded)
        return _known(unit)


class _TimeUnitPass:
    """One intra-function pass: infer local units, record cross-function
    facts, and (on the final pass) emit SIM101/SIM102 diagnostics."""

    def __init__(
        self,
        analysis: TimeUnitAnalysis,
        fn: FunctionInfo,
        collect: Optional[List[Diagnostic]],
    ):
        self.a = analysis
        self.fn = fn
        self.collect = collect
        info = analysis.symbols.modules[fn.module]
        self.info = info
        self.resolver = LocalResolver(analysis.symbols, info, fn, analysis.attr_types)
        self.env: Dict[str, Optional[str]] = {}
        for param in fn.params:
            unit = _known(analysis.param_units.get((fn.qualname, param)))
            if unit:
                self.env[param] = unit
        self._memo: Dict[int, Optional[str]] = {}

    # -- driver --------------------------------------------------------------

    def walk(self) -> None:
        for node in _body_nodes(self.fn.node):
            if isinstance(node, ast.Assign):
                self.resolver.observe_assign(node)
                self._handle_assign(node)
            elif isinstance(node, ast.AugAssign):
                self._handle_aug_assign(node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                unit = self.unit_of(node.value)
                if isinstance(node.target, ast.Name):
                    self.env[node.target.id] = unit
                self._store_attr(node.target, unit)
            elif isinstance(node, ast.Return) and node.value is not None:
                self.a.record_return(self.fn.qualname, self.unit_of(node.value))
            elif isinstance(node, (ast.BinOp, ast.Compare, ast.Call)):
                self.unit_of(node)

    def _handle_assign(self, node: ast.Assign) -> None:
        unit = self.unit_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = unit
            elif isinstance(target, ast.Tuple):
                # Tuple-returning sources (chunk_read_time_s) put the
                # timed value first: ``io, hit = chunk_read_time_s(...)``.
                for i, element in enumerate(target.elts):
                    if isinstance(element, ast.Name):
                        self.env[element.id] = unit if i == 0 else None
            else:
                self._store_attr(target, unit)

    def _handle_aug_assign(self, node: ast.AugAssign) -> None:
        value_unit = self.unit_of(node.value)
        if isinstance(node.target, ast.Name):
            current = self.env.get(node.target.id)
            self._check_mix(node, current, value_unit, "augmented assignment")
            self.env[node.target.id] = current if _known(current) else value_unit
        else:
            target_unit = self.unit_of(node.target)
            self._check_mix(node, target_unit, value_unit, "augmented assignment")
            self._store_attr(node.target, value_unit)

    def _store_attr(self, target: ast.AST, unit: Optional[str]) -> None:
        if not (isinstance(target, ast.Attribute) and _known(unit)):
            return
        owner = self.resolver.type_of(target.value)
        if owner is not None:
            self.a.record_attr(owner, target.attr, unit)

    # -- expression units ----------------------------------------------------

    def unit_of(self, expr: ast.AST) -> Optional[str]:
        key = id(expr)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard
        unit = self._unit_of(expr)
        self._memo[key] = unit
        return unit

    def _unit_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return _known(self.env.get(expr.id))
        if isinstance(expr, ast.Attribute):
            return self._attribute_unit(expr)
        if isinstance(expr, ast.Call):
            return self._call_unit(expr)
        if isinstance(expr, ast.BinOp):
            left, right = self.unit_of(expr.left), self.unit_of(expr.right)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                self._check_mix(expr, left, right, "arithmetic")
            return left or right
        if isinstance(expr, ast.Compare):
            units = [self.unit_of(expr.left)] + [self.unit_of(c) for c in expr.comparators]
            for i in range(len(units) - 1):
                self._check_mix(expr, units[i], units[i + 1], "comparison")
            return None
        if isinstance(expr, ast.IfExp):
            body, orelse = self.unit_of(expr.body), self.unit_of(expr.orelse)
            return body if body == orelse else None
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand)
        if isinstance(expr, ast.Subscript):
            # A tuple/list tainted as a whole taints its elements.
            return self.unit_of(expr.value)
        if isinstance(expr, ast.Starred):
            return self.unit_of(expr.value)
        return None

    def _attribute_unit(self, expr: ast.Attribute) -> Optional[str]:
        dotted = self.resolver.dotted_of(expr)
        if dotted is not None:
            source = self.a.config.time_unit_sources.get(dotted)
            if source:
                return source
        owner = self.resolver.type_of(expr.value)
        if owner is not None:
            recorded = _known(self.a.attr_units.get((owner, expr.attr)))
            if recorded:
                return recorded
            # A typed receiver whose attribute we know nothing about —
            # do not fall through to the name heuristic.
            return None
        return self.a.attr_name_unit(expr.attr)

    def _call_unit(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_CALLS:
            if self.info.imports.resolve(func.id) is None:
                units = [self.unit_of(a) for a in call.args]
                for i in range(len(units) - 1):
                    self._check_mix(call, units[i], units[i + 1], f"{func.id}()")
                return next((u for u in units if _known(u)), None)
        dotted, resolved = self.resolver.callee_of(call)
        if dotted is not None:
            self._check_sink(call, dotted)
            source = self.a.config.time_unit_sources.get(dotted)
            if source:
                return source
        if resolved is not None:
            # Push argument units into the callee's parameters, and pull
            # the callee's inferred return unit.
            for param, arg in _map_args_to_params(call, resolved):
                self.a.record_param(resolved.qualname, param, self.unit_of(arg))
            self._check_contagion(call, resolved)
            return _known(self.a.function_units.get(resolved.qualname))
        if dotted is None and isinstance(func, ast.Attribute):
            # Untyped receiver: fall back to the unambiguous-name map
            # (``.process_chunk(...)`` is simulated wherever it appears).
            return self.a._source_name_units.get(func.attr)
        return None

    def _check_contagion(self, call: ast.Call, resolved: FunctionInfo) -> None:
        """SIM102 side of parameters: a param whose call sites already
        established one unit receiving the other unit here."""
        for param, arg in _map_args_to_params(call, resolved):
            expected = self.a.param_units.get((resolved.qualname, param))
            got = _known(self.unit_of(arg))
            if (
                expected in _REAL_UNITS
                and got is not None
                and got != expected
                and self.collect is not None
            ):
                self._emit(
                    call,
                    "SIM101",
                    f"{got}-seconds value passed for parameter '{param}' of "
                    f"{resolved.qualname}(), which receives {expected}-seconds "
                    f"elsewhere — one of the call sites mixes clock domains",
                )

    def _check_sink(self, call: ast.Call, dotted: str) -> None:
        expected = self.a.config.time_unit_sinks.get(dotted)
        if expected is None or not call.args:
            return
        got = _known(self.unit_of(call.args[0]))
        if got is not None and got != expected and self.collect is not None:
            self._emit(
                call,
                "SIM102",
                f"{got}-seconds value reaches {dotted}(), which expects "
                f"{expected} seconds; simulated and wall-clock time must "
                f"never cross layer boundaries",
            )

    def _check_mix(
        self,
        node: ast.AST,
        left: Optional[str],
        right: Optional[str],
        where: str,
    ) -> None:
        if (
            _known(left)
            and _known(right)
            and left != right
            and self.collect is not None
        ):
            self._emit(
                node,
                "SIM101",
                f"{where} mixes {left}-seconds and {right}-seconds operands; "
                f"simulated and wall-clock time are different units",
            )

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        assert self.collect is not None
        self.collect.append(
            Diagnostic(
                path=self.fn.relpath,
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# Seed provenance (RNG101 / RNG102)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _SeedUse:
    """One bare-name flow into an entropy consumer."""

    name: str
    node: ast.Call
    consumer: str  #: human-readable description of the consuming slot


class SeedProvenanceAnalysis:
    """Track SeedSequence/Generator provenance through the call graph."""

    MAX_PASSES = 8

    def __init__(
        self,
        symbols: SymbolTable,
        attr_types: Dict[Tuple[str, str], str],
        config: LintConfig,
    ):
        self.symbols = symbols
        self.attr_types = attr_types
        self.config = config
        #: parameters that (transitively) feed entropy into a generator
        self.seed_params: Set[Tuple[str, str]] = set()

    def run(self) -> List[Diagnostic]:
        for _ in range(self.MAX_PASSES):
            before = len(self.seed_params)
            for fn in self.symbols.sorted_functions():
                self._infer_seed_params(fn)
            if len(self.seed_params) == before:
                break
        diagnostics: List[Diagnostic] = []
        for fn in self.symbols.sorted_functions():
            diagnostics.extend(self._check_function(fn))
        return diagnostics

    # -- seed-slot discovery -------------------------------------------------

    def _seed_slot_exprs(
        self, call: ast.Call, resolver: LocalResolver
    ) -> List[Tuple[ast.expr, str]]:
        """Expressions of ``call`` that land in an entropy slot, with a
        description of the consumer."""
        dotted, resolved = resolver.callee_of(call)
        out: List[Tuple[ast.expr, str]] = []
        if dotted is not None and dotted in self.config.seed_slots:
            index, keyword = self.config.seed_slots[dotted]
            if len(call.args) > index and not isinstance(call.args[index], ast.Starred):
                out.append((call.args[index], f"{dotted}()"))
            for kw in call.keywords:
                if kw.arg == keyword:
                    out.append((kw.value, f"{dotted}({keyword}=...)"))
        if resolved is not None:
            for param, arg in _map_args_to_params(call, resolved):
                if (resolved.qualname, param) in self.seed_params:
                    out.append((arg, f"{resolved.qualname}({param}=...)"))
        return out

    def _infer_seed_params(self, fn: FunctionInfo) -> None:
        info = self.symbols.modules[fn.module]
        resolver = LocalResolver(self.symbols, info, fn, self.attr_types)
        params = set(fn.params)
        for node in _body_nodes(fn.node):
            if isinstance(node, ast.Assign):
                resolver.observe_assign(node)
            elif isinstance(node, ast.Call):
                for expr, _ in self._seed_slot_exprs(node, resolver):
                    if isinstance(expr, ast.Name) and expr.id in params:
                        self.seed_params.add((fn.qualname, expr.id))

    # -- checks --------------------------------------------------------------

    def _check_function(self, fn: FunctionInfo) -> List[Diagnostic]:
        info = self.symbols.modules[fn.module]
        resolver = LocalResolver(self.symbols, info, fn, self.attr_types)
        diagnostics: List[Diagnostic] = []
        generator_vars: Set[str] = set()
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if self._is_generator_annotation(arg.annotation, resolver):
                    generator_vars.add(arg.arg)
        uses: Dict[str, List[_SeedUse]] = {}
        seen_calls: Set[int] = set()
        for node in _body_nodes(fn.node):
            if isinstance(node, ast.Assign):
                resolver.observe_assign(node)
                self._track_generators(node, resolver, generator_vars)
            elif isinstance(node, ast.Call) and id(node) not in seen_calls:
                seen_calls.add(id(node))
                diagnostics.extend(
                    self._check_call(fn, node, resolver, generator_vars, uses)
                )
        # RNG102: one seed name, two or more entropy consumers.
        for name in sorted(uses):
            sites = uses[name]
            if len(sites) < 2:
                continue
            first = sites[0]
            for use in sites[1:]:
                diagnostics.append(
                    Diagnostic(
                        path=fn.relpath,
                        line=use.node.lineno,
                        col=use.node.col_offset,
                        rule="RNG102",
                        message=(
                            f"seed '{name}' fans out to {use.consumer} after "
                            f"already seeding {first.consumer} (line "
                            f"{first.node.lineno}); aliased seeds produce "
                            f"correlated streams — spawn() child seeds instead"
                        ),
                    )
                )
        return diagnostics

    def _check_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        resolver: LocalResolver,
        generator_vars: Set[str],
        uses: Dict[str, List[_SeedUse]],
    ) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        dotted, _ = resolver.callee_of(call)
        # RNG101: an unseeded SeedSequence is a nondeterministic root.
        if dotted == "numpy.random.SeedSequence" and not call.args and not call.keywords:
            diagnostics.append(
                Diagnostic(
                    path=fn.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    rule="RNG101",
                    message=(
                        "SeedSequence() without entropy seeds from the OS; "
                        "root seeds must be explicit so reruns are identical"
                    ),
                )
            )
        for expr, consumer in self._seed_slot_exprs(call, resolver):
            bad = self._non_root_entropy(expr, resolver, generator_vars)
            if bad is not None:
                diagnostics.append(
                    Diagnostic(
                        path=fn.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        rule="RNG101",
                        message=(
                            f"entropy for {consumer} derives from {bad}; "
                            f"seeds must come from the root SeedSequence "
                            f"(use spawn() to fork child seeds)"
                        ),
                    )
                )
            if isinstance(expr, ast.Name):
                uses.setdefault(expr.id, []).append(_SeedUse(expr.id, call, consumer))
        return diagnostics

    def _track_generators(
        self, node: ast.Assign, resolver: LocalResolver, generator_vars: Set[str]
    ) -> None:
        is_generator = False
        if isinstance(node.value, ast.Call):
            dotted, _ = resolver.callee_of(node.value)
            if dotted in ("numpy.random.default_rng", "numpy.random.Generator"):
                is_generator = True
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_generator:
                    generator_vars.add(target.id)
                else:
                    generator_vars.discard(target.id)

    def _is_generator_annotation(
        self, annotation: Optional[ast.AST], resolver: LocalResolver
    ) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return False
        dotted = resolver.dotted_of(annotation) if isinstance(
            annotation, (ast.Name, ast.Attribute)
        ) else None
        return dotted in ("numpy.random.Generator",)

    def _non_root_entropy(
        self,
        expr: ast.AST,
        resolver: LocalResolver,
        generator_vars: Set[str],
    ) -> Optional[str]:
        """Name of the non-root entropy source inside ``expr``, if any:
        a method call on a live Generator, or a wall-clock read."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in generator_vars
                and func.attr != "spawn"
            ):
                return f"a draw from generator '{func.value.id}' ({func.attr}())"
            dotted, _ = resolver.callee_of(node)
            if dotted is not None and (
                dotted.startswith("time.") or dotted.endswith("WallClock.now")
            ):
                return f"the wall clock ({dotted}())"
        return None
