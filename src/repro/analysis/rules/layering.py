"""LAY001 — layer boundaries (the import DAG).

The algorithmic layers (``core``, ``simio``, ``storage``, ``chunking``,
``srtree``) must stay importable without dragging in the application
shell (``experiments``, ``extensions``, ``system``, ``cli``), and
``simio`` must not know about ``core`` so the cost models stay reusable.
Violations here are how "just one convenience import" turns the DAG into
a ball of mud that blocks future refactors.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..diagnostics import Diagnostic
from .base import FileContext, Rule

__all__ = ["LayerBoundaryRule"]


class LayerBoundaryRule(Rule):
    id = "LAY001"
    summary = "import crosses a forbidden layer boundary"
    rationale = (
        "The algorithmic layers (core, simio, storage, chunking, srtree)\n"
        "must stay importable without dragging in the application shell\n"
        "(experiments, extensions, system, cli), and simio must not know\n"
        "about core so the cost models stay reusable.  One convenience\n"
        "import turns the DAG into a ball of mud that blocks the scaling\n"
        "refactors the ROADMAP plans.  In whole-program runs the check\n"
        "resolves names re-exported through package __init__ files to\n"
        "their defining module, so a shell symbol re-exported at top level\n"
        "no longer slips through."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        forbidden = ctx.config.forbidden_imports.get(ctx.layer)
        if not forbidden:
            return
        for node, target in _imported_modules(ctx):
            layer = _layer_of_module(target, ctx.config.package)
            if layer is not None and layer in forbidden:
                yield ctx.diagnostic(
                    node,
                    self.id,
                    f"layer '{ctx.layer}' must not import '{layer}' "
                    f"(imports {target})",
                )


def _imported_modules(ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, dotted_module)`` for every import in the file.

    ``from X import a, b`` yields ``X.a`` and ``X.b`` so that
    ``from .. import system`` resolves to ``repro.system`` (the name may
    be a module, not an attribute — the pessimistic reading is correct
    for boundary checking).
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, ctx.canonical(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(node, ctx.module_package)
            if base is None:
                continue
            if not node.names or node.names[0].name == "*":
                yield node, ctx.canonical(base)
                continue
            for alias in node.names:
                # Canonicalize through the project re-export map: a name
                # imported "from .. import x" may be defined modules away
                # (re-exported by an __init__), and the boundary check
                # must see the *defining* layer.
                dotted = f"{base}.{alias.name}" if base else alias.name
                yield node, ctx.canonical(dotted)


def _resolve_relative(node: ast.ImportFrom, module_package: str) -> Optional[str]:
    if node.level == 0:
        return node.module or None
    parts: List[str] = module_package.split(".") if module_package else []
    up = node.level - 1
    if up > len(parts):
        return None
    if up:
        parts = parts[:-up]
    if node.module:
        parts.extend(node.module.split("."))
    return ".".join(parts) if parts else None


def _layer_of_module(dotted: str, package: str) -> Optional[str]:
    """Layer a dotted import path lands in, or ``None`` if outside the
    package (stdlib/third-party imports are never boundary violations)."""
    parts = dotted.split(".")
    if parts[0] != package or len(parts) < 2:
        return None
    return parts[1]
