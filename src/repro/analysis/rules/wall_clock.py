"""CLK001 — simulated-clock discipline.

Layers that account cost through :class:`repro.simio.clock.SimulatedClock`
(``core``, ``simio``, ``storage``, ``chunking``, ``srtree``) must never
read the wall clock: a stray ``time.perf_counter()`` in a simulated path
silently mixes hardware-dependent noise into the paper's deterministic
time-to-quality curves.  Wall-clock reads are permitted only in the
config allowlist (the ``WallClock`` implementation itself) or behind an
explicit inline ``# repro-lint: disable=CLK001`` at a build/benchmark
measurement site.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from ..diagnostics import Diagnostic
from .base import FileContext, Rule, resolve_call_target

__all__ = ["WallClockRule"]

#: Fully-resolved call targets that read the wall clock.
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "CLK001"
    summary = (
        "wall-clock read (time.time/perf_counter/datetime.now/...) in a "
        "simulated-cost layer; use SimClock, or allowlist a build timer"
    )
    rationale = (
        "Query-time cost in core/simio/storage/chunking/srtree/faults/\n"
        "service is *simulated*: disk and CPU models advance a\n"
        "SimulatedClock, which is what makes the paper's time-to-quality\n"
        "curves deterministic and hardware-independent.  One stray\n"
        "time.perf_counter() in those layers mixes real hardware noise\n"
        "into the curves without failing any test.  The WallClock\n"
        "implementation itself (simio/clock.py) is allowlisted; build-time\n"
        "measurement sites carry inline disable comments so new reads are\n"
        "still caught."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.layer not in ctx.config.simulated_layers:
            return
        if ctx.relpath in ctx.config.wall_clock_allowlist:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, ctx.imports)
            if target in WALL_CLOCK_CALLS:
                yield ctx.diagnostic(
                    node,
                    self.id,
                    f"call to {target}() in simulated layer '{ctx.layer}'; "
                    f"simulated paths must take time from SimulatedClock",
                )
