"""Whole-program rule families: SIM1xx, RNG1xx, EXA0xx.

Thin adapters: the analyses live in :mod:`repro.analysis.taint` and
:mod:`repro.analysis.contracts`; each rule filters the shared cached
result down to its own id so ``--rules SIM101`` works and per-rule
counts stay meaningful.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from ..project import ProjectContext
from .base import ProjectRule

__all__ = [
    "TimeUnitMixRule",
    "WallClockSinkRule",
    "SeedNonRootRule",
    "SeedFanoutRule",
    "ExactnessContractRule",
    "ContractTagRule",
    "ParallelOwnershipRule",
]


class TimeUnitMixRule(ProjectRule):
    id = "SIM101"
    summary = "expression mixes simulated-seconds and host-seconds operands"
    rationale = (
        "Simulated seconds (advanced by the disk/CPU cost models) and host\n"
        "seconds (read from the wall clock) are different units that happen\n"
        "to share a float type.  Adding or comparing across them produces a\n"
        "number that means nothing — and because both are 'seconds', the\n"
        "bug reads naturally and survives review.  The analyzer classifies\n"
        "every float-returning function by propagating units from known\n"
        "sources (time.monotonic, PipelineSimulator charges,\n"
        "chunk_read_time_s) through calls, returns, parameters and stored\n"
        "attributes, then flags any +, -, comparison, min() or max() whose\n"
        "operands disagree.  Fix by converting at an explicit boundary, or\n"
        "suppress with '# repro-lint: disable=SIM101' where the mix is\n"
        "intentional (e.g. a calibration report)."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for diagnostic in project.time_diagnostics():
            if diagnostic.rule == self.id:
                yield diagnostic


class WallClockSinkRule(ProjectRule):
    id = "SIM102"
    summary = "simulated-seconds value reaches a wall-clock sink (or vice versa)"
    rationale = (
        "A simulated timestamp fed to time.sleep() stalls the process for\n"
        "model-seconds; a wall-clock read fed to SimulatedClock.advance()\n"
        "contaminates the deterministic timeline with hardware noise.  Both\n"
        "directions silently break the property the paper's curves depend\n"
        "on: simulated time is a pure function of the seed and the\n"
        "workload.  The analyzer tracks units inter-procedurally and flags\n"
        "arguments whose unit contradicts the sink's declared unit\n"
        "(config.TIME_UNIT_SINKS)."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for diagnostic in project.time_diagnostics():
            if diagnostic.rule == self.id:
                yield diagnostic


class SeedNonRootRule(ProjectRule):
    id = "RNG101"
    summary = "generator seeded from non-root entropy (another generator or the clock)"
    rationale = (
        "Every random stream must be derivable from the run's root seed:\n"
        "that is what makes servesim/faultsim reruns byte-identical.\n"
        "Seeding a generator from another generator's *output*\n"
        "(default_rng(rng.integers(...))) couples the child stream to how\n"
        "many draws the parent made before — a refactor that adds one draw\n"
        "upstream silently reshuffles everything downstream.  Seeding from\n"
        "the wall clock or an entropy-less SeedSequence() is nondeterminism\n"
        "by construction.  Derive child seeds with SeedSequence.spawn() or\n"
        "keyed entropy tuples instead."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for diagnostic in project.seed_diagnostics():
            if diagnostic.rule == self.id:
                yield diagnostic


class SeedFanoutRule(ProjectRule):
    id = "RNG102"
    summary = "one seed fans out to two entropy consumers without spawn()"
    rationale = (
        "Passing the same seed value to two consumers creates two\n"
        "*identical* streams, not two independent ones: faults correlate\n"
        "with arrivals, two shards draw the same 'random' chunk order, and\n"
        "quality numbers quietly stop meaning what they claim.  The\n"
        "analyzer tracks which function parameters (transitively) feed\n"
        "generator constructions and flags a bare seed name reaching two\n"
        "such consumers in one function.  Fork child seeds with\n"
        "SeedSequence(seed).spawn(n), or derive keyed entropy tuples\n"
        "((seed, stream_id) as faults.plan does) so each consumer gets its\n"
        "own stream."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for diagnostic in project.seed_diagnostics():
            if diagnostic.rule == self.id:
                yield diagnostic


class ExactnessContractRule(ProjectRule):
    id = "EXA001"
    summary = "exact-marked code reaches an approximate API without a waiver"
    rationale = (
        "PR 5's pruned/routed/cached paths are proven bit-identical to the\n"
        "exact engine; functions carrying '# repro: exact' advertise that\n"
        "guarantee.  If such a function calls — directly or through any\n"
        "chain of unmarked helpers — something marked '# repro:\n"
        "approximate' (epsilon/PAC stop rules, degraded execution), the\n"
        "guarantee is broken while the marker still claims it.  The\n"
        "analyzer walks the call graph from every exact function and flags\n"
        "the crossing call site, with the witness path.  If the crossing\n"
        "is intended (an exact driver that *optionally* takes approximate\n"
        "stop rules), annotate the call line with '# repro:\n"
        "allow-approximate'."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        from ..contracts import check_exactness

        yield from check_exactness(project.symbols, project.callgraph)


class ContractTagRule(ProjectRule):
    id = "EXA002"
    summary = "malformed '# repro:' contract comment"
    rationale = (
        "A misspelled contract ('# repro: exactt') parses as a comment and\n"
        "enforces nothing — strictly worse than no contract, because the\n"
        "reader believes the checker is watching.  Any '# repro:' tag\n"
        "outside {exact, approximate, allow-approximate, owns(name)} is\n"
        "flagged, as is a def marked both exact and approximate."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        from ..contracts import check_contract_tags

        yield from check_contract_tags(project.symbols)


class ParallelOwnershipRule(ProjectRule):
    id = "EXA003"
    summary = "run_parallel worker mutates captured state without owns() declaration"
    rationale = (
        "The thread-sharded wall-clock path stays exact only because each\n"
        "shard owns its writes: workers may mutate shared numpy buffers\n"
        "solely where ownership is documented.  A worker closure that\n"
        "subscript-assigns into a variable captured from the enclosing\n"
        "scope is either racing other shards or relying on disjoint index\n"
        "ranges the reader cannot see.  Declare single-writer ownership\n"
        "with '# repro: owns(buffer)' on the worker or call line — the\n"
        "comment is the documented-ownership contract the rule checks for."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        from ..contracts import check_parallel_ownership

        yield from check_parallel_ownership(project.symbols, project.callgraph)
