"""DTY001/DTY002 — dtype contracts.

The distance kernels promote inputs to float64 internally and document a
float64 result; the storage layer keeps descriptors in float32 on disk.
That boundary only stays intelligible if (a) nobody "helpfully"
pre-casts kernel arguments to float32 — the promotion then happens *after*
precision has already been thrown away, changing results at the ulp level
— and (b) every public function that hands back an array says which dtype
it hands back.

* **DTY001** — a call to a distance kernel (``squared_distances``,
  ``pairwise_squared_distances``, ``euclidean_distances``) whose argument
  expression *constructs* a float32 array (``np.float32(...)``,
  ``.astype(np.float32)``, ``dtype=np.float32``, ``dtype="float32"``).
  Passing stored float32 data through a variable is fine — the kernels
  promote; constructing float32 at the call site is always a bug.
* **DTY002** — a public function annotated as returning an ndarray whose
  docstring/annotation never states a dtype.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Union

from ..diagnostics import Diagnostic
from .base import FileContext, Rule, resolve_call_target

__all__ = ["Float32IntoKernelRule", "ArrayDtypeDeclarationRule"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _mentions_float32(node: ast.AST) -> Optional[ast.AST]:
    """First descendant that constructs/names float32, or ``None``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "float32":
            return child
        if isinstance(child, ast.Name) and child.id == "float32":
            return child
        if isinstance(child, ast.Constant) and child.value == "float32":
            return child
    return None


class Float32IntoKernelRule(Rule):
    id = "DTY001"
    summary = "literal float32 construction passed to a distance kernel"
    rationale = (
        "Descriptors are float32 on disk; the distance kernels promote to\n"
        "float64 internally and are tested for bit-identical results on\n"
        "that contract.  Pre-casting an argument to float32 at the call\n"
        "site throws away precision *before* the kernel sees the data and\n"
        "perturbs distances at the ulp level — enough to reorder ties and\n"
        "break the bit-equality tests."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        kernels = ctx.config.dtype_kernels
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _kernel_name(node, ctx)
            if name is None or name not in kernels:
                continue
            arguments: List[ast.AST] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for argument in arguments:
                offender = _mentions_float32(argument)
                if offender is not None:
                    yield ctx.diagnostic(
                        offender,
                        self.id,
                        f"float32 construction in argument to {name}(); the "
                        f"kernel promotes to float64 — casting first discards "
                        f"precision and breaks bit-reproducibility",
                    )
                    break


def _kernel_name(node: ast.Call, ctx: FileContext) -> Optional[str]:
    """Unqualified kernel name of the call target, if determinable.

    Resolves through the import table first so aliased imports
    (``from .distance import squared_distances as sq``) are still
    recognized; falls back to the syntactic name.
    """
    func = node.func
    target = resolve_call_target(func, ctx.imports)
    if target is not None:
        return target.rsplit(".", 1)[-1]
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ArrayDtypeDeclarationRule(Rule):
    id = "DTY002"
    summary = "public ndarray-returning function must declare its dtype"
    rationale = (
        "The float32 (storage) / float64 (compute) boundary is only\n"
        "manageable while it is legible: every public ndarray-returning\n"
        "function must state its result dtype in its annotation or\n"
        "docstring so callers never have to guess which side of the\n"
        "boundary they are on."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            returns = node.returns
            if returns is None or not _is_plain_ndarray(returns):
                continue
            docstring = ast.get_docstring(node) or ""
            haystack = docstring.lower()
            if any(word in haystack for word in ctx.config.dtype_words):
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                f"public function '{node.name}' returns an ndarray but "
                f"neither its annotation nor its docstring states the "
                f"result dtype",
            )


def _is_plain_ndarray(annotation: ast.expr) -> bool:
    """True for a bare ``np.ndarray``/``ndarray`` return annotation.

    Parameterized annotations (``npt.NDArray[np.float64]``) already carry
    the dtype and pass; tuples/containers of arrays are out of scope.
    """
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "ndarray"
    if isinstance(annotation, ast.Name):
        return annotation.id == "ndarray"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
        return text.endswith("ndarray") or text == "ndarray"
    return False
