"""RNG001/RNG002/RNG003 — determinism discipline.

Bit-reproducible runs (the guarantee PR 1's batched engine is tested
against) require every random draw to flow from an explicitly seeded
generator.  Three distinct failure modes, three rules:

* **RNG001** — legacy ``numpy.random`` global-state calls
  (``np.random.rand``, ``np.random.seed``, ...).  Global state is shared
  across the process, so any library call can perturb the stream.
* **RNG002** — stdlib ``random`` module-level calls (``random.random()``,
  ``random.shuffle(...)``).  Same global-state problem; an explicitly
  seeded ``random.Random(seed)`` instance is fine.
* **RNG003** — ``default_rng()`` with no seed argument: seeds from OS
  entropy, so two runs diverge by construction.

All three apply to the whole package — determinism is not a per-layer
property.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..diagnostics import Diagnostic
from .base import FileContext, Rule, resolve_call_target

__all__ = ["LegacyNumpyRandomRule", "StdlibRandomRule", "UnseededRngRule"]


def _call_target(node: ast.Call, ctx: FileContext) -> Optional[str]:
    return resolve_call_target(node.func, ctx.imports)


class LegacyNumpyRandomRule(Rule):
    id = "RNG001"
    summary = "legacy numpy.random global-state call; use default_rng(seed)"
    rationale = (
        "np.random.rand/seed/shuffle share one process-global stream: any\n"
        "library call anywhere can perturb it, so runs stop being\n"
        "bit-identical the moment an import order changes.  Every draw\n"
        "must flow from an explicitly seeded np.random.default_rng(seed)\n"
        "instance owned by the caller."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, ctx)
            if target is None or not target.startswith("numpy.random."):
                continue
            attr = target[len("numpy.random.") :]
            # Modern constructs (default_rng, Generator, ...) carry their
            # own state; only the flat global-state API is forbidden.
            if "." in attr or attr in ctx.config.modern_np_random:
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                f"legacy global-state call {target}(); draw from an "
                f"explicitly seeded np.random.default_rng(seed) instead",
            )


class StdlibRandomRule(Rule):
    id = "RNG002"
    summary = "stdlib random module-level call; use a seeded random.Random"
    rationale = (
        "random.random()/random.shuffle() draw from the stdlib's shared\n"
        "global generator — the same cross-talk problem as legacy numpy\n"
        "global state.  An explicitly seeded random.Random(seed) instance\n"
        "is fine; the module-level API is not."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, ctx)
            if target is None or not target.startswith("random."):
                continue
            attr = target[len("random.") :]
            if "." in attr or attr in ctx.config.seeded_stdlib_random:
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                f"module-level call {target}() uses the shared global RNG; "
                f"use an explicitly seeded random.Random(seed) instance",
            )


class UnseededRngRule(Rule):
    id = "RNG003"
    summary = "default_rng() without a seed argument is nondeterministic"
    rationale = (
        "default_rng() with no seed (or seed=None) initializes from OS\n"
        "entropy: two runs diverge by construction, and the divergence\n"
        "surfaces far from the call site as flaky quality numbers.  Pass\n"
        "an explicit seed derived from the run's root."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, ctx)
            if target != "numpy.random.default_rng":
                continue
            seed_given = bool(node.args) or any(
                kw.arg == "seed" or kw.arg is None for kw in node.keywords
            )
            if seed_given and not _is_none_literal(node):
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                "default_rng() without a seed draws from OS entropy; pass "
                "an explicit seed so runs are reproducible",
            )


def _is_none_literal(node: ast.Call) -> bool:
    """True when the first/seed argument is a literal ``None`` — as
    nondeterministic as omitting it."""
    candidates = list(node.args[:1]) + [
        kw.value for kw in node.keywords if kw.arg == "seed"
    ]
    return any(
        isinstance(arg, ast.Constant) and arg.value is None for arg in candidates
    )
