"""Shared machinery for lint rules.

Every rule is a small class with a stable ``id``, a one-line ``summary``
and a ``check`` method that yields :class:`Diagnostic` objects for one
parsed module.  Rules never see raw files — the runner hands them a
:class:`FileContext` carrying the parsed AST, the package-relative path,
the resolved layer and an :class:`ImportTable` for name resolution.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional

from ..config import LintConfig
from ..diagnostics import Diagnostic

__all__ = ["FileContext", "ImportTable", "Rule", "resolve_call_target"]


class ImportTable:
    """Maps local names to the dotted module/attribute paths they import.

    The table flattens scope: an import inside a function binds the name
    for the whole file.  That is deliberately conservative — the linter
    asks "could this name refer to ``time.perf_counter``?", and a
    function-local import makes the answer yes.

    Examples of recorded bindings::

        import time                      ->  {"time": "time"}
        import numpy as np               ->  {"np": "numpy"}
        from time import perf_counter    ->  {"perf_counter": "time.perf_counter"}
        from numpy import random as npr  ->  {"npr": "numpy.random"}
        from ..simio import clock        ->  {"clock": "repro.simio.clock"}
    """

    def __init__(self, module: ast.Module, module_package: str):
        #: dotted path of the package containing this module, used to
        #: resolve relative imports ("repro.core" for repro/core/search.py).
        self._module_package = module_package
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b.c" binds "a" (to package a) unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk ``level`` packages up from the module's
        # package, then append the explicit module path (if any).
        parts = self._module_package.split(".") if self._module_package else []
        if node.level - 1 > 0:
            parts = parts[: -(node.level - 1)] if node.level - 1 <= len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def resolve(self, name: str) -> Optional[str]:
        """Dotted import path bound to ``name``, or ``None``."""
        return self.bindings.get(name)


def resolve_call_target(func: ast.expr, imports: ImportTable) -> Optional[str]:
    """Best-effort dotted path of a call target expression.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``"numpy.random.rand"``; a bare ``perf_counter`` imported from
    :mod:`time` resolves to ``"time.perf_counter"``.  Returns ``None``
    for targets rooted in local variables (attribute chains whose base is
    not an imported name).
    """
    chain: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.resolve(node.id)
    if base is None:
        return None
    chain.append(base)
    return ".".join(reversed(chain))


@dataclasses.dataclass(frozen=True)
class FileContext:
    """Everything rules need to know about one file under lint."""

    relpath: str  #: package-relative posix path, e.g. "core/search.py"
    layer: str  #: resolved layer name, e.g. "core"
    module_package: str  #: dotted package of the module, e.g. "repro.core"
    tree: ast.Module
    imports: ImportTable
    config: LintConfig

    def diagnostic(
        self, node: ast.AST, rule: str, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement ``check``."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id}: {self.summary}>"
