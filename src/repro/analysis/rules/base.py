"""Shared machinery for lint rules.

Every rule is a small class with a stable ``id``, a one-line ``summary``
and a ``check`` method that yields :class:`Diagnostic` objects for one
parsed module.  Rules never see raw files — the runner hands them a
:class:`FileContext` carrying the parsed AST, the package-relative path,
the resolved layer and an :class:`ImportTable` for name resolution.

Whole-program rules subclass :class:`ProjectRule` instead and receive
the project context (symbol table + call graph) from the runner; their
``check`` is never called.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Dict, Iterator

from ..config import LintConfig
from ..diagnostics import Diagnostic
from ..imports import ImportTable, canonicalize, resolve_call_target

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ProjectContext

__all__ = [
    "FileContext",
    "ImportTable",
    "ProjectRule",
    "Rule",
    "canonicalize",
    "resolve_call_target",
]


@dataclasses.dataclass(frozen=True)
class FileContext:
    """Everything rules need to know about one file under lint."""

    relpath: str  #: package-relative posix path, e.g. "core/search.py"
    layer: str  #: resolved layer name, e.g. "core"
    module_package: str  #: dotted package of the module, e.g. "repro.core"
    tree: ast.Module
    imports: ImportTable
    config: LintConfig
    #: project-wide ``__init__`` re-export map (empty for standalone
    #: single-file lints); lets LAY001 see through re-exported symbols.
    reexports: Dict[str, str] = dataclasses.field(default_factory=dict)

    def canonical(self, dotted: str) -> str:
        return canonicalize(dotted, self.reexports)

    def diagnostic(
        self, node: ast.AST, rule: str, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement ``check``.

    ``rationale`` is the long-form explanation printed by ``repro lint
    --explain RULE`` — why the invariant exists, not just what it bans.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id}: {self.summary}>"


class ProjectRule(Rule):
    """A rule that needs the whole program, not one file.

    The runner builds one :class:`~repro.analysis.project.ProjectContext`
    per lint run (symbol table, call graph, cached taint results) and
    calls ``check_project`` once; diagnostics are then routed through the
    same suppression/baseline machinery as per-file findings.
    """

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:  # pragma: no cover
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        raise NotImplementedError
