"""DUR001 — durable writes go through the sanctioned paths.

Every on-disk artifact the search depends on (collection, chunk and
index files, WAL logs, delta segments, manifests) must be produced by
one of the two crash-safe write sites: the write-temp/fsync/rename
helper in :mod:`repro.storage.atomic` (and the chunk-file writer built
on the same discipline) or the WAL writer's framed group commit.  A
bare ``open(path, "w")`` or ``os.replace`` anywhere else can leave a
torn file under a final name — a durability hole no test notices until
a crash lands in exactly the wrong window.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..diagnostics import Diagnostic
from .base import FileContext, Rule, resolve_call_target

__all__ = ["DurabilityRule"]

#: Fully-resolved call targets that rename over a final name.
_RENAME_CALLS = frozenset({"os.replace", "os.rename"})

#: Method names that write a whole file through a path object.
_PATH_WRITE_METHODS = frozenset({"write_bytes", "write_text"})


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open`` call if it writes.

    Returns ``None`` for read-only modes and for dynamic mode
    expressions (conservative: only provably-writing calls are flagged).
    """
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(flag in mode.value for flag in "wax+"):
            return mode.value
        return None
    return None


class DurabilityRule(Rule):
    id = "DUR001"
    summary = (
        "direct write/rename to a collection/index/chunk/WAL path outside "
        "storage.atomic or the WAL writer; use the crash-safe write sites"
    )
    rationale = (
        "Crash safety in this repo is a property of exactly three write\n"
        "sites: storage/atomic.py (write-temp, fsync, atomic rename),\n"
        "storage/chunk_file.py (the same discipline plus CRC tables) and\n"
        "storage/wal.py (framed, checksummed group commit).  Recovery\n"
        "reasons about what those sites guarantee — a file under its\n"
        "final name is complete, a WAL batch past its commit marker is\n"
        "whole.  A bare open(path, 'w') or os.replace against an index,\n"
        "chunk, collection, segment, manifest or WAL path anywhere else\n"
        "can publish a torn file and silently break every one of those\n"
        "recovery invariants.  Inside the storage layer any direct write\n"
        "is flagged; elsewhere, writes whose path expressions mention a\n"
        "durable artifact are.  Report/plot outputs (JSON exports, SARIF)\n"
        "are not durable state and stay unflagged."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.relpath in ctx.config.durable_write_sanctioned:
            return
        in_storage = ctx.layer == "storage"
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            description = self._write_description(node, ctx)
            if description is None:
                continue
            if not in_storage and not self._touches_durable_path(node, ctx):
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                f"{description}; durable artifacts must be written via "
                "storage.atomic or the WAL writer",
            )

    def _write_description(
        self, node: ast.Call, ctx: FileContext
    ) -> Optional[str]:
        """A human-readable label when ``node`` performs a file write."""
        target = resolve_call_target(node.func, ctx.imports)
        if target in _RENAME_CALLS:
            return f"direct {target}() over a final name"
        if target == "open" or (
            isinstance(node.func, ast.Name) and node.func.id == "open"
        ):
            mode = _open_write_mode(node)
            if mode is not None:
                return f"direct open(..., {mode!r})"
            return None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PATH_WRITE_METHODS
        ):
            return f"direct .{node.func.attr}()"
        return None

    def _touches_durable_path(self, node: ast.Call, ctx: FileContext) -> bool:
        """True when any argument expression names a durable artifact."""
        pieces = [ast.unparse(arg) for arg in node.args]
        pieces.extend(
            ast.unparse(keyword.value) for keyword in node.keywords
        )
        if isinstance(node.func, ast.Attribute):
            pieces.append(ast.unparse(node.func.value))
        text = " ".join(pieces).lower()
        return any(
            keyword in text for keyword in ctx.config.durable_path_keywords
        )
