"""Rule registry for ``repro lint``.

Two kinds of rules: per-file rules (CLK/RNG00x/DTY/LAY — one parsed
module at a time) and whole-program rules (SIM/RNG1xx/EXA — symbol
table + call graph, built once per run).  :func:`all_rules` returns
fresh instances of both; the runner dispatches on the kind.
:data:`RULE_IDS` is the stable id list used by ``--rules`` validation
and the JSON report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import FileContext, ImportTable, ProjectRule, Rule, resolve_call_target
from .determinism import LegacyNumpyRandomRule, StdlibRandomRule, UnseededRngRule
from .dtype import ArrayDtypeDeclarationRule, Float32IntoKernelRule
from .durability import DurabilityRule
from .layering import LayerBoundaryRule
from .project_rules import (
    ContractTagRule,
    ExactnessContractRule,
    ParallelOwnershipRule,
    SeedFanoutRule,
    SeedNonRootRule,
    TimeUnitMixRule,
    WallClockSinkRule,
)
from .wall_clock import WallClockRule

__all__ = [
    "FileContext",
    "ImportTable",
    "ProjectRule",
    "Rule",
    "resolve_call_target",
    "all_rules",
    "RULE_IDS",
    "RULE_CLASSES",
    "select_rules",
]

RULE_CLASSES = (
    WallClockRule,
    LegacyNumpyRandomRule,
    StdlibRandomRule,
    UnseededRngRule,
    Float32IntoKernelRule,
    ArrayDtypeDeclarationRule,
    DurabilityRule,
    LayerBoundaryRule,
    TimeUnitMixRule,
    WallClockSinkRule,
    SeedNonRootRule,
    SeedFanoutRule,
    ExactnessContractRule,
    ContractTagRule,
    ParallelOwnershipRule,
)

RULE_IDS: List[str] = [cls.id for cls in RULE_CLASSES]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [cls() for cls in RULE_CLASSES]


def select_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instances for ``ids`` (all rules when ``None``).

    Raises ``ValueError`` on an unknown id, listing the valid ones.
    """
    if ids is None:
        return all_rules()
    by_id: Dict[str, type] = {cls.id: cls for cls in RULE_CLASSES}
    unknown = sorted(set(ids) - set(by_id))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"valid: {', '.join(RULE_IDS)}"
        )
    return [by_id[rule_id]() for rule_id in ids]
