"""Exactness contracts (EXA0xx): call-graph enforcement of ``# repro:``
annotations.

PR 5 proved the pruned/routed/cached scan paths bit-identical to the
exact engine; that equivalence is a *social* contract between functions
— "this helper never changes results" — which nothing enforced.  Now it
is declared in source::

    # repro: exact
    def exact_remaining_lb(self) -> float: ...

    # repro: approximate
    def check(self, progress: SearchProgress) -> ...:  # epsilon stop rule

and the analyzer walks the call graph:

* **EXA001** — a function marked ``exact`` calls (directly or through
  any chain of unmarked helpers) a function marked ``approximate``.
  A call site annotated ``# repro: allow-approximate`` is an explicit,
  reviewed waiver and is skipped — and also stops propagation through
  unmarked helpers, so one vetted crossing does not taint every caller.
* **EXA002** — a malformed contract comment: an unknown tag, or a def
  carrying both ``exact`` and ``approximate``.  Misspelled contracts
  silently enforce nothing, which is worse than none.
* **EXA003** — concurrency ownership on the thread-sharded path: a
  worker callable handed to :func:`repro.parallel.run_parallel` mutates
  (subscript-stores into) a variable captured from the enclosing scope
  without a ``# repro: owns(name)`` declaration.  Shards writing into a
  shared numpy buffer without declared ownership is exactly the data
  race the per-shard-cache design exists to rule out.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite
from .diagnostics import Diagnostic
from .symbols import KNOWN_TAGS, SymbolTable

__all__ = [
    "check_contract_tags",
    "check_exactness",
    "check_parallel_ownership",
    "RUN_PARALLEL",
]

RUN_PARALLEL = "repro.parallel.run_parallel"
_OWNS_PREFIX = "owns("


def _is_known_tag(tag: str) -> bool:
    return tag in KNOWN_TAGS or (tag.startswith(_OWNS_PREFIX) and tag.endswith(")"))


def check_contract_tags(symbols: SymbolTable) -> List[Diagnostic]:
    """EXA002: unknown tags and exact+approximate double-marking."""
    diagnostics: List[Diagnostic] = []
    for relpath in sorted(symbols.by_relpath):
        info = symbols.by_relpath[relpath]
        for line, tags in info.contracts.lines():
            for tag in tags:
                if not _is_known_tag(tag):
                    diagnostics.append(
                        Diagnostic(
                            path=relpath,
                            line=line,
                            col=0,
                            rule="EXA002",
                            message=(
                                f"unknown contract tag '# repro: {tag}'; valid "
                                f"tags: exact, approximate, allow-approximate, "
                                f"owns(name)"
                            ),
                        )
                    )
            if "exact" in tags and "approximate" in tags:
                diagnostics.append(
                    Diagnostic(
                        path=relpath,
                        line=line,
                        col=0,
                        rule="EXA002",
                        message="a function cannot be both exact and approximate",
                    )
                )
    return diagnostics


def _waived(site: CallSite, symbols: SymbolTable) -> bool:
    info = symbols.by_relpath.get(site.relpath)
    if info is None:
        return False
    return "allow-approximate" in info.contracts.tags_on(site.node.lineno)


def _reaches_approximate(
    symbols: SymbolTable, graph: CallGraph
) -> Dict[str, Tuple[str, ...]]:
    """For every function, the witness path of qualnames by which it
    reaches an ``approximate``-marked function, if it does.

    ``exact``-marked functions do not propagate (they are flagged at
    their own call sites instead); waived call sites cut the chain.
    """
    reaches: Dict[str, Tuple[str, ...]] = {}
    for fn in symbols.sorted_functions():
        if fn.contract == "approximate":
            reaches[fn.qualname] = (fn.qualname,)
    changed = True
    while changed:
        changed = False
        for fn in symbols.sorted_functions():
            if fn.contract is not None or fn.qualname in reaches:
                continue
            for site in graph.calls_from(fn.qualname):
                if site.resolved is None:
                    continue
                path = reaches.get(site.resolved.qualname)
                if path is None or _waived(site, symbols):
                    continue
                reaches[fn.qualname] = (fn.qualname,) + path
                changed = True
                break
    return reaches


def check_exactness(symbols: SymbolTable, graph: CallGraph) -> List[Diagnostic]:
    """EXA001: exact code reaching approximate APIs without a waiver."""
    reaches = _reaches_approximate(symbols, graph)
    diagnostics: List[Diagnostic] = []
    for fn in symbols.sorted_functions():
        if fn.contract != "exact":
            continue
        for site in graph.calls_from(fn.qualname):
            if site.resolved is None or _waived(site, symbols):
                continue
            callee = site.resolved.qualname
            path = reaches.get(callee)
            if path is None:
                continue
            if len(path) == 1:
                detail = f"calls approximate {callee}()"
            else:
                detail = (
                    f"reaches approximate {path[-1]}() via "
                    + " -> ".join(p.rsplit(".", 2)[-1] for p in path[:-1])
                )
            diagnostics.append(
                Diagnostic(
                    path=site.relpath,
                    line=site.node.lineno,
                    col=site.node.col_offset,
                    rule="EXA001",
                    message=(
                        f"exact-marked {fn.qualname}() {detail}; add "
                        f"'# repro: allow-approximate' if this crossing is "
                        f"intended, or fix the exactness claim"
                    ),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# EXA003 — run_parallel worker ownership
# ---------------------------------------------------------------------------


def _worker_node(site: CallSite, symbols: SymbolTable) -> Optional[ast.AST]:
    """The worker callable's AST: a lambda argument, or a nested def in
    the calling function with the referenced name."""
    if not site.node.args:
        return None
    worker = site.node.args[0]
    if isinstance(worker, ast.Lambda):
        return worker
    if isinstance(worker, ast.Name):
        caller = symbols.functions.get(site.caller)
        scope = caller.node if caller is not None else None
        if scope is None:
            info = symbols.modules.get(site.caller)
            scope = info.tree if info is not None else None
        if scope is not None:
            for node in ast.walk(scope):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == worker.id
                ):
                    return node
    return None


def _local_names(worker: ast.AST) -> Set[str]:
    """Names the worker owns by construction: parameters and anything it
    assigns whole (not element-wise) inside its own body."""
    names: Set[str] = set()
    args = getattr(worker, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    body = worker.body if isinstance(worker.body, list) else [worker.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.optional_vars is not None:
                        for name_node in ast.walk(item.optional_vars):
                            if isinstance(name_node, ast.Name):
                                names.add(name_node.id)
    return names


def check_parallel_ownership(
    symbols: SymbolTable, graph: CallGraph
) -> List[Diagnostic]:
    """EXA003: captured-variable mutation inside run_parallel workers."""
    diagnostics: List[Diagnostic] = []
    for site in graph.callers_of(RUN_PARALLEL):
        worker = _worker_node(site, symbols)
        if worker is None:
            continue
        info = symbols.by_relpath.get(site.relpath)
        owned: Set[str] = set()
        if info is not None:
            for line in (
                site.node.lineno,
                getattr(worker, "lineno", site.node.lineno),
            ):
                owned.update(info.contracts.owned_on(line))
                owned.update(info.contracts.owned_on(line - 1))
        local = _local_names(worker)
        body = worker.body if isinstance(worker.body, list) else [worker.body]
        seen: Set[Tuple[int, int, str]] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                target: Optional[ast.AST] = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for t in targets:
                        if isinstance(t, ast.Subscript):
                            target = t
                            break
                if target is None:
                    continue
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                name = base.id
                if name in local or name in owned or name == "self":
                    continue
                key = (node.lineno, node.col_offset, name)
                if key in seen:
                    continue
                seen.add(key)
                diagnostics.append(
                    Diagnostic(
                        path=site.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="EXA003",
                        message=(
                            f"run_parallel worker mutates captured '{name}' "
                            f"without declared ownership; threads sharing a "
                            f"buffer race unless a '# repro: owns({name})' "
                            f"comment documents single-writer ownership"
                        ),
                    )
                )
    return diagnostics
