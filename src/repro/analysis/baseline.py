"""Baseline / ratchet: land strict rules without a flag-day cleanup.

``repro lint --write-baseline`` records the current diagnostics into
``.repro-lint-baseline.json``; subsequent runs subtract the baseline and
fail only on **new** findings.  The contract is a ratchet: the baseline
may shrink (fix a legacy finding, regenerate) but any growth is a
regression the gate catches.

Fingerprints are ``path::rule::message`` — deliberately *line-free*, so
unrelated edits that shift line numbers do not resurrect baselined
findings.  Multiple identical findings are counted: a baseline entry
with count 2 absorbs at most two matching diagnostics, so adding a third
instance of an already-baselined bug still fails.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from .diagnostics import Diagnostic

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

#: Schema version of the baseline file (bump on incompatible change).
BASELINE_SCHEMA_VERSION = 1


def fingerprint(diagnostic: Diagnostic) -> str:
    return f"{diagnostic.path}::{diagnostic.rule}::{diagnostic.message}"


def write_baseline(path: str, diagnostics: Sequence[Diagnostic]) -> int:
    """Record ``diagnostics`` as the accepted baseline; returns count."""
    counts: Dict[str, int] = {}
    for diagnostic in sorted(diagnostics):
        key = fingerprint(diagnostic)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": len(diagnostics),
        "fingerprints": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return len(diagnostics)


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint counts from a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"not a repro-lint baseline file: {path}")
    fingerprints = payload["fingerprints"]
    return {str(key): int(value) for key, value in fingerprints.items()}


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Dict[str, int]
) -> Tuple[List[Diagnostic], int]:
    """Split into (new findings, suppressed count).

    Diagnostics are consumed against the baseline in sorted order, so
    which instance of a duplicated finding counts as "new" is
    deterministic (the later ones)."""
    remaining = dict(baseline)
    fresh: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in sorted(diagnostics):
        key = fingerprint(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(diagnostic)
    return fresh, suppressed
