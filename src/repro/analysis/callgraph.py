"""Project call graph + the local type tracking that makes it resolvable.

Python call targets are rarely a simple imported name: the interesting
edges in this repo go through instance attributes (``self.cost_model
.simulator()``), typed parameters (``model: CostModel``) and forward-ref
return annotations (``-> "PipelineSimulator"``).  :class:`LocalResolver`
tracks just enough types — project classes only, assignments in source
order, no unification — to resolve those chains; :class:`CallGraph` runs
it over every function and records the edges.

Everything here is deterministic: functions are visited in sorted
qualname order and edges keep their discovery order within a function.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Tuple

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, SymbolTable

__all__ = ["CallSite", "CallGraph", "LocalResolver", "attribute_types"]


@dataclasses.dataclass
class CallSite:
    """One call expression, resolved as far as we can."""

    caller: str  #: qualname of the enclosing function (or module for top level)
    callee: str  #: canonical dotted target ("time.monotonic", "repro.core...")
    resolved: Optional[FunctionInfo]  #: project function, when the target is one
    node: ast.Call
    relpath: str


def _annotation_to_class(
    annotation: Optional[ast.AST], info: ModuleInfo, symbols: SymbolTable
) -> Optional[str]:
    """Project class qualname named by an annotation, else None.

    Handles ``Name``, ``Attribute`` chains, string forward refs and a
    single ``Optional[...]``/``"X" | None`` wrapper; anything fancier is
    treated as untyped (the resolver just loses that edge).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        base_name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if base_name == "Optional":
            return _annotation_to_class(annotation.slice, info, symbols)
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_to_class(side, info, symbols)
        return None
    chain: List[str] = []
    node = annotation
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = info.imports.resolve(node.id)
    if base is None:
        # A module-local class, or one whose name only exists in this
        # module's namespace.
        local = f"{info.module}.{node.id}"
        base = local if symbols.class_of(local) else None
        if base is None:
            return None
    dotted = ".".join(reversed(chain + [base]))
    cls = symbols.class_of(dotted)
    return cls.qualname if cls else None


def return_class_of(fn: FunctionInfo, symbols: SymbolTable) -> Optional[str]:
    """Project class a function's return annotation names, if any."""
    info = symbols.modules.get(fn.module)
    if info is None:
        return None
    return _annotation_to_class(getattr(fn.node, "returns", None), info, symbols)


def attribute_types(symbols: SymbolTable) -> Dict[Tuple[str, str], str]:
    """Instance-attribute types: ``(class_qual, attr) -> class_qual``.

    Sources, in increasing priority: annotated class-body fields
    (dataclass fields like ``disk: DiskModel``) and ``self.attr = <expr
    of known class>`` assignments in any method.  Two passes, so attrs
    assigned from other typed attrs resolve too.
    """
    attr_types: Dict[Tuple[str, str], str] = {}
    for _ in range(2):
        for cls_qual in sorted(symbols.classes):
            cls = symbols.classes[cls_qual]
            info = symbols.modules[cls.module]
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    typed = _annotation_to_class(stmt.annotation, info, symbols)
                    if typed:
                        attr_types[(cls_qual, stmt.target.id)] = typed
            for method_qual in sorted(cls.methods.values()):
                fn = symbols.functions[method_qual]
                resolver = LocalResolver(symbols, info, fn, attr_types)
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    typed = resolver.type_of(node.value)
                    if not typed:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attr_types[(cls_qual, target.attr)] = typed
    return attr_types


class LocalResolver:
    """Resolves names, attribute chains and call targets inside one
    function body (or module top level when ``fn`` is None)."""

    def __init__(
        self,
        symbols: SymbolTable,
        info: ModuleInfo,
        fn: Optional[FunctionInfo],
        attr_types: Optional[Dict[Tuple[str, str], str]] = None,
    ):
        self.symbols = symbols
        self.info = info
        self.fn = fn
        self.attr_types = attr_types if attr_types is not None else {}
        #: local variable -> project class qualname
        self.env: Dict[str, str] = {}
        if fn is not None:
            if fn.class_name is not None:
                self.env["self"] = f"{fn.module}.{fn.class_name}"
            args = getattr(fn.node, "args", None)
            if args is not None:
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    typed = _annotation_to_class(arg.annotation, info, symbols)
                    if typed:
                        self.env[arg.arg] = typed

    # -- types ---------------------------------------------------------------

    def observe_assign(self, node: ast.Assign) -> None:
        """Record ``var = <expr of known class>`` (called in source order)."""
        typed = self.type_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if typed:
                    self.env[target.id] = typed
                else:
                    self.env.pop(target.id, None)

    def type_of(self, expr: ast.AST) -> Optional[str]:
        """Project class qualname of an expression's value, else None."""
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None:
                attr_cls = self.attr_types.get((base, expr.attr))
                if attr_cls:
                    return attr_cls
                # Property with a class-valued return annotation.
                prop = self.symbols.functions.get(f"{base}.{expr.attr}")
                if prop is not None:
                    return return_class_of(prop, self.symbols)
            return None
        if isinstance(expr, ast.Call):
            dotted, resolved = self.callee_of(expr)
            if dotted is not None:
                cls = self.symbols.class_of(dotted)
                if cls is not None:
                    return cls.qualname
            if resolved is not None:
                return return_class_of(resolved, self.symbols)
            return None
        return None

    # -- call / name resolution ----------------------------------------------

    def dotted_of(self, expr: ast.AST) -> Optional[str]:
        """Canonical dotted path of a name/attribute chain, through
        imports, typed locals and re-exports.  ``sim.elapsed`` with a
        typed ``sim`` resolves to ``repro.simio.pipeline
        .PipelineSimulator.elapsed``."""
        if isinstance(expr, ast.Name):
            imported = self.info.imports.resolve(expr.id)
            if imported is not None:
                return self.symbols.canonical(imported)
            local = f"{self.info.module}.{expr.id}"
            if (
                self.symbols.function(local) is not None
                or self.symbols.class_of(local) is not None
            ):
                return self.symbols.canonical(local)
            return None
        if isinstance(expr, ast.Attribute):
            typed = self.type_of(expr.value)
            if typed is not None:
                return f"{typed}.{expr.attr}"
            base = self.dotted_of(expr.value)
            if base is not None:
                return self.symbols.canonical(f"{base}.{expr.attr}")
            return None
        return None

    def callee_of(self, call: ast.Call) -> Tuple[Optional[str], Optional[FunctionInfo]]:
        """(canonical dotted target, project FunctionInfo) of one call."""
        dotted = self.dotted_of(call.func)
        if dotted is None:
            return None, None
        return dotted, self.symbols.resolve_function(dotted)


def _walk_in_order(body: List[ast.stmt]) -> List[ast.AST]:
    """All nodes of ``body`` in source order (ast.walk is BFS; we want
    assignments observed before the calls that use them)."""
    out: List[ast.AST] = []
    for stmt in body:
        for node in ast.walk(stmt):
            out.append(node)
    out.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    return out


class CallGraph:
    """All resolved call sites, indexed both ways."""

    def __init__(self, sites: List[CallSite]):
        self.sites = sites
        self.by_caller: Dict[str, List[CallSite]] = {}
        self.by_callee: Dict[str, List[CallSite]] = {}
        for site in sites:
            self.by_caller.setdefault(site.caller, []).append(site)
            self.by_callee.setdefault(site.callee, []).append(site)

    @classmethod
    def build(
        cls,
        symbols: SymbolTable,
        attr_types: Optional[Dict[Tuple[str, str], str]] = None,
    ) -> "CallGraph":
        attr_types = attr_types if attr_types is not None else attribute_types(symbols)
        sites: List[CallSite] = []
        for fn in symbols.sorted_functions():
            info = symbols.modules[fn.module]
            resolver = LocalResolver(symbols, info, fn, attr_types)
            body = getattr(fn.node, "body", [])
            nested = _nested_def_spans(fn.node)
            for node in _walk_in_order(body):
                if isinstance(node, ast.Assign):
                    resolver.observe_assign(node)
                elif isinstance(node, ast.Call):
                    dotted, resolved = resolver.callee_of(node)
                    if dotted is not None:
                        sites.append(
                            CallSite(fn.qualname, dotted, resolved, node, fn.relpath)
                        )
            del nested  # nested defs stay part of the enclosing function
        # Module-level calls (constants, registries): caller = module name.
        for module in sorted(symbols.modules):
            info = symbols.modules[module]
            resolver = LocalResolver(symbols, info, None, attr_types)
            for node in _top_level_nodes(info.tree):
                if isinstance(node, ast.Assign):
                    resolver.observe_assign(node)
                elif isinstance(node, ast.Call):
                    dotted, resolved = resolver.callee_of(node)
                    if dotted is not None:
                        sites.append(CallSite(module, dotted, resolved, node, info.relpath))
        return cls(sites)

    def calls_from(self, qualname: str) -> List[CallSite]:
        return self.by_caller.get(qualname, [])

    def callers_of(self, dotted: str) -> List[CallSite]:
        return self.by_callee.get(dotted, [])


def _nested_def_spans(fn_node: ast.AST) -> List[ast.AST]:
    return [
        node
        for node in ast.walk(fn_node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn_node
    ]


def _top_level_nodes(tree: ast.Module) -> List[ast.AST]:
    """Nodes outside any def/class body, in source order."""
    out: List[ast.AST] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            out.append(node)
    out.sort(key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)))
    return out
