"""Project symbol table: every module, class and function, built once.

The per-file rules (CLK/RNG/DTY/LAY) only ever needed one parsed module
at a time.  The inter-procedural families (SIM/RNG1xx/EXA) need the whole
program: which qualified names exist, which ``__init__.py`` re-exports
point where, which functions carry ``# repro:`` contract comments.  This
module builds that view in one pass over the already-parsed trees — no
imports are executed, everything is derived from source text.

Naming convention: *qualnames* are fully dotted and rooted at the package
(``repro.core.search.ChunkSearcher.search``); *modules* are dotted module
paths (``repro.core.search``).
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .imports import ImportTable, canonicalize
from .suppressions import SuppressionIndex, parse_suppressions

__all__ = [
    "ContractIndex",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "parse_contracts",
]

#: ``# repro: <tag>`` contract comment.  Tags with arguments (``owns``)
#: keep their parenthesised payload.
_CONTRACT = re.compile(r"#\s*repro:\s*([A-Za-z-]+(?:\([^)]*\))?)")

#: Tags the analyzer understands; anything else is an EXA002 finding.
KNOWN_TAGS = frozenset({"exact", "approximate", "allow-approximate"})
_OWNS = re.compile(r"owns\(([A-Za-z0-9_,\s]*)\)")


class ContractIndex:
    """Per-line ``# repro:`` annotations for one source file.

    ``tags_on(line)`` returns the raw tags written on that line;
    ``owned_on(line)`` the names declared via ``owns(a, b)``.  Unknown
    tags are kept (the contract rule reports them) — only parsing, no
    judgement, happens here.
    """

    def __init__(self, by_line: Dict[int, Tuple[str, ...]]):
        self._by_line = by_line

    def tags_on(self, line: int) -> Tuple[str, ...]:
        return self._by_line.get(line, ())

    def owned_on(self, line: int) -> Tuple[str, ...]:
        names: List[str] = []
        for tag in self._by_line.get(line, ()):
            match = _OWNS.fullmatch(tag)
            if match:
                names.extend(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
        return tuple(names)

    def lines(self) -> Iterator[Tuple[int, Tuple[str, ...]]]:
        for line in sorted(self._by_line):
            yield line, self._by_line[line]

    def __len__(self) -> int:
        return len(self._by_line)


def parse_contracts(source: str) -> ContractIndex:
    """Extract ``# repro:`` comments from the token stream.

    Like suppressions, contracts are parsed from tokens (not regex over
    raw lines) so string literals containing the marker are inert.
    """
    by_line: Dict[int, Tuple[str, ...]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            tags = tuple(
                match.group(1).strip() for match in _CONTRACT.finditer(token.string)
            )
            if not tags:
                continue
            line = token.start[0]
            by_line[line] = by_line.get(line, ()) + tags
    except (tokenize.TokenError, IndentationError):
        pass
    return ContractIndex(by_line)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: e.g. "repro.core.search.ChunkSearcher.search"
    module: str  #: dotted module, e.g. "repro.core.search"
    relpath: str  #: package-relative path of the defining file
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str]  #: enclosing class name, if a method
    params: Tuple[str, ...]  #: positional+keyword parameter names, in order
    contract: Optional[str] = None  #: "exact" / "approximate" from # repro:
    contract_line: int = 0

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]


@dataclasses.dataclass
class ClassInfo:
    """One class definition (methods live in :class:`FunctionInfo`)."""

    qualname: str
    module: str
    relpath: str
    node: ast.ClassDef
    is_dataclass: bool
    methods: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: annotated class-body field names (the dataclass field order)
    fields: Tuple[str, ...] = ()


@dataclasses.dataclass
class ModuleInfo:
    """Everything the analyzer keeps per source file."""

    module: str  #: dotted module path, e.g. "repro.core.search"
    package: str  #: dotted package for relative-import resolution
    relpath: str
    source: str
    tree: ast.Module
    imports: ImportTable
    suppressions: SuppressionIndex
    contracts: ContractIndex
    functions: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)


def _module_name(package: str, relpath: str) -> str:
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def _package_of(package: str, relpath: str) -> str:
    directories = relpath.split("/")[:-1]
    return ".".join([package] + directories)


def _is_dataclass_decorated(node: ast.ClassDef, imports: ImportTable) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain: List[str] = []
        while isinstance(target, ast.Attribute):
            chain.append(target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            dotted = imports.resolve(target.id) or target.id
            chain.append(dotted)
            full = ".".join(reversed(chain))
            if full in ("dataclasses.dataclass", "dataclass"):
                return True
    return False


def _function_params(node: ast.AST) -> Tuple[str, ...]:
    args = getattr(node, "args", None)
    if args is None:
        return ()
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return tuple(names)


def _contract_for_def(node: ast.AST, contracts: ContractIndex) -> Tuple[Optional[str], int]:
    """Contract tag attached to a def: on the def line, on any decorator
    line, or on the line directly above the first of those."""
    lines = [getattr(node, "lineno", 1)]
    for decorator in getattr(node, "decorator_list", []):
        lines.append(decorator.lineno)
    first = min(lines)
    for line in sorted(set(lines)) + [first - 1]:
        for tag in contracts.tags_on(line):
            if tag in ("exact", "approximate"):
                return tag, line
    return None, 0


class SymbolTable:
    """All modules of one package, with name resolution across them.

    ``reexports`` maps a re-exported dotted name to its defining dotted
    name: ``repro.simio.LruChunkCache`` ->
    ``repro.simio.chunk_cache.LruChunkCache``, derived from the
    ``from .x import y`` statements of every ``__init__.py``.
    :meth:`canonical` chases those chains to a fixed point — this is the
    resolution step the per-file :class:`ImportTable` cannot do alone,
    and the fix for the LAY001 false negative on symbols re-exported
    through a package ``__init__``.
    """

    def __init__(self, package: str):
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        #: by relpath, in deterministic (sorted-path) order
        self.by_relpath: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.reexports: Dict[str, str] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls, package: str, files: Sequence[Tuple[str, str, ast.Module]]
    ) -> "SymbolTable":
        """Build from ``(relpath, source, parsed_tree)`` triples.

        Files that failed to parse are simply absent — the runner reports
        their PARSE diagnostics separately and whole-program analysis
        proceeds on what remains.
        """
        table = cls(package)
        for relpath, source, tree in sorted(files, key=lambda item: item[0]):
            table._add_module(relpath, source, tree)
        table._build_reexports()
        return table

    def _add_module(self, relpath: str, source: str, tree: ast.Module) -> None:
        module = _module_name(self.package, relpath)
        package = _package_of(self.package, relpath)
        info = ModuleInfo(
            module=module,
            package=package,
            relpath=relpath,
            source=source,
            tree=tree,
            imports=ImportTable(tree, package),
            suppressions=parse_suppressions(source),
            contracts=parse_contracts(source),
        )
        self._collect_defs(info)
        self.modules[module] = info
        self.by_relpath[relpath] = info

    def _collect_defs(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{info.module}.{node.name}"
                fields = tuple(
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                )
                class_info = ClassInfo(
                    qualname=cls_qual,
                    module=info.module,
                    relpath=info.relpath,
                    node=node,
                    is_dataclass=_is_dataclass_decorated(node, info.imports),
                    fields=fields,
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(info, item, class_name=node.name)
                        class_info.methods[item.name] = fn.qualname
                self.classes[cls_qual] = class_info
                info.classes[cls_qual] = class_info

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
    ) -> FunctionInfo:
        name = getattr(node, "name", "<lambda>")
        qualname = (
            f"{info.module}.{class_name}.{name}" if class_name else f"{info.module}.{name}"
        )
        contract, contract_line = _contract_for_def(node, info.contracts)
        fn = FunctionInfo(
            qualname=qualname,
            module=info.module,
            relpath=info.relpath,
            node=node,
            class_name=class_name,
            params=_function_params(node),
            contract=contract,
            contract_line=contract_line,
        )
        self.functions[qualname] = fn
        info.functions[qualname] = fn
        return fn

    def _build_reexports(self) -> None:
        """Record ``pkg.name -> pkg.sub.name`` for every ``__init__``
        import.  Plain submodule imports are not re-exports (``pkg.sub``
        already resolves); only ``from``-imports that bind a *name* are."""
        for info in self.modules.values():
            if not info.relpath.endswith("__init__.py"):
                continue
            for local, target in info.imports.bindings.items():
                exported = f"{info.module}.{local}"
                if target != exported and target.startswith(self.package + "."):
                    self.reexports[exported] = target

    # -- resolution ----------------------------------------------------------

    def canonical(self, dotted: str) -> str:
        """Chase re-export chains to the defining dotted name.

        Also resolves *prefix* re-exports: ``repro.Searcher.search``
        canonicalizes the longest re-exported prefix, so attribute chains
        through re-exported classes land on the real definition.
        """
        return canonicalize(dotted, self.reexports)

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def resolve_function(self, dotted: str) -> Optional[FunctionInfo]:
        """Map a canonicalized dotted call target to a project function.

        Tries the name as ``module.func`` / ``module.Class.method``; for a
        bare class reference, resolves to its ``__init__``.
        """
        dotted = self.canonical(dotted)
        fn = self.functions.get(dotted)
        if fn is not None:
            return fn
        cls = self.classes.get(dotted)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is not None:
                return self.functions.get(init)
        return None

    def class_of(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(self.canonical(dotted))

    def module_of_function(self, fn: FunctionInfo) -> ModuleInfo:
        return self.modules[fn.module]

    def sorted_functions(self) -> List[FunctionInfo]:
        """Deterministic iteration order for fixed-point passes."""
        return [self.functions[q] for q in sorted(self.functions)]
