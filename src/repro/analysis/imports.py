"""Import-name resolution primitives shared by file rules and the
whole-program analyzer.

This lives outside the ``rules`` package on purpose: the symbol table
and call graph need :class:`ImportTable` without importing the rule
registry (which imports *them* — the project rules are built on top of
the symbol table).  ``rules.base`` re-exports everything here, so rule
code keeps its historical import paths.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = ["ImportTable", "canonicalize", "resolve_call_target"]


class ImportTable:
    """Maps local names to the dotted module/attribute paths they import.

    The table flattens scope: an import inside a function binds the name
    for the whole file.  That is deliberately conservative — the linter
    asks "could this name refer to ``time.perf_counter``?", and a
    function-local import makes the answer yes.

    Examples of recorded bindings::

        import time                      ->  {"time": "time"}
        import numpy as np               ->  {"np": "numpy"}
        from time import perf_counter    ->  {"perf_counter": "time.perf_counter"}
        from numpy import random as npr  ->  {"npr": "numpy.random"}
        from ..simio import clock        ->  {"clock": "repro.simio.clock"}

    Names imported *through* a package ``__init__`` re-export resolve to
    the re-exporting package here (``repro.simio.LruChunkCache``); chase
    them to the defining module with :func:`canonicalize` and the
    project re-export map.
    """

    def __init__(self, module: ast.Module, module_package: str):
        #: dotted path of the package containing this module, used to
        #: resolve relative imports ("repro.core" for repro/core/search.py).
        self._module_package = module_package
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b.c" binds "a" (to package a) unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk ``level`` packages up from the module's
        # package, then append the explicit module path (if any).
        parts = self._module_package.split(".") if self._module_package else []
        if node.level - 1 > 0:
            parts = parts[: -(node.level - 1)] if node.level - 1 <= len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def resolve(self, name: str) -> Optional[str]:
        """Dotted import path bound to ``name``, or ``None``."""
        return self.bindings.get(name)


def canonicalize(dotted: str, reexports: Dict[str, str]) -> str:
    """Chase ``__init__.py`` re-export chains to the defining name.

    ``repro.LruChunkCache`` -> ``repro.simio.chunk_cache.LruChunkCache``
    when both ``repro/__init__.py`` and ``repro/simio/__init__.py``
    re-export it.  Longest-prefix chasing handles attribute chains that
    pass through a re-exported symbol.  With an empty map this is the
    identity — per-file linting without a project keeps old behaviour.

    Each mapping is applied at most once per resolution.  That both
    bounds the loop and is the right semantics: re-applying a key whose
    value it prefixes (``pkg.bulk_load -> pkg.bulk_load.bulk_load``, a
    function named after its module) would otherwise grow the name
    forever.
    """
    current = dotted
    used = set()
    while True:
        parts = current.split(".")
        # Whole-name match first, then longest proper prefix.
        candidates = [current] + [
            ".".join(parts[:cut]) for cut in range(len(parts) - 1, 1, -1)
        ]
        for key in candidates:
            target = reexports.get(key)
            if target is not None and key not in used and target != key:
                used.add(key)
                current = target + current[len(key) :]
                break
        else:
            return current


def resolve_call_target(func: ast.expr, imports: ImportTable) -> Optional[str]:
    """Best-effort dotted path of a call target expression.

    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``"numpy.random.rand"``; a bare ``perf_counter`` imported from
    :mod:`time` resolves to ``"time.perf_counter"``.  Returns ``None``
    for targets rooted in local variables (attribute chains whose base is
    not an imported name).
    """
    chain: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.resolve(node.id)
    if base is None:
        return None
    chain.append(base)
    return ".".join(reversed(chain))
