"""Inline suppression comments: ``# repro-lint: disable=RULE[,RULE...]``.

A suppression comment silences matching diagnostics **on its own line**
(the line carrying the first token of the offending expression, as
reported by :mod:`ast`).  ``disable=all`` silences every rule on that
line.  Suppressions are parsed from the token stream, not by regex over
raw lines, so string literals that merely *contain* the marker text do
not suppress anything.

Example::

    started = time.perf_counter()  # repro-lint: disable=CLK001
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["SuppressionIndex", "parse_suppressions"]

#: Matches the directive inside a comment token.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel rule name that silences every rule on the line.
ALL = "all"


class SuppressionIndex:
    """Per-line suppression lookup for one source file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]):
        self._by_line = by_line

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return ALL in rules or rule in rules

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract all suppression directives from ``source``.

    Tokenization errors are swallowed (the caller will already be
    reporting the syntax error from :func:`ast.parse`); whatever comments
    were seen before the error still apply.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if not match:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            previous = by_line.get(line, frozenset())
            by_line[line] = previous | rules
    except (tokenize.TokenError, IndentationError):
        pass
    return SuppressionIndex(by_line)
