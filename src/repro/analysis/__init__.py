"""Repo-specific static analysis: the ``repro lint`` invariant checker.

This package builds a whole-program model of the ``repro`` tree — a
project symbol table, an import/call graph, and a contract index — and
enforces invariants no off-the-shelf linter knows about:

* **CLK001** simulated-clock discipline: no wall-clock reads in the
  simulated-cost layers (``core``/``simio``/``storage``/``chunking``/
  ``srtree``);
* **RNG001-003** determinism: no legacy ``np.random`` global state, no
  stdlib ``random`` module calls, no unseeded ``default_rng()``;
* **RNG101-102** seed provenance (whole-program): generators must trace
  to the run's root ``SeedSequence``; one seed must not fan out to two
  consumers without ``spawn()``;
* **DTY001-002** dtype contracts: no literal float32 into the distance
  kernels; public ndarray-returning functions declare their dtype;
* **LAY001** layer boundaries: the import DAG stays acyclic and the
  algorithmic layers never import the application shell;
* **SIM101-102** time-unit taint (whole-program): simulated seconds and
  host seconds must never be mixed or reach the wrong sink;
* **EXA001-003** exactness contracts: ``# repro: exact`` code must not
  reach approximate APIs without a waiver, and state mutated on the
  ``run_parallel`` path must be owned.

Run it as ``repro lint`` or ``python -m repro.analysis``.  This package
intentionally imports nothing from the rest of ``repro`` (enforced by
LAY001 on itself), so it can lint a tree whose simulated layers are
broken.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .config import LintConfig, default_config
from .diagnostics import Diagnostic, render_json, render_text
from .rules import RULE_IDS, all_rules, select_rules
from .runner import (
    LintResult,
    lint_file,
    lint_source,
    lint_sources,
    lint_tree,
    package_root,
)
from .sarif import render_sarif

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "RULE_IDS",
    "all_rules",
    "apply_baseline",
    "default_config",
    "lint_file",
    "lint_source",
    "lint_sources",
    "lint_tree",
    "load_baseline",
    "package_root",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
    "write_baseline",
]
