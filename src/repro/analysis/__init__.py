"""Repo-specific static analysis: the ``repro lint`` invariant checker.

This package walks the ``repro`` AST and enforces contracts no
off-the-shelf linter knows about — the invariants the reproduction's
correctness rests on:

* **CLK001** simulated-clock discipline: no wall-clock reads in the
  simulated-cost layers (``core``/``simio``/``storage``/``chunking``/
  ``srtree``);
* **RNG001-003** determinism: no legacy ``np.random`` global state, no
  stdlib ``random`` module calls, no unseeded ``default_rng()``;
* **DTY001-002** dtype contracts: no literal float32 into the distance
  kernels; public ndarray-returning functions declare their dtype;
* **LAY001** layer boundaries: the import DAG stays acyclic and the
  algorithmic layers never import the application shell.

Run it as ``repro lint`` or ``python -m repro.analysis``.  This package
intentionally imports nothing from the rest of ``repro`` (enforced by
LAY001 on itself), so it can lint a tree whose simulated layers are
broken.
"""

from .config import LintConfig, default_config
from .diagnostics import Diagnostic, render_json, render_text
from .rules import RULE_IDS, all_rules, select_rules
from .runner import LintResult, lint_file, lint_source, lint_tree, package_root

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "RULE_IDS",
    "all_rules",
    "default_config",
    "lint_file",
    "lint_source",
    "lint_tree",
    "package_root",
    "render_json",
    "render_text",
    "select_rules",
]
