"""Diagnostic records and reporting for ``repro lint``.

A :class:`Diagnostic` pins one rule violation to a ``file:line:col``
location.  Reporting is deliberately minimal: a stable one-line text form
(the same ``path:line:col: RULE message`` shape compilers use, so editors
can jump to it) and a JSON form for CI artifacts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Sequence

__all__ = ["Diagnostic", "render_text", "render_json"]

#: Schema version of the JSON report (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at a source location.

    Ordering is ``(path, line, col, rule)`` so reports are deterministic
    regardless of rule execution order.
    """

    path: str  #: repo-relative posix path of the offending file
    line: int  #: 1-based source line
    col: int  #: 0-based column (as reported by :mod:`ast`)
    rule: str  #: rule id, e.g. ``"CLK001"``
    message: str  #: human-readable explanation

    def format(self) -> str:
        """Compiler-style one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """All diagnostics, sorted, one per line (empty string when clean)."""
    return "\n".join(d.format() for d in sorted(diagnostics))


def render_json(
    diagnostics: Sequence[Diagnostic],
    *,
    checked_files: int,
    rules: Sequence[str],
) -> str:
    """JSON report for CI: schema version, summary counts, diagnostics."""
    by_rule: Dict[str, int] = {}
    for diagnostic in diagnostics:
        by_rule[diagnostic.rule] = by_rule.get(diagnostic.rule, 0) + 1
    payload: Dict[str, object] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "checked_files": checked_files,
        "rules": sorted(rules),
        "violations": len(diagnostics),
        "violations_by_rule": dict(sorted(by_rule.items())),
        "diagnostics": [d.to_dict() for d in sorted(diagnostics)],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def summarize(diagnostics: Sequence[Diagnostic], checked_files: int) -> str:
    """One-line human summary printed after the text report."""
    if not diagnostics:
        return f"repro lint: {checked_files} files checked, no violations"
    rules: List[str] = sorted({d.rule for d in diagnostics})
    return (
        f"repro lint: {checked_files} files checked, "
        f"{len(diagnostics)} violation(s) [{', '.join(rules)}]"
    )
