"""Configuration for the repro invariant linter.

The defaults below *are* the repo's contracts — they encode which layers
carry simulated cost (and therefore must never read the wall clock),
which import edges the architecture permits, and which kernels have
dtype contracts.  Tests and the CLI use :func:`default_config`; unit
tests construct narrower configs by hand.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping, Tuple

__all__ = ["LintConfig", "default_config", "PACKAGE_NAME"]

#: Name of the package the default configuration describes.
PACKAGE_NAME = "repro"

#: Layers whose query-time costs are *simulated* (SimClock): wall-clock
#: reads here would silently contaminate the paper's time-to-quality
#: curves with hardware-dependent noise.
SIMULATED_LAYERS: FrozenSet[str] = frozenset(
    {"core", "simio", "storage", "chunking", "srtree", "faults", "service"}
)

#: Files that may read the wall clock despite living in a simulated
#: layer.  ``simio/clock.py`` defines :class:`~repro.simio.clock.WallClock`
#: itself — the single sanctioned escape hatch used by benchmarks and
#: simulation sanity checks.  Individual *call sites* (e.g. the chunker
#: build timers, which measure build time only and never feed simulated
#: cost) use inline ``# repro-lint: disable=CLK001`` suppressions instead,
#: so any new wall-clock read in those files is still caught.
WALL_CLOCK_ALLOWLIST: FrozenSet[str] = frozenset({"simio/clock.py"})

#: The import DAG, expressed as forbidden edges: layer -> layers it must
#: not import.  Algorithmic layers must not reach "up" into the
#: application shell (experiments / extensions / system / cli), and simio
#: must stay ignorant of core so cost models remain reusable.
_APP_SHELL: FrozenSet[str] = frozenset({"experiments", "extensions", "system", "cli"})
FORBIDDEN_IMPORTS: Mapping[str, FrozenSet[str]] = {
    "core": _APP_SHELL | frozenset({"service"}),
    "simio": _APP_SHELL | frozenset({"core", "service"}),
    "storage": _APP_SHELL | frozenset({"service"}),
    "chunking": _APP_SHELL | frozenset({"service"}),
    "srtree": _APP_SHELL | frozenset({"service"}),
    # Fault plans wrap storage readers and the simio disk model; the
    # degraded-execution *policy* lives in core, which imports faults —
    # never the other way around.
    "faults": _APP_SHELL | frozenset({"core", "service"}),
    # The query service (including the ``service.sharding`` package:
    # placement, shard nodes, scatter-gather coordinator) composes core
    # search, simio queueing, faults and workload arrivals; only the app
    # shell (cli / experiments) may sit above it, and no substrate layer
    # may reach up into it.
    "service": _APP_SHELL | frozenset({"chunking", "srtree", "storage", "analysis"}),
    "workloads": frozenset({"service"}),
    "parallel": frozenset({"service"}),
    "extensions": frozenset({"service"}),
    "system": frozenset({"service"}),
    "analysis": _APP_SHELL | SIMULATED_LAYERS | frozenset({"workloads", "parallel"}),
}

#: Distance kernels with a float64 promotion contract: passing a literal
#: float32 construction defeats the promotion and changes results at the
#: ulp level, breaking bit-reproducibility.
DTYPE_KERNELS: FrozenSet[str] = frozenset(
    {"squared_distances", "pairwise_squared_distances", "euclidean_distances"}
)

#: Substrings that count as "declares its dtype" in a docstring or
#: return annotation of a public array-producing function.
DTYPE_WORDS: Tuple[str, ...] = (
    "dtype",
    "float64",
    "float32",
    "float16",
    "int64",
    "int32",
    "intp",
    "uint8",
    "uint32",
    "uint64",
    "bool_",
    "boolean",
)

#: ``numpy.random`` attributes that are modern, explicitly-seeded
#: constructs and therefore exempt from the legacy global-state rule.
MODERN_NP_RANDOM: FrozenSet[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: ``random`` (stdlib) attributes exempt from the module-level-call rule:
#: instantiating an explicitly seeded ``random.Random(seed)`` is fine.
SEEDED_STDLIB_RANDOM: FrozenSet[str] = frozenset({"Random", "SystemRandom"})

#: Time-unit taint roots: canonical dotted names whose float results carry
#: a unit.  ``host`` is wall-clock seconds (hardware-dependent), ``sim``
#: is simulated seconds (deterministic, advanced by the cost models).
#: The whole-program analyzer propagates these units through calls,
#: returns, parameters and stored attributes; everything else starts
#: unitless.
TIME_UNIT_SOURCES: Mapping[str, str] = {
    # Wall clock — the only place host-seconds may legitimately originate.
    "time.time": "host",
    "time.monotonic": "host",
    "time.perf_counter": "host",
    "time.process_time": "host",
    "time.thread_time": "host",
    "repro.simio.clock.WallClock.now": "host",
    # Simulated clock and the cost models that advance it.
    "repro.simio.clock.SimulatedClock.now": "sim",
    "repro.simio.pipeline.PipelineSimulator.start_query": "sim",
    "repro.simio.pipeline.PipelineSimulator.process_chunk": "sim",
    "repro.simio.pipeline.PipelineSimulator.skip_chunk": "sim",
    "repro.simio.pipeline.PipelineSimulator.elapsed": "sim",
    "repro.simio.chunk_cache.chunk_read_time_s": "sim",
    "repro.simio.cache.cached_read_time_s": "sim",
    "repro.simio.disk_model.DiskModel.positioning_time_s": "sim",
    "repro.simio.disk_model.DiskModel.transfer_time_s": "sim",
    "repro.simio.disk_model.DiskModel.random_read_time_s": "sim",
    "repro.simio.disk_model.DiskModel.sequential_read_time_s": "sim",
    "repro.simio.disk_model.DiskModel.sequential_write_time_s": "sim",
    "repro.simio.disk_model.DiskModel.sync_time_s": "sim",
    "repro.simio.cpu_model.CpuModel.chunk_processing_time_s": "sim",
    "repro.simio.cpu_model.CpuModel.ranking_time_s": "sim",
    "repro.faults.plan.FaultPlan.backoff_delay_s": "sim",
}

#: Time-unit sinks: canonical dotted callables whose first non-self
#: argument must carry the stated unit.  Passing the *other* real unit is
#: the cross-layer plumbing bug SIM102 exists for (e.g. a simulated
#: timestamp fed to ``time.sleep``).
TIME_UNIT_SINKS: Mapping[str, str] = {
    "time.sleep": "host",
    "repro.simio.clock.SimulatedClock.advance": "sim",
    "repro.simio.clock.SimulatedClock.advance_to": "sim",
}

#: The only files that may write or rename durable on-disk artifacts
#: directly.  ``storage/atomic.py`` owns write-temp/fsync/rename,
#: ``storage/chunk_file.py`` layers CRC tables on the same discipline,
#: and ``storage/wal.py`` owns the framed group commit.  Everything else
#: must publish through them (DUR001).
DURABLE_WRITE_SANCTIONED: FrozenSet[str] = frozenset(
    {"storage/atomic.py", "storage/chunk_file.py", "storage/wal.py"}
)

#: Path-expression substrings that mark a write target as a durable
#: search artifact (outside the storage layer, DUR001 flags only writes
#: whose arguments mention one of these; report/plot outputs stay free).
DURABLE_PATH_KEYWORDS: Tuple[str, ...] = (
    "wal",
    "chunk",
    "index",
    "collection",
    "segment",
    "manifest",
    "delta",
)

#: Entropy-consuming constructors and the argument that receives the
#: seed: canonical dotted name -> (positional index, keyword name).
SEED_SLOTS: Mapping[str, Tuple[int, str]] = {
    "numpy.random.default_rng": (0, "seed"),
    "numpy.random.SeedSequence": (0, "entropy"),
    "random.Random": (0, "x"),
}


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Everything a rule needs to know about the repo's invariants."""

    package: str = PACKAGE_NAME
    simulated_layers: FrozenSet[str] = SIMULATED_LAYERS
    wall_clock_allowlist: FrozenSet[str] = WALL_CLOCK_ALLOWLIST
    forbidden_imports: Mapping[str, FrozenSet[str]] = dataclasses.field(
        default_factory=lambda: dict(FORBIDDEN_IMPORTS)
    )
    dtype_kernels: FrozenSet[str] = DTYPE_KERNELS
    dtype_words: Tuple[str, ...] = DTYPE_WORDS
    modern_np_random: FrozenSet[str] = MODERN_NP_RANDOM
    seeded_stdlib_random: FrozenSet[str] = SEEDED_STDLIB_RANDOM
    time_unit_sources: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: dict(TIME_UNIT_SOURCES)
    )
    time_unit_sinks: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: dict(TIME_UNIT_SINKS)
    )
    seed_slots: Mapping[str, Tuple[int, str]] = dataclasses.field(
        default_factory=lambda: dict(SEED_SLOTS)
    )
    durable_write_sanctioned: FrozenSet[str] = DURABLE_WRITE_SANCTIONED
    durable_path_keywords: Tuple[str, ...] = DURABLE_PATH_KEYWORDS

    def layer_of(self, relpath: str) -> str:
        """Layer name for a package-relative posix path.

        Subpackage files take the subpackage name (``core/search.py`` ->
        ``core``); top-level modules take their stem (``system.py`` ->
        ``system``).
        """
        parts = relpath.split("/")
        if len(parts) == 1:
            name = parts[0]
            return name[:-3] if name.endswith(".py") else name
        return parts[0]


def default_config() -> LintConfig:
    """The shipped configuration (module-level constants above)."""
    return LintConfig()
