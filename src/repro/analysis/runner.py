"""The lint runner: walk a package tree, run rules, filter suppressions.

Entry points, from narrow to wide:

* :func:`lint_source` — one in-memory module (unit tests, fixtures);
* :func:`lint_file` — one file on disk;
* :func:`lint_tree` — a whole package directory (what the CLI runs).

The runner is deliberately independent of the rest of ``repro`` — it
imports nothing from the simulated layers, so it can lint a broken tree.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Optional, Sequence

from .config import LintConfig, default_config
from .diagnostics import Diagnostic
from .rules import FileContext, ImportTable, Rule, all_rules
from .suppressions import parse_suppressions

__all__ = ["LintResult", "lint_source", "lint_file", "lint_tree", "package_root"]


class LintResult:
    """Diagnostics plus the bookkeeping the reports need."""

    def __init__(self, diagnostics: List[Diagnostic], checked_files: int, rules: Sequence[str]):
        self.diagnostics = sorted(diagnostics)
        self.checked_files = checked_files
        self.rules = list(rules)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


def _module_package(package: str, relpath: str) -> str:
    """Dotted package containing the module at ``relpath``.

    ``core/search.py`` -> ``repro.core``; ``system.py`` -> ``repro``;
    ``core/__init__.py`` -> ``repro.core`` (a package's ``__init__``
    resolves relative imports against the package itself).
    """
    directories = relpath.split("/")[:-1]
    return ".".join([package] + directories)


def lint_source(
    source: str,
    relpath: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one module given as text; ``relpath`` fixes its layer.

    A syntax error is itself reported as a diagnostic (rule ``PARSE``)
    rather than raised — a tree that does not parse must fail the lint
    gate, not crash it.
    """
    config = config or default_config()
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PARSE",
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = FileContext(
        relpath=relpath,
        layer=config.layer_of(relpath),
        module_package=_module_package(config.package, relpath),
        tree=tree,
        imports=ImportTable(tree, _module_package(config.package, relpath)),
        config=config,
    )
    suppressions = parse_suppressions(source)
    found: List[Diagnostic] = []
    for rule in rules:
        for diagnostic in rule.check(context):
            if not suppressions.is_suppressed(diagnostic.line, diagnostic.rule):
                found.append(diagnostic)
    return found


def lint_file(
    path: str,
    relpath: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one on-disk file; ``relpath`` is its package-relative path."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, relpath, config=config, rules=rules)


def _python_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_tree(
    root: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``root`` (a package directory).

    ``root`` is the directory of the package itself (e.g. ``src/repro``);
    layers are resolved from paths relative to it.
    """
    config = config or default_config()
    rules = list(rules) if rules is not None else all_rules()
    diagnostics: List[Diagnostic] = []
    checked = 0
    for path in _python_files(root):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        diagnostics.extend(lint_file(path, relpath, config=config, rules=rules))
        checked += 1
    return LintResult(diagnostics, checked, [rule.id for rule in rules])


def package_root() -> str:
    """Directory of the installed ``repro`` package (the default lint
    target, so ``repro lint`` works from any CWD)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))
