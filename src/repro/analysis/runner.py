"""The lint runner: parse a tree, build the program model, run rules.

Entry points, from narrow to wide:

* :func:`lint_source` — one in-memory module (unit tests, fixtures);
* :func:`lint_sources` — several in-memory modules as one program
  (fixtures for the inter-procedural rule families);
* :func:`lint_file` — one file on disk;
* :func:`lint_tree` — a whole package directory (what the CLI runs).

A run has four phases, each timed for ``--profile``:

1. **parse** — read every file, parse to AST (optionally through an
   on-disk cache keyed on the source hash);
2. **symbols** — build the project :class:`SymbolTable` (defs, classes,
   contracts, the ``__init__`` re-export map);
3. **callgraph** — attribute typing + resolved call edges;
4. **rules** — per-file rules on each module, then whole-program rules
   on the project context, all filtered through inline suppressions.

The runner is deliberately independent of the rest of ``repro`` — it
imports nothing from the simulated layers, so it can lint a broken tree.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import sys
import time
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .config import LintConfig, default_config
from .diagnostics import Diagnostic
from .imports import ImportTable
from .project import ProjectContext
from .rules import FileContext, ProjectRule, Rule, all_rules
from .suppressions import parse_suppressions

__all__ = [
    "LintResult",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_tree",
    "package_root",
]

#: Bump to invalidate every on-disk AST cache entry (format change).
_CACHE_SCHEMA = 2


class LintResult:
    """Diagnostics plus the bookkeeping the reports need."""

    def __init__(
        self,
        diagnostics: List[Diagnostic],
        checked_files: int,
        rules: Sequence[str],
        *,
        phase_timings: Optional[Mapping[str, float]] = None,
        rule_timings: Optional[Mapping[str, float]] = None,
    ):
        self.diagnostics = sorted(diagnostics)
        self.checked_files = checked_files
        self.rules = list(rules)
        #: wall-clock seconds per phase (parse/symbols/callgraph/rules);
        #: informational only — never part of the deterministic reports.
        self.phase_timings: Dict[str, float] = dict(phase_timings or {})
        self.rule_timings: Dict[str, float] = dict(rule_timings or {})

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


def _module_package(package: str, relpath: str) -> str:
    """Dotted package containing the module at ``relpath``.

    ``core/search.py`` -> ``repro.core``; ``system.py`` -> ``repro``;
    ``core/__init__.py`` -> ``repro.core`` (a package's ``__init__``
    resolves relative imports against the package itself).
    """
    directories = relpath.split("/")[:-1]
    return ".".join([package] + directories)


def _parse_one(
    source: str, relpath: str
) -> Tuple[Optional[ast.Module], Optional[Diagnostic]]:
    try:
        return ast.parse(source, filename=relpath), None
    except SyntaxError as exc:
        return None, Diagnostic(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="PARSE",
            message=f"syntax error: {exc.msg}",
        )


def _parse_cached(
    source: str, relpath: str, cache_dir: Optional[str]
) -> Tuple[Optional[ast.Module], Optional[Diagnostic]]:
    """Parse with an optional on-disk AST cache keyed on the source hash.

    The key covers source bytes, the cache schema and the interpreter
    version (AST pickles are not stable across minors).  Cache misses and
    corrupt entries fall back to a plain parse and rewrite the entry.
    """
    if cache_dir is None:
        return _parse_one(source, relpath)
    digest = hashlib.sha256(
        f"{_CACHE_SCHEMA}:{sys.version_info[:2]}:".encode() + source.encode()
    ).hexdigest()
    entry = os.path.join(cache_dir, f"{digest}.ast.pkl")
    if os.path.exists(entry):
        try:
            with open(entry, "rb") as handle:
                cached = pickle.load(handle)
            if isinstance(cached, ast.Module):
                return cached, None
        except Exception:
            pass  # corrupt/foreign entry: re-parse below
    tree, parse_error = _parse_one(source, relpath)
    if tree is not None:
        os.makedirs(cache_dir, exist_ok=True)
        tmp = entry + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(tree, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, entry)
    return tree, parse_error


def _run_rules(
    files: Sequence[Tuple[str, str, ast.Module]],
    parse_failures: Sequence[Diagnostic],
    config: LintConfig,
    rules: Sequence[Rule],
    project: ProjectContext,
) -> Tuple[List[Diagnostic], Dict[str, float]]:
    """Phase 4: file rules per module, project rules once."""
    diagnostics: List[Diagnostic] = list(parse_failures)
    rule_timings: Dict[str, float] = {}
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    contexts = []
    for relpath, source, tree in files:
        info = project.symbols.by_relpath.get(relpath)
        contexts.append(
            (
                FileContext(
                    relpath=relpath,
                    layer=config.layer_of(relpath),
                    module_package=_module_package(config.package, relpath),
                    tree=tree,
                    imports=(
                        info.imports
                        if info is not None
                        else ImportTable(tree, _module_package(config.package, relpath))
                    ),
                    config=config,
                    reexports=project.reexports,
                ),
                info.suppressions if info is not None else parse_suppressions(source),
            )
        )
    for rule in file_rules:
        started = time.perf_counter()
        for ctx, suppressions in contexts:
            for diagnostic in rule.check(ctx):
                if not suppressions.is_suppressed(diagnostic.line, diagnostic.rule):
                    diagnostics.append(diagnostic)
        rule_timings[rule.id] = rule_timings.get(rule.id, 0.0) + (
            time.perf_counter() - started
        )
    for rule in project_rules:
        started = time.perf_counter()
        for diagnostic in rule.check_project(project):
            if not project.is_suppressed(diagnostic):
                diagnostics.append(diagnostic)
        rule_timings[rule.id] = rule_timings.get(rule.id, 0.0) + (
            time.perf_counter() - started
        )
    return diagnostics, rule_timings


def _lint_program(
    sources: Mapping[str, str],
    *,
    config: LintConfig,
    rules: Sequence[Rule],
    cache_dir: Optional[str] = None,
) -> LintResult:
    """Shared core: parse → symbols+callgraph → rules, with timings."""
    timings: Dict[str, float] = {}

    started = time.perf_counter()
    parsed: List[Tuple[str, str, ast.Module]] = []
    parse_failures: List[Diagnostic] = []
    for relpath in sorted(sources):
        tree, parse_error = _parse_cached(sources[relpath], relpath, cache_dir)
        if tree is not None:
            parsed.append((relpath, sources[relpath], tree))
        if parse_error is not None:
            parse_failures.append(parse_error)
    timings["parse"] = time.perf_counter() - started

    started = time.perf_counter()
    from .symbols import SymbolTable

    symbols = SymbolTable.build(config.package, parsed)
    timings["symbols"] = time.perf_counter() - started

    started = time.perf_counter()
    project = ProjectContext(config, symbols)
    timings["callgraph"] = time.perf_counter() - started

    started = time.perf_counter()
    diagnostics, rule_timings = _run_rules(parsed, parse_failures, config, rules, project)
    timings["rules"] = time.perf_counter() - started

    return LintResult(
        diagnostics,
        len(sources),
        [rule.id for rule in rules],
        phase_timings=timings,
        rule_timings=rule_timings,
    )


def lint_sources(
    sources: Mapping[str, str],
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint several in-memory modules as one program.

    ``sources`` maps package-relative paths to source text; the
    inter-procedural rules see imports/calls between them.  This is the
    fixture entry point for the SIM/RNG1xx/EXA families.
    """
    config = config or default_config()
    rules = list(rules) if rules is not None else all_rules()
    return _lint_program(sources, config=config, rules=rules).diagnostics


def lint_source(
    source: str,
    relpath: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one module given as text; ``relpath`` fixes its layer.

    A syntax error is itself reported as a diagnostic (rule ``PARSE``)
    rather than raised — a tree that does not parse must fail the lint
    gate, not crash it.  Whole-program rules run against the one-module
    program (cross-module edges simply do not exist).
    """
    return lint_sources({relpath: source}, config=config, rules=rules)


def lint_file(
    path: str,
    relpath: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one on-disk file; ``relpath`` is its package-relative path."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, relpath, config=config, rules=rules)


def _python_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_tree(
    root: str,
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache_dir: Optional[str] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``root`` (a package directory).

    ``root`` is the directory of the package itself (e.g. ``src/repro``);
    layers are resolved from paths relative to it.  ``cache_dir``, when
    given, holds parsed-AST artifacts keyed on source hash so repeated
    runs (and CI with a restored cache) skip re-parsing unchanged files.
    """
    config = config or default_config()
    rules = list(rules) if rules is not None else all_rules()
    sources: Dict[str, str] = {}
    for path in _python_files(root):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as handle:
            sources[relpath] = handle.read()
    return _lint_program(sources, config=config, rules=rules, cache_dir=cache_dir)


def package_root() -> str:
    """Directory of the installed ``repro`` package (the default lint
    target, so ``repro lint`` works from any CWD)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))
