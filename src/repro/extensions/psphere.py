"""P-Sphere tree: trading disk space for search time (related work).

Goldstein & Ramakrishnan, VLDB 2000 — from the paper's related work:
"vectors belonging to overlapping hyperspheres are replicated.
Hyperspheres are built such that the probability of finding the true NN of
the query point can be enforced at run time by simply having the search
identify the nearest center and solely scanning the corresponding
hypersphere."

Build: choose ``n_spheres`` centers (a k-means++-seeded sample of the
data); each sphere stores the ``points_per_sphere`` database descriptors
nearest to its center — descriptors near several centers are *replicated*.
Search: one centroid ranking, then one sphere scan.  Quality is tuned by
``points_per_sphere`` (more replication → higher probability the true NN
sits in the chosen sphere), which is exactly the space-for-time trade the
paper contrasts with chunking; as the paper notes, the scheme "is unable
to place any guarantees beyond the first nearest neighbor".
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.dataset import DescriptorCollection
from ..core.distance import squared_distances, top_k_smallest

__all__ = ["PSphereTree"]


class PSphereTree:
    """One-level P-Sphere index.

    Parameters
    ----------
    collection:
        Descriptors to index.
    n_spheres:
        Number of hyperspheres.
    points_per_sphere:
        Descriptors stored in each sphere (the replication knob).
    seed:
        Seed for center sampling.
    """

    def __init__(
        self,
        collection: DescriptorCollection,
        n_spheres: int,
        points_per_sphere: int,
        seed: int = 0,
    ):
        n = len(collection)
        if n == 0:
            raise ValueError("cannot index an empty collection")
        if n_spheres < 1:
            raise ValueError("need at least one sphere")
        if points_per_sphere < 1:
            raise ValueError("spheres must hold at least one point")
        self.collection = collection
        self.n_spheres = min(int(n_spheres), n)
        self.points_per_sphere = min(int(points_per_sphere), n)

        rng = np.random.default_rng(seed)
        vectors = collection.vectors.astype(np.float64)
        self._centers = self._pick_centers(vectors, rng)
        # Each sphere stores the rows of its nearest points (replicated).
        self._sphere_rows: List[np.ndarray] = []
        for center in self._centers:
            d2 = squared_distances(center, vectors)
            rows = top_k_smallest(d2, self.points_per_sphere)
            self._sphere_rows.append(rows.astype(np.intp))

    def _pick_centers(self, vectors: np.ndarray, rng) -> np.ndarray:
        """k-means++-style distance-proportional center sampling."""
        n = vectors.shape[0]
        centers = np.empty((self.n_spheres, vectors.shape[1]))
        centers[0] = vectors[rng.integers(n)]
        d2 = np.full(n, np.inf)
        for c in range(1, self.n_spheres):
            diffs = vectors - centers[c - 1]
            d2 = np.minimum(d2, np.einsum("ij,ij->i", diffs, diffs))
            total = d2.sum()
            if total <= 0:
                centers[c] = vectors[rng.integers(n)]
            else:
                centers[c] = vectors[rng.choice(n, p=d2 / total)]
        return centers

    @property
    def replication_factor(self) -> float:
        """Stored descriptors / collection size — the disk-space price."""
        stored = sum(rows.size for rows in self._sphere_rows)
        return stored / len(self.collection)

    def search(self, query: np.ndarray, k: int = 1) -> List[int]:
        """Scan only the sphere with the nearest center; return up to
        ``k`` descriptor ids (best first)."""
        if k < 1:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.collection.dimensions:
            raise ValueError("query dimensionality mismatch")
        center_d2 = squared_distances(query, self._centers)
        sphere = int(np.argmin(center_d2))
        rows = self._sphere_rows[sphere]
        d2 = squared_distances(query, self.collection.vectors[rows])
        best = top_k_smallest(d2, min(k, rows.size))
        return [int(self.collection.ids[rows[i]]) for i in best]

    def descriptors_scanned_per_query(self) -> int:
        """Work per query: exactly one sphere."""
        return self.points_per_sphere
