"""Medrank: approximate NN search by rank aggregation (related work).

Fagin, Kumar, Sivakumar: "Efficient similarity search and classification
via rank aggregation", SIGMOD 2003 — discussed in the paper's related work
(section 6) as an I/O-bound, I/O-optimal alternative to distance-based
approximate search:

1. At build time every descriptor is projected onto ``n_lines`` random
   lines; each line keeps its descriptors sorted by projection value.
2. At query time the query is projected onto the same lines; per line, a
   cursor walks outward from the query's position, emitting descriptors in
   order of projection proximity.
3. A descriptor's *median rank* is the step at which it has been seen on
   more than half the lines; the first descriptor to reach that majority is
   reported as the (approximate) nearest neighbor, the next as the second,
   and so on.

The algorithm never computes a high-dimensional distance at query time —
exactly the property the paper quotes ("based on the aggregation of
ranking rather than distance calculations").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.dataset import DescriptorCollection

__all__ = ["MedrankIndex"]


class MedrankIndex:
    """Random-projection rank-aggregation index.

    Parameters
    ----------
    collection:
        Descriptors to index.
    n_lines:
        Number of random projection lines (odd counts give a strict
        majority at ``(n_lines // 2) + 1`` sightings).
    seed:
        Seed for the random line directions.
    """

    def __init__(
        self,
        collection: DescriptorCollection,
        n_lines: int = 15,
        seed: int = 0,
    ):
        if len(collection) == 0:
            raise ValueError("cannot index an empty collection")
        if n_lines < 1:
            raise ValueError("need at least one projection line")
        self.collection = collection
        self.n_lines = int(n_lines)
        rng = np.random.default_rng(seed)
        directions = rng.standard_normal((self.n_lines, collection.dimensions))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        self._directions = directions
        # Per line: projections sorted ascending, plus the row order.
        projections = collection.vectors.astype(np.float64) @ directions.T
        self._sorted_rows = np.argsort(projections, axis=0, kind="stable").T
        self._sorted_values = np.take_along_axis(
            projections.T, self._sorted_rows, axis=1
        )

    def search(self, query: np.ndarray, k: int = 1) -> List[int]:
        """Return ``k`` descriptor ids by best median rank.

        Majority threshold: a descriptor is emitted once it has been seen
        on more than half the lines.  Ties (several descriptors reaching
        majority on the same step) break deterministically by descriptor
        row.
        """
        if k < 1:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.collection.dimensions:
            raise ValueError("query dimensionality mismatch")

        n = len(self.collection)
        k = min(k, n)
        q_proj = self._directions @ query

        # Two cursors per line, starting at the query's insertion point.
        highs = np.array(
            [
                np.searchsorted(self._sorted_values[line], q_proj[line])
                for line in range(self.n_lines)
            ]
        )
        lows = highs - 1

        seen_counts = np.zeros(n, dtype=np.int32)
        majority = self.n_lines // 2 + 1
        result: List[int] = []
        emitted = np.zeros(n, dtype=bool)

        # Each round advances every line's nearer cursor by one element.
        max_steps = 2 * n * self.n_lines
        for _ in range(max_steps):
            if len(result) >= k:
                break
            for line in range(self.n_lines):
                low, high = lows[line], highs[line]
                take_low = False
                if low >= 0 and high < n:
                    d_low = q_proj[line] - self._sorted_values[line][low]
                    d_high = self._sorted_values[line][high] - q_proj[line]
                    take_low = d_low <= d_high
                elif low >= 0:
                    take_low = True
                elif high >= n:
                    continue  # line exhausted
                if take_low:
                    row = int(self._sorted_rows[line][low])
                    lows[line] -= 1
                else:
                    row = int(self._sorted_rows[line][high])
                    highs[line] += 1
                seen_counts[row] += 1
                if seen_counts[row] >= majority and not emitted[row]:
                    emitted[row] = True
                    result.append(int(self.collection.ids[row]))
                    if len(result) >= k:
                        break
        return result[:k]
