"""DBIN: density-based indexing for approximate NN queries (related work).

Bennett, Fayyad, Geiger, KDD 1999 — from the paper's related work: DBIN
"exploits the statistical properties of data and clusters data using the
EM (Expectation Maximization) algorithm.  It aborts the NN-search when the
estimated probability for a remaining database vector to be a better
neighbor than the ones currently known falls below a predetermined
threshold."

Implementation:

* **Build** — a diagonal-covariance Gaussian mixture fitted with EM (from
  scratch, seeded k-means++ means); every descriptor is binned under its
  most probable component.
* **Search** — bins are scanned in decreasing query log-density order.
  After each bin the *expected number of better neighbors* among the
  unscanned bins is estimated: for bin ``j`` with fitted mean/variances,
  the squared distance ``D²`` of one of its samples to the query has a
  known mean and variance, so ``P(D² < r²)`` is bounded with the
  one-sided Chebyshev (Cantelli) inequality; summing ``n_j * P_j`` over
  remaining bins gives the abort statistic.  The search stops when it
  falls below ``abort_threshold``.

With ``abort_threshold = 0`` every bin is scanned and the result is exact
(the bins partition the collection), mirroring how the paper's own chunk
search degenerates to a sequential scan.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.dataset import DescriptorCollection
from ..core.distance import squared_distances
from ..core.neighbors import NeighborSet

__all__ = ["DbinIndex", "GaussianMixture"]

_VARIANCE_FLOOR = 1e-8


class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fitted with EM."""

    def __init__(self, n_components: int, em_iterations: int = 15, seed: int = 0):
        if n_components < 1:
            raise ValueError("need at least one component")
        if em_iterations < 1:
            raise ValueError("need at least one EM iteration")
        self.n_components = int(n_components)
        self.em_iterations = int(em_iterations)
        self.seed = int(seed)
        self.means: np.ndarray = None
        self.variances: np.ndarray = None
        self.weights: np.ndarray = None

    # -- fitting ----------------------------------------------------------------

    def _init_means(self, data: np.ndarray, rng) -> np.ndarray:
        """k-means++-style seeding."""
        n = data.shape[0]
        means = np.empty((self.n_components, data.shape[1]))
        means[0] = data[rng.integers(n)]
        d2 = np.full(n, np.inf)
        for c in range(1, self.n_components):
            diffs = data - means[c - 1]
            d2 = np.minimum(d2, np.einsum("ij,ij->i", diffs, diffs))
            total = d2.sum()
            if total <= 0:
                means[c] = data[rng.integers(n)]
            else:
                means[c] = data[rng.choice(n, p=d2 / total)]
        return means

    def log_densities(self, data: np.ndarray) -> np.ndarray:
        """``(n, K)`` float64 matrix of weighted per-component log densities."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        out = np.empty((n, self.n_components))
        for c in range(self.n_components):
            diff2 = (data - self.means[c]) ** 2
            out[:, c] = (
                np.log(self.weights[c])
                - 0.5 * np.sum(np.log(2 * np.pi * self.variances[c]))
                - 0.5 * np.sum(diff2 / self.variances[c], axis=1)
            )
        return out

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.n_components:
            raise ValueError("need at least one point per component")
        rng = np.random.default_rng(self.seed)
        n, d = data.shape
        self.means = self._init_means(data, rng)
        global_var = data.var(axis=0) + _VARIANCE_FLOOR
        self.variances = np.tile(global_var, (self.n_components, 1))
        self.weights = np.full(self.n_components, 1.0 / self.n_components)

        for _ in range(self.em_iterations):
            # E-step: responsibilities via the log-sum-exp trick.
            log_p = self.log_densities(data)
            log_norm = np.logaddexp.reduce(log_p, axis=1, keepdims=True)
            resp = np.exp(log_p - log_norm)
            # M-step.
            mass = resp.sum(axis=0)
            mass = np.maximum(mass, 1e-12)
            self.weights = mass / n
            self.means = (resp.T @ data) / mass[:, np.newaxis]
            for c in range(self.n_components):
                diff2 = (data - self.means[c]) ** 2
                self.variances[c] = (
                    (resp[:, c][:, np.newaxis] * diff2).sum(axis=0) / mass[c]
                ) + _VARIANCE_FLOOR
        return self

    def assign(self, data: np.ndarray) -> np.ndarray:
        """Most probable component per point (dtype intp)."""
        return np.argmax(self.log_densities(data), axis=1)


class DbinIndex:
    """EM-binned collection with probabilistic early abort."""

    def __init__(
        self,
        collection: DescriptorCollection,
        n_components: int = 16,
        em_iterations: int = 15,
        seed: int = 0,
    ):
        if len(collection) == 0:
            raise ValueError("cannot index an empty collection")
        self.collection = collection
        data = collection.vectors.astype(np.float64)
        self.mixture = GaussianMixture(
            n_components=min(n_components, len(collection)),
            em_iterations=em_iterations,
            seed=seed,
        ).fit(data)
        assignment = self.mixture.assign(data)
        self._bins: List[np.ndarray] = [
            np.flatnonzero(assignment == c)
            for c in range(self.mixture.n_components)
        ]

    @property
    def n_bins(self) -> int:
        return len(self._bins)

    def bin_sizes(self) -> np.ndarray:
        """Points assigned to each bin, dtype int64."""
        return np.asarray([rows.size for rows in self._bins], dtype=np.int64)

    # -- abort statistic -------------------------------------------------------

    def _better_neighbor_probability(
        self, component: int, query: np.ndarray, radius2: float
    ) -> float:
        """Cantelli upper bound on P(D² < radius²) for one sample of the
        component, where D is its distance to ``query``.

        For a diagonal Gaussian, ``D² = sum_i (x_i - q_i)²`` has
        ``mean = sum(var_i + gap_i²)`` and
        ``variance = sum(2 var_i² + 4 var_i gap_i²)``.
        """
        var = self.mixture.variances[component]
        gap2 = (self.mixture.means[component] - query) ** 2
        mean = float(np.sum(var + gap2))
        variance = float(np.sum(2.0 * var**2 + 4.0 * var * gap2))
        if radius2 >= mean:
            return 1.0
        shortfall = mean - radius2
        return variance / (variance + shortfall * shortfall)

    def expected_better_neighbors(
        self, query: np.ndarray, radius2: float, remaining_bins
    ) -> float:
        """Expected count of unscanned descriptors within ``sqrt(radius2)``."""
        return float(
            sum(
                self._bins[c].size
                * self._better_neighbor_probability(c, query, radius2)
                for c in remaining_bins
            )
        )

    # -- search ---------------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        abort_threshold: float = 0.1,
    ) -> Tuple[List[int], int]:
        """Approximate k-NN with probabilistic abort.

        Returns ``(descriptor_ids, bins_scanned)``.  ``abort_threshold``
        is the expected number of undiscovered better neighbors below
        which the search stops; ``0`` disables the abort (exact result).
        """
        if k < 1:
            raise ValueError("k must be positive")
        if abort_threshold < 0:
            raise ValueError("abort threshold cannot be negative")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.collection.dimensions:
            raise ValueError("query dimensionality mismatch")

        order = np.argsort(-self.mixture.log_densities(query)[0], kind="stable")
        neighbors = NeighborSet(min(k, len(self.collection)))
        scanned = 0
        for rank, component in enumerate(order):
            rows = self._bins[int(component)]
            scanned += 1
            if rows.size:
                d = np.sqrt(
                    squared_distances(query, self.collection.vectors[rows])
                )
                neighbors.update(d, self.collection.ids[rows])
            if abort_threshold > 0 and neighbors.is_full:
                remaining = order[rank + 1 :]
                if not remaining.size:
                    break
                expected = self.expected_better_neighbors(
                    query, neighbors.kth_distance**2, remaining
                )
                if expected < abort_threshold:
                    break
        return [int(i) for i in neighbors.ids()], scanned
