"""Multi-descriptor image-level search (the paper's future work).

Paper section 7: "We are planning to implement a multi-descriptor search
algorithm for local descriptors and run against this collection."

With local description schemes an image is a *set* of descriptors, so
image-level retrieval runs one approximate k-NN search per query
descriptor and aggregates descriptor matches into image votes (the
standard voting scheme of the local-descriptor literature the paper builds
on, e.g. Schmid & Mohr 1997, Amsaleg & Gros 2001):

1. for every query descriptor, find its k nearest database descriptors
   under a chosen stop rule (the approximate chunk search);
2. each retrieved descriptor votes for its source image (one vote per
   query descriptor per image, so repeated texture cannot dominate);
3. rank images by votes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.batch_search import BatchChunkSearcher
from ..core.chunk_index import ChunkIndex
from ..core.dataset import DescriptorCollection
from ..core.stop_rules import StopRule
from ..simio.pipeline import CostModel

__all__ = ["ImageMatch", "MultiDescriptorSearcher"]


@dataclasses.dataclass(frozen=True)
class ImageMatch:
    """One ranked image result."""

    image_id: int
    votes: int
    matched_query_descriptors: int


class MultiDescriptorSearcher:
    """Image-level retrieval by descriptor voting.

    Parameters
    ----------
    index:
        A chunk index over the database descriptors.
    collection:
        The retained collection backing ``index`` (provides the
        descriptor-to-image mapping).
    cost_model:
        Optional cost model override for the underlying chunk searches.
    """

    def __init__(
        self,
        index: ChunkIndex,
        collection: DescriptorCollection,
        cost_model: Optional[CostModel] = None,
    ):
        if index.n_descriptors != len(collection):
            raise ValueError(
                "index and collection disagree on descriptor count "
                f"({index.n_descriptors} != {len(collection)})"
            )
        self.collection = collection
        self._searcher = (
            BatchChunkSearcher(index, cost_model=cost_model)
            if cost_model is not None
            else BatchChunkSearcher(index)
        )
        self._image_of_id: Dict[int, int] = {
            int(descriptor_id): int(image_id)
            for descriptor_id, image_id in zip(collection.ids, collection.image_ids)
        }

    def search_image(
        self,
        query_descriptors: np.ndarray,
        k_per_descriptor: int = 10,
        top_images: int = 10,
        stop_rule: Optional[StopRule] = None,
        max_match_distance: Optional[float] = None,
    ) -> List[ImageMatch]:
        """Rank database images against a query image's descriptor set.

        Returns at most ``top_images`` matches ordered by (votes desc,
        image id asc).

        ``max_match_distance``, when given, makes voting *verified*: a
        retrieved descriptor only votes if its distance is within the
        threshold.  Without it every query descriptor votes for its k
        nearest images however far they are, which inflates scores of
        unrelated but popular images — fine for ranking, wrong for
        duplicate *detection*.
        """
        query_descriptors = np.asarray(query_descriptors, dtype=np.float64)
        if query_descriptors.ndim == 1:
            query_descriptors = query_descriptors[np.newaxis, :]
        if query_descriptors.shape[0] == 0:
            raise ValueError("a query image needs at least one descriptor")

        # A query image's descriptor set is a natural batch: one engine
        # call ranks chunks for all descriptors at once and reads each
        # chunk at most once for the whole image.
        batch = self._searcher.search_batch(
            query_descriptors, k=k_per_descriptor, stop_rule=stop_rule
        )
        votes: Dict[int, int] = {}
        matched_queries: Dict[int, set] = {}
        for query_index, result in enumerate(batch):
            # One vote per (query descriptor, image): repeated texture in a
            # single image cannot dominate the tally.
            seen_images = set()
            for neighbor in result.neighbors:
                if (
                    max_match_distance is not None
                    and neighbor.distance > max_match_distance
                ):
                    continue
                image = self._image_of_id[neighbor.descriptor_id]
                if image in seen_images:
                    continue
                seen_images.add(image)
                votes[image] = votes.get(image, 0) + 1
                matched_queries.setdefault(image, set()).add(query_index)

        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            ImageMatch(
                image_id=image,
                votes=count,
                matched_query_descriptors=len(matched_queries[image]),
            )
            for image, count in ranked[:top_images]
        ]
