"""Extensions beyond the paper's core experiments.

* :mod:`~repro.extensions.medrank` — Medrank rank aggregation (SIGMOD'03),
  the I/O-optimal alternative the related-work section highlights;
* :mod:`~repro.extensions.vafile` — the approximate VA-file scan
  (EDBT'00) with bounded refinement;
* :mod:`~repro.extensions.psphere` — P-Sphere trees (VLDB'00): trading
  replicated disk space for single-sphere search time;
* :mod:`~repro.extensions.dbin` — DBIN (KDD'99): EM-clustered bins with a
  probabilistic early abort;
* :mod:`~repro.extensions.multi_descriptor` — the paper's stated future
  work: image-level retrieval by voting over per-descriptor searches.
"""

from .dbin import DbinIndex, GaussianMixture
from .medrank import MedrankIndex
from .psphere import PSphereTree
from .multi_descriptor import ImageMatch, MultiDescriptorSearcher
from .vafile import VAFile

__all__ = [
    "DbinIndex",
    "GaussianMixture",
    "MedrankIndex",
    "PSphereTree",
    "ImageMatch",
    "MultiDescriptorSearcher",
    "VAFile",
]
