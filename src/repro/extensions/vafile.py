"""Approximate VA-file scan (related work).

Weber & Böhm: "Trading quality for time with nearest neighbor search",
EDBT 2000 — the paper's related work describes it as interrupting the
search "after having accessed an arbitrary, predetermined and fixed number
of chunks"; the underlying structure is the vector-approximation file
(Weber, Schek, Blott, VLDB 1998):

* every dimension is quantized into ``2**bits`` cells with equi-populated
  boundaries;
* each descriptor is approximated by its cell signature;
* a query scans all signatures, computing per-descriptor lower bounds on
  the true distance, then refines the most promising candidates with exact
  distances.

The approximate variant bounds the refinement: only the
``refine_candidates`` best lower bounds are refined, trading result
quality for a fixed amount of exact-distance work.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.dataset import DescriptorCollection
from ..core.distance import squared_distances

__all__ = ["VAFile"]


class VAFile:
    """Vector-approximation file with bounded-refinement search.

    Parameters
    ----------
    collection:
        Descriptors to index.
    bits_per_dimension:
        Signature resolution; 2**bits quantization cells per dimension.
    """

    def __init__(self, collection: DescriptorCollection, bits_per_dimension: int = 4):
        if len(collection) == 0:
            raise ValueError("cannot index an empty collection")
        if not 1 <= bits_per_dimension <= 16:
            raise ValueError("bits_per_dimension must be in [1, 16]")
        self.collection = collection
        self.bits = int(bits_per_dimension)
        n_cells = 2**self.bits
        vectors = collection.vectors.astype(np.float64)
        d = collection.dimensions
        # Equi-populated cell boundaries per dimension: n_cells+1 marks.
        quantiles = np.linspace(0.0, 1.0, n_cells + 1)
        self._boundaries = np.quantile(vectors, quantiles, axis=0)  # (cells+1, d)
        # Guard the outer marks so every value falls inside some cell.
        self._boundaries[0] -= 1e-9
        self._boundaries[-1] += 1e-9
        self._signatures = np.empty((len(collection), d), dtype=np.int32)
        for dim in range(d):
            self._signatures[:, dim] = (
                np.searchsorted(
                    self._boundaries[1:-1, dim], vectors[:, dim], side="right"
                )
            )

    @property
    def signature_bytes(self) -> int:
        """Approximation size per descriptor (the VA-file's I/O saving)."""
        return (self.bits * self.collection.dimensions + 7) // 8

    def _lower_bounds(self, query: np.ndarray) -> np.ndarray:
        """Squared lower bound per descriptor from cell geometry."""
        d = self.collection.dimensions
        n_cells = 2**self.bits
        per_dim = np.zeros((n_cells, d), dtype=np.float64)
        lows = self._boundaries[:-1]  # (cells, d)
        highs = self._boundaries[1:]
        below = np.maximum(lows - query, 0.0)
        above = np.maximum(query - highs, 0.0)
        per_dim = np.maximum(below, above) ** 2
        # Sum the per-dimension cell contributions along each signature.
        bounds = np.zeros(len(self.collection), dtype=np.float64)
        for dim in range(d):
            bounds += per_dim[self._signatures[:, dim], dim]
        return bounds

    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        refine_candidates: int = 0,
    ) -> List[int]:
        """Approximate k-NN.

        Parameters
        ----------
        refine_candidates:
            How many of the best lower-bound candidates get an exact
            distance evaluation.  ``0`` means exact mode: refine until the
            next lower bound exceeds the current k-th exact distance (the
            classic VA-file algorithm, guaranteed exact).
        """
        if k < 1:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.collection.dimensions:
            raise ValueError("query dimensionality mismatch")
        n = len(self.collection)
        k = min(k, n)

        bounds = self._lower_bounds(query)
        order = np.lexsort((np.arange(n), bounds))

        best_d: List[float] = []
        best_rows: List[int] = []

        def kth() -> float:
            return best_d[-1] if len(best_d) >= k else np.inf

        budget = n if refine_candidates <= 0 else min(refine_candidates, n)
        refined = 0
        for row in order:
            if refined >= budget:
                break
            if refine_candidates <= 0 and bounds[row] > kth():
                break  # exactness proof for the unbounded variant
            d2 = float(
                squared_distances(query, self.collection.vectors[row : row + 1])[0]
            )
            refined += 1
            if len(best_d) < k or d2 < kth():
                # Insert in sorted order (k is small).
                position = np.searchsorted(best_d, d2)
                best_d.insert(position, d2)
                best_rows.insert(position, int(row))
                if len(best_d) > k:
                    best_d.pop()
                    best_rows.pop()
        return [int(self.collection.ids[row]) for row in best_rows]
