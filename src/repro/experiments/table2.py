"""Table 2 — time to completion (seconds).

Average simulated time for the exact search to prove completion, for the
six indexes under both workloads.

Expected shape (paper): completion is faster for BAG than for the SR-tree
at every size class (BAG's tight radii let the lower-bound proof fire after
fewer chunks), and larger chunks complete faster than smaller ones for both
families (fewer random accesses; Table 2's columns fall monotonically from
SMALL to LARGE).
"""

from __future__ import annotations

from ..core.metrics import completion_stats
from .config import SIZE_CLASSES
from .data import ExperimentData
from .results import TableResult

__all__ = ["run"]


def run(data: ExperimentData) -> TableResult:
    rows = []
    for size_class in SIZE_CLASSES:
        cells = [size_class]
        for family in ("BAG", "SR"):
            for workload_name in ("DQ", "SQ"):
                traces = data.completion_traces(family, size_class, workload_name)
                cells.append(round(completion_stats(traces).mean_elapsed_s, 3))
        rows.append(cells)
    return TableResult(
        experiment_id="table2",
        title="Time to completion (simulated seconds)",
        headers=["Chunk sizes", "BAG DQ", "BAG SQ", "SR DQ", "SR SQ"],
        rows=rows,
        precision=3,
    )
